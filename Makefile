# Development shortcuts.  CI runs the same commands (see
# .github/workflows/ci.yml); `pip install -e .[dev]` provides ruff.

PY ?= python

.PHONY: lint format test test-backends bench-smoke

lint:
	ruff check .
	ruff format --check --diff src/repro/bench src/repro/server benchmarks
	$(PY) tools/check_durability.py
	$(PY) tools/check_obs.py

format:
	ruff format src/repro/bench src/repro/server benchmarks

test:
	$(PY) -m pytest -x -q

test-backends:
	$(PY) -m pytest -q -m backend

bench-smoke:
	$(PY) -m repro.bench run --suite smoke
