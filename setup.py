"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
the package can also be installed in environments without the ``wheel``
package (offline machines), via ``python setup.py develop`` or legacy
``pip install -e .``.
"""

from setuptools import setup

setup()
