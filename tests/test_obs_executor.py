"""Executor observability: per-task spans, exactly-once counters, merging.

Satellite coverage for the tentpole: TaskFault retries/crashes/timeouts
must increment their counters exactly once per attempt outcome, child
spans shipped through the result pipe must be parented under the
parent-side per-task span, and the SIGKILL / stall paths from the chaos
harness must be accounted for even though a killed worker never exports
its recorder state.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro import obs
from repro.reliability import FaultPlan, FaultSpec
from repro.utils.executor import (
    ProcessExecutor,
    SerialExecutor,
    TaskFault,
    ThreadExecutor,
)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


@pytest.fixture(autouse=True)
def _obs_off():
    obs.disable()
    yield
    obs.disable()


# Module-level task bodies: they must survive into forked workers.

def _square(item):
    return item * item


def _traced_square(item):
    with obs.span("work", category="worker-test", item=item):
        return item * item


def _record_pid(item):
    obs.incr("worker.calls")
    obs.observe("worker.items", float(item))
    return os.getpid()


def _fail_once(item):
    index, latch_dir = item
    import pathlib

    latch = pathlib.Path(latch_dir) / ("fail-once-%d" % index)
    try:
        latch.touch(exist_ok=False)
    except FileExistsError:
        return index + 100
    raise ValueError("first attempt of %d fails" % index)


def _always_fail(item):
    raise ValueError("never works")


def _kill_self_once(item):
    index, latch_dir = item
    plan = FaultPlan(specs=[FaultSpec(op="task", index=0, kind="sigkill")])
    plan.apply_task_fault(index, latch_dir)
    return index + 100


def _stall_once(item):
    index, latch_dir = item
    plan = FaultPlan(specs=[FaultSpec(op="task", index=0, kind="stall", seconds=30.0)])
    plan.apply_task_fault(index, latch_dir)
    return index + 100


class TestInProcessExecutors:
    def test_serial_executor_emits_task_spans(self):
        with obs.recording() as rec:
            results = SerialExecutor().map(_square, [1, 2, 3])
        assert results == [1, 4, 9]
        task_spans = [s for s in rec.spans if s["name"] == "executor.task"]
        assert [s["args"]["index"] for s in task_spans] == [0, 1, 2]
        assert all(s["cat"] == "executor" for s in task_spans)
        assert all(s["args"]["backend"] == "serial" for s in task_spans)

    def test_serial_executor_parents_task_work(self):
        with obs.recording() as rec:
            list(SerialExecutor().imap_unordered(_traced_square, [5]))
        spans = {s["name"]: s for s in rec.spans}
        assert spans["work"]["parent"] == spans["executor.task"]["id"]

    def test_thread_executor_emits_task_spans(self):
        with obs.recording() as rec:
            results = ThreadExecutor(2).map(_square, [1, 2, 3, 4])
        assert results == [1, 4, 9, 16]
        task_spans = [s for s in rec.spans if s["name"] == "executor.task"]
        assert sorted(s["args"]["index"] for s in task_spans) == [0, 1, 2, 3]

    def test_disabled_obs_means_no_recording(self):
        assert SerialExecutor().map(_square, [2]) == [4]
        assert not obs.enabled()


@pytest.mark.skipif(not HAS_FORK, reason="needs fork")
class TestProcessExecutorMerging:
    def test_child_spans_parented_and_rebased(self):
        with obs.recording() as rec:
            results = ProcessExecutor(2).map(_traced_square, [3, 4])
        assert results == [9, 16]
        task_spans = {s["args"]["index"]: s for s in rec.spans if s["name"] == "executor.task"}
        run_spans = [s for s in rec.spans if s["name"] == "task.run"]
        work_spans = [s for s in rec.spans if s["name"] == "work"]
        assert len(task_spans) == 2 and len(run_spans) == 2 and len(work_spans) == 2
        parent_pid = os.getpid()
        for run in run_spans:
            # the worker's root span hangs under the parent-side task span
            parent = task_spans[_parent_index(rec, run)]
            assert run["parent"] == parent["id"]
            assert run["pid"] != parent_pid  # child pid preserved
            # re-based onto the parent timeline: inside the task span
            assert run["ts"] >= parent["ts"]
        for work in work_spans:
            assert any(work["parent"] == run["id"] for run in run_spans)
        assert rec.counters["executor.tasks"] == 2.0

    def test_child_counters_and_histograms_merge(self):
        with obs.recording() as rec:
            pids = ProcessExecutor(2).map(_record_pid, [10, 20, 30])
        assert all(pid != os.getpid() for pid in pids)
        assert rec.counters["worker.calls"] == 3.0
        assert sorted(rec.histograms["worker.items"]) == [10.0, 20.0, 30.0]

    def test_error_retry_counts_exactly_once(self, tmp_path):
        with obs.recording() as rec:
            results = ProcessExecutor(2, max_retries=2, retry_backoff=0.02).map(
                _fail_once, [(index, str(tmp_path)) for index in range(2)]
            )
        assert results == [100, 101]
        assert rec.counters["executor.tasks"] == 2.0
        assert rec.counters["executor.task_errors"] == 2.0  # one failed attempt each
        assert rec.counters["executor.retries"] == 2.0
        assert "executor.task_faults" not in rec.counters
        retries = [e for e in rec.events if e["kind"] == "retry"]
        assert len(retries) == 2
        assert all(e["details"]["kind"] == "error" for e in retries)
        # a span per attempt: 2 first attempts + 2 retries
        attempts = [s for s in rec.spans if s["name"] == "executor.task"]
        assert len(attempts) == 4

    def test_sigkill_crash_counts_exactly_once(self, tmp_path):
        with obs.recording() as rec:
            results = ProcessExecutor(2, max_retries=2, retry_backoff=0.02).map(
                _kill_self_once, [(index, str(tmp_path)) for index in range(3)]
            )
        assert results == [100, 101, 102]
        # only task index 0 was SIGKILLed (once, latched), then recovered
        assert rec.counters["executor.crashes"] == 1.0
        assert rec.counters["executor.retries"] == 1.0
        assert rec.counters["executor.tasks"] == 3.0
        assert "executor.task_faults" not in rec.counters
        crashed_attempts = [
            s for s in rec.spans
            if s["name"] == "executor.task" and s["args"]["status"] == "crash"
        ]
        assert len(crashed_attempts) == 1

    def test_stall_timeout_counts_exactly_once(self, tmp_path):
        with obs.recording() as rec:
            results = ProcessExecutor(
                2, task_timeout=1.0, max_retries=2, retry_backoff=0.02
            ).map(_stall_once, [(index, str(tmp_path)) for index in range(2)])
        assert results == [100, 101]
        assert rec.counters["executor.timeouts"] == 1.0
        assert rec.counters["executor.retries"] == 1.0
        assert "executor.task_faults" not in rec.counters

    def test_terminal_fault_records_fault_event(self):
        with obs.recording() as rec:
            outcomes = dict(
                ProcessExecutor(1, max_retries=1, retry_backoff=0.02).imap_unordered(
                    _always_fail, ["x"]
                )
            )
        assert isinstance(outcomes[0], TaskFault)
        assert rec.counters["executor.task_errors"] == 2.0  # initial + 1 retry
        assert rec.counters["executor.retries"] == 1.0
        assert rec.counters["executor.task_faults"] == 1.0
        faults = [e for e in rec.events if e["kind"] == "task_fault"]
        assert len(faults) == 1
        assert faults[0]["details"] == {"index": 0, "kind": "error", "attempts": 2}

    def test_untraced_protocol_unchanged(self):
        # without a recorder the pipe payload stays a 3-tuple end to end
        assert ProcessExecutor(2).map(_square, [5, 6]) == [25, 36]
        assert not obs.enabled()


def _parent_index(rec, child_span):
    """The task index of the executor.task span a child span hangs under."""
    by_id = {s["id"]: s for s in rec.spans}
    parent = by_id[child_span["parent"]]
    return parent["args"]["index"]
