"""Tests for the selection-threshold schemes (Section 4.1)."""

import numpy as np
import pytest
from scipy import stats

from repro.core.thresholds import (
    ChiSquareThreshold,
    VarianceRatioThreshold,
    make_threshold,
)


@pytest.fixture()
def data(rng):
    return rng.uniform(0, 100, size=(200, 10))


class TestVarianceRatioThreshold:
    def test_values_are_m_times_global_variance(self, data):
        threshold = VarianceRatioThreshold(m=0.4).fit(data)
        expected = 0.4 * data.var(axis=0, ddof=1)
        np.testing.assert_allclose(threshold.values(cluster_size=30), expected)

    def test_independent_of_cluster_size(self, data):
        threshold = VarianceRatioThreshold(m=0.5).fit(data)
        np.testing.assert_allclose(threshold.values(5), threshold.values(500))

    def test_invalid_m_rejected(self):
        with pytest.raises(ValueError):
            VarianceRatioThreshold(m=0.0)
        with pytest.raises(ValueError):
            VarianceRatioThreshold(m=1.5)

    def test_m_of_one_equals_global_variance(self, data):
        threshold = VarianceRatioThreshold(m=1.0).fit(data)
        np.testing.assert_allclose(threshold.values(10), data.var(axis=0, ddof=1))

    def test_describe(self):
        assert VarianceRatioThreshold(m=0.3).describe() == {"scheme": "m", "m": 0.3}


class TestChiSquareThreshold:
    def test_matches_chi_square_quantile(self, data):
        p = 0.05
        cluster_size = 25
        threshold = ChiSquareThreshold(p=p).fit(data)
        factor = stats.chi2.ppf(p, cluster_size - 1) / (cluster_size - 1)
        expected = factor * data.var(axis=0, ddof=1)
        np.testing.assert_allclose(threshold.values(cluster_size), expected)

    def test_false_selection_rate_close_to_p_for_gaussian_globals(self, rng):
        # Monte-Carlo check of the defining property: an irrelevant dimension
        # (a random Gaussian sample) passes the criterion with probability ~p.
        p = 0.05
        n_population = 5000
        cluster_size = 30
        population = rng.normal(0, 3.0, size=(n_population, 1))
        threshold = ChiSquareThreshold(p=p).fit(population)
        passes = 0
        trials = 2000
        cutoff = threshold.values(cluster_size)[0]
        for _ in range(trials):
            sample = rng.choice(population[:, 0], size=cluster_size, replace=False)
            if sample.var(ddof=1) < cutoff:
                passes += 1
        rate = passes / trials
        assert abs(rate - p) < 0.03

    def test_threshold_grows_with_cluster_size(self, data):
        threshold = ChiSquareThreshold(p=0.01).fit(data)
        small = threshold.values(5)[0]
        large = threshold.values(100)[0]
        # chi2.ppf(p, dof)/dof increases towards 1 as dof grows (for p < 0.5).
        assert small < large

    def test_degenerate_cluster_size_uses_min_dof(self, data):
        threshold = ChiSquareThreshold(p=0.05, min_degrees_of_freedom=2).fit(data)
        np.testing.assert_allclose(threshold.values(0), threshold.values(3))

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            ChiSquareThreshold(p=0.0)
        with pytest.raises(ValueError):
            ChiSquareThreshold(p=1.0)


class TestSharedBehaviour:
    def test_unfitted_threshold_raises(self):
        with pytest.raises(RuntimeError):
            VarianceRatioThreshold(m=0.5).values(10)

    def test_fit_requires_two_rows(self):
        with pytest.raises(ValueError):
            VarianceRatioThreshold(m=0.5).fit([[1.0, 2.0]])

    def test_fit_from_variance(self):
        threshold = VarianceRatioThreshold(m=0.5).fit_from_variance([4.0, 16.0])
        np.testing.assert_allclose(threshold.values(10), [2.0, 8.0])

    def test_constant_column_does_not_produce_zero_threshold(self):
        data = np.column_stack([np.ones(50), np.linspace(0, 1, 50)])
        threshold = VarianceRatioThreshold(m=0.5).fit(data)
        assert np.all(threshold.values(10) > 0)

    def test_value_scalar_accessor(self, data):
        threshold = VarianceRatioThreshold(m=0.5).fit(data)
        assert threshold.value(10, 3) == pytest.approx(threshold.values(10)[3])

    def test_make_threshold_dispatch(self):
        assert isinstance(make_threshold(m=0.5), VarianceRatioThreshold)
        assert isinstance(make_threshold(p=0.01), ChiSquareThreshold)

    def test_make_threshold_requires_exactly_one(self):
        with pytest.raises(ValueError):
            make_threshold()
        with pytest.raises(ValueError):
            make_threshold(m=0.5, p=0.01)
