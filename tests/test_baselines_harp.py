"""Tests for the HARP baseline."""

import numpy as np
import pytest

from repro.baselines import HARP
from repro.evaluation import adjusted_rand_index


class TestHarp:
    def test_produces_k_clusters(self, tiny_dataset):
        model = HARP(n_clusters=3, random_state=0).fit(tiny_dataset.data)
        labels = model.labels_
        assert len([c for c in np.unique(labels) if c >= 0]) <= 3
        assert labels.shape == (tiny_dataset.n_objects,)

    def test_reasonable_accuracy_on_moderate_dimensionality(self, small_dataset):
        model = HARP(n_clusters=3, random_state=1).fit(small_dataset.data)
        assert adjusted_rand_index(small_dataset.labels, model.labels_) > 0.3

    def test_selected_dimensions_reported(self, small_dataset):
        model = HARP(n_clusters=3, random_state=2).fit(small_dataset.data)
        assert len(model.dimensions_) <= 3
        for dims in model.dimensions_:
            assert dims.size >= 1
            assert np.all(dims < small_dataset.n_dimensions)

    def test_every_object_in_some_cluster(self, tiny_dataset):
        model = HARP(n_clusters=3, random_state=3).fit(tiny_dataset.data)
        assert np.count_nonzero(model.labels_ == -1) <= tiny_dataset.n_objects * 0.1

    def test_threshold_schedule_is_monotone(self):
        model = HARP(n_clusters=2, n_threshold_levels=5, max_relevance=0.9, min_relevance=0.1)
        relevances = [model._thresholds_at(level, 100)[0] for level in range(5)]
        min_counts = [model._thresholds_at(level, 100)[1] for level in range(5)]
        assert all(b <= a for a, b in zip(relevances, relevances[1:]))
        assert all(b <= a for a, b in zip(min_counts, min_counts[1:]))
        assert relevances[0] == pytest.approx(0.9)
        assert relevances[-1] == pytest.approx(0.1)

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            HARP(n_clusters=2, max_relevance=0.3, min_relevance=0.5)
        with pytest.raises(ValueError):
            HARP(n_clusters=2, min_selected_fraction=0.0)

    def test_result_object(self, tiny_dataset):
        model = HARP(n_clusters=3, random_state=4).fit(tiny_dataset.data)
        assert model.result_.algorithm == "HARP"
        assert model.result_.n_objects == tiny_dataset.n_objects

    def test_reproducible(self, tiny_dataset):
        first = HARP(n_clusters=3, random_state=6).fit_predict(tiny_dataset.data)
        second = HARP(n_clusters=3, random_state=6).fit_predict(tiny_dataset.data)
        np.testing.assert_array_equal(first, second)
