"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, random_seed_from, shuffled, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        first = ensure_rng(123).integers(0, 1000, size=10)
        second = ensure_rng(123).integers(0, 1000, size=10)
        np.testing.assert_array_equal(first, second)

    def test_different_seeds_differ(self):
        first = ensure_rng(1).integers(0, 10**6, size=20)
        second = ensure_rng(2).integers(0, 10**6, size=20)
        assert not np.array_equal(first, second)

    def test_generator_passed_through(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            ensure_rng(-1)

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")

    def test_numpy_integer_seed_accepted(self):
        assert isinstance(ensure_rng(np.int64(7)), np.random.Generator)


class TestSpawnRngs:
    def test_count_matches(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        children = spawn_rngs(42, 3)
        draws = [child.integers(0, 10**9, size=5) for child in children]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_reproducible_from_same_seed(self):
        first = [g.integers(0, 10**6) for g in spawn_rngs(7, 4)]
        second = [g.integers(0, 10**6) for g in spawn_rngs(7, 4)]
        assert first == second


class TestHelpers:
    def test_random_seed_from_range(self):
        seed = random_seed_from(np.random.default_rng(0))
        assert 0 <= seed < 2**32

    def test_shuffled_preserves_elements(self):
        values = list(range(50))
        result = shuffled(values, np.random.default_rng(3))
        assert sorted(result) == values
        assert result is not values

    def test_shuffled_does_not_mutate_input(self):
        values = list(range(20))
        original = list(values)
        shuffled(values, np.random.default_rng(1))
        assert values == original
