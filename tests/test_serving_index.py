"""Tests of the ProjectedClusterIndex inference engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import OUTLIER_LABEL
from repro.serving.artifact import ClusterModel, ModelArtifact
from repro.serving.index import ProjectedClusterIndex


@pytest.fixture()
def artifact(fitted_sspc):
    return fitted_sspc.to_artifact()


@pytest.fixture()
def index(artifact):
    return ProjectedClusterIndex(artifact)


@pytest.fixture()
def query_points(small_dataset, rng):
    """A mixed batch: on-cluster points (jittered members) plus noise."""
    data = small_dataset.data
    near = data[rng.choice(data.shape[0], size=60, replace=False)]
    near = near + rng.normal(scale=0.01, size=near.shape)
    noise = rng.normal(
        loc=data.mean(axis=0), scale=3 * data.std(axis=0), size=(40, data.shape[1])
    )
    return np.vstack([near, noise])


class TestBatchSingleEquivalence:
    def test_gains_bit_identical(self, index, query_points):
        batch = index.gains_matrix(query_points)
        single = np.stack([index.gains_single(point) for point in query_points])
        assert np.array_equal(batch, single)

    def test_labels_bit_identical(self, index, query_points):
        batch = index.predict(query_points)
        single = np.asarray([index.predict_one(point) for point in query_points])
        np.testing.assert_array_equal(batch, single)

    def test_predict_is_deterministic(self, index, query_points):
        first = index.predict(query_points)
        second = index.predict(query_points.copy())
        np.testing.assert_array_equal(first, second)

    def test_all_center_modes_agree_between_paths(self, artifact, query_points):
        for center in ("median", "representative", "mean"):
            idx = ProjectedClusterIndex(artifact, center=center)
            batch = idx.gains_matrix(query_points)
            single = np.stack([idx.gains_single(p) for p in query_points])
            assert np.array_equal(batch, single), center


class TestOutlierGating:
    def test_far_points_are_outliers(self, small_dataset, index, rng):
        far = small_dataset.data.max() + 1e3 + rng.uniform(
            0, 10, size=(25, small_dataset.n_dimensions)
        )
        labels = index.predict(far)
        assert np.all(labels == OUTLIER_LABEL)
        np.testing.assert_array_equal(index.outliers(far), np.arange(25))

    def test_near_member_points_are_assigned(self, small_dataset, index, rng):
        members = rng.choice(small_dataset.data.shape[0], size=30, replace=False)
        jittered = small_dataset.data[members] + rng.normal(
            scale=1e-3, size=(30, small_dataset.n_dimensions)
        )
        labels = index.predict(jittered)
        assert np.count_nonzero(labels != OUTLIER_LABEL) > 0

    def test_gate_matches_gain_sign(self, index, query_points):
        gains = index.gains_matrix(query_points)
        labels = index.predict(query_points)
        best = gains.max(axis=1)
        np.testing.assert_array_equal(labels == OUTLIER_LABEL, ~(best > 0.0))


class TestTopAssignments:
    def test_ordering_and_consistency(self, index, query_points):
        labels, clusters, gains = index.top_assignments(query_points, 2)
        assert clusters.shape == gains.shape == (query_points.shape[0], 2)
        assert np.all(gains[:, 0] >= gains[:, 1])
        full = index.gains_matrix(query_points)
        np.testing.assert_array_equal(gains[:, 0], full.max(axis=1))
        np.testing.assert_array_equal(labels, index.predict(query_points))

    def test_padding_beyond_n_clusters(self, index, query_points):
        _, clusters, gains = index.top_assignments(query_points, index.n_clusters + 2)
        assert clusters.shape[1] == index.n_clusters + 2
        assert np.all(clusters[:, -2:] == OUTLIER_LABEL)
        assert np.all(np.isneginf(gains[:, -2:]))

    def test_top_m_must_be_positive(self, index, query_points):
        with pytest.raises(ValueError, match="top_m"):
            index.top_assignments(query_points, 0)


class TestPartialUpdate:
    def test_matches_from_scratch_rebuild(self, small_dataset, fitted_sspc, index, query_points):
        labels = index.partial_update(query_points)
        for i, cluster in enumerate(fitted_sspc.result_.clusters):
            accepted = query_points[labels == i]
            block = np.vstack([small_dataset.data[cluster.members], accepted])
            stats = index.cluster_statistics(i)
            assert stats.size == block.shape[0]
            np.testing.assert_allclose(stats.mean, block.mean(axis=0), rtol=1e-10, atol=1e-12)
            np.testing.assert_allclose(
                stats.variance, block.var(axis=0, ddof=1), rtol=1e-9, atol=1e-12
            )
            # The median over the selected dimensions is maintained exactly
            # (same multiset of values as the from-scratch pass).
            np.testing.assert_array_equal(
                stats.median_selected, np.median(block[:, stats.dimensions], axis=0)
            )

    def test_outliers_are_not_absorbed(self, small_dataset, index, rng):
        sizes_before = index.cluster_sizes()
        far = small_dataset.data.max() + 1e3 + rng.uniform(
            0, 1, size=(10, small_dataset.n_dimensions)
        )
        labels = index.partial_update(far)
        assert np.all(labels == OUTLIER_LABEL)
        np.testing.assert_array_equal(index.cluster_sizes(), sizes_before)
        assert index.n_points_absorbed == 0

    def test_median_center_follows_update(self, artifact, query_points):
        idx = ProjectedClusterIndex(artifact, center="median")
        labels = idx.partial_update(query_points)
        for i in range(idx.n_clusters):
            if np.count_nonzero(labels == i) == 0:
                continue
            np.testing.assert_array_equal(
                idx._clusters[i].center_selected, idx.cluster_statistics(i).median_selected
            )

    def test_without_projections_median_is_frozen(self, fitted_sspc, query_points):
        artifact = fitted_sspc.to_artifact(include_projections=False)
        idx = ProjectedClusterIndex(artifact)
        before = [idx.cluster_statistics(i).median_selected for i in range(idx.n_clusters)]
        sizes_before = idx.cluster_sizes()
        labels = idx.partial_update(query_points)
        assert np.count_nonzero(labels >= 0) > 0
        for i in range(idx.n_clusters):
            np.testing.assert_array_equal(idx.cluster_statistics(i).median_selected, before[i])
        # Sizes (and hence size-dependent thresholds) still advance.
        assert np.any(idx.cluster_sizes() > sizes_before)

    def test_explicit_labels_validated(self, index, query_points):
        with pytest.raises(ValueError, match="length"):
            index.partial_update(query_points, labels=np.zeros(3, dtype=int))
        with pytest.raises(ValueError, match="outside"):
            index.partial_update(
                query_points,
                labels=np.full(query_points.shape[0], index.n_clusters, dtype=int),
            )
        with pytest.raises(ValueError, match="sentinel"):
            index.partial_update(
                query_points, labels=np.full(query_points.shape[0], -7, dtype=int)
            )

    def test_update_counters(self, index, query_points):
        labels = index.partial_update(query_points)
        assert index.n_updates == 1
        assert index.n_points_absorbed == int(np.count_nonzero(labels >= 0))


class TestAllowOutliersContract:
    @pytest.fixture()
    def no_outlier_model(self, small_dataset):
        from repro.core.sspc import SSPC

        return SSPC(
            n_clusters=3, m=0.5, allow_outliers=False, random_state=0, max_iterations=5
        ).fit(small_dataset.data)

    def test_force_assigning_model_never_serves_outliers(
        self, no_outlier_model, small_dataset, rng
    ):
        far = small_dataset.data.max() + 1e3 + rng.uniform(
            0, 1, size=(15, small_dataset.n_dimensions)
        )
        idx = ProjectedClusterIndex(no_outlier_model.to_artifact())
        assert not idx.allow_outliers  # inherited from the fit parameters
        labels = idx.predict(far)
        assert np.all(labels >= 0)
        np.testing.assert_array_equal(no_outlier_model.predict(far), labels)

    def test_force_assign_batch_matches_single(self, no_outlier_model, small_dataset, rng):
        far = small_dataset.data.max() + 1e3 + rng.uniform(
            0, 1, size=(10, small_dataset.n_dimensions)
        )
        idx = ProjectedClusterIndex(no_outlier_model.to_artifact())
        singles = np.asarray([idx.predict_one(point) for point in far])
        np.testing.assert_array_equal(idx.predict(far), singles)

    def test_force_assigned_points_are_absorbed(self, no_outlier_model, small_dataset, rng):
        far = small_dataset.data.max() + 1e3 + rng.uniform(
            0, 1, size=(10, small_dataset.n_dimensions)
        )
        idx = ProjectedClusterIndex(no_outlier_model.to_artifact())
        idx.partial_update(far)
        assert idx.n_points_absorbed == 10

    def test_explicit_override_wins(self, artifact, small_dataset, rng):
        far = small_dataset.data.max() + 1e3 + rng.uniform(
            0, 1, size=(10, small_dataset.n_dimensions)
        )
        forced = ProjectedClusterIndex(artifact, allow_outliers=False)
        assert np.all(forced.predict(far) >= 0)
        gated = ProjectedClusterIndex(artifact, allow_outliers=True)
        assert np.all(gated.predict(far) == OUTLIER_LABEL)


class TestFoldInto:
    def test_fold_into_round_trips_through_disk(
        self, fitted_sspc, artifact, query_points, tmp_path
    ):
        idx = ProjectedClusterIndex(artifact)
        labels = idx.partial_update(query_points)
        assert np.count_nonzero(labels >= 0) > 0
        path = idx.fold_into(artifact).save(tmp_path / "updated")

        from repro.serving.artifact import load_artifact

        resumed = ProjectedClusterIndex(load_artifact(path))
        np.testing.assert_array_equal(resumed.cluster_sizes(), idx.cluster_sizes())
        assert np.array_equal(
            resumed.gains_matrix(query_points), idx.gains_matrix(query_points)
        )
        for i in range(idx.n_clusters):
            a, b = resumed.cluster_statistics(i), idx.cluster_statistics(i)
            np.testing.assert_array_equal(a.mean, b.mean)
            np.testing.assert_array_equal(a.variance, b.variance)
            np.testing.assert_array_equal(a.median_selected, b.median_selected)

    def test_fold_into_rejects_mismatched_artifact(self, artifact, fitted_sspc):
        idx = ProjectedClusterIndex(artifact)
        other = fitted_sspc.to_artifact()
        other.clusters = other.clusters[:-1]
        with pytest.raises(ValueError, match="clusters"):
            idx.fold_into(other)

    def test_fold_into_rejects_different_model_same_shape(self, artifact, fitted_sspc):
        idx = ProjectedClusterIndex(artifact)
        other = fitted_sspc.to_artifact()
        dims = other.clusters[0].dimensions
        other.clusters[0].dimensions = (dims + 1) % other.n_dimensions
        with pytest.raises(ValueError, match="different dimensions"):
            idx.fold_into(other)

    def test_serving_sizes_surface_in_describe(self, artifact, query_points):
        idx = ProjectedClusterIndex(artifact)
        labels = idx.partial_update(query_points)
        assert np.count_nonzero(labels >= 0) > 0
        idx.fold_into(artifact)
        description = artifact.describe()
        assert description["cluster_sizes"] == idx.cluster_sizes().tolist()
        assert description["training_sizes"] == [c.size for c in artifact.clusters]
        assert description["cluster_sizes"] != description["training_sizes"]


class TestDegenerateClusters:
    def _artifact_with_degenerate_clusters(self):
        d = 4
        good = ClusterModel(
            dimensions=np.asarray([0, 1]),
            members=np.asarray([0, 1, 2]),
            representative=np.zeros(d),
            mean=np.zeros(d),
            median=np.zeros(d),
            variance=np.full(d, 0.1),
        )
        empty_members = ClusterModel(
            dimensions=np.asarray([2]),
            members=np.asarray([], dtype=int),
            representative=np.zeros(d),
            mean=np.zeros(d),
            median=np.zeros(d),
            variance=np.zeros(d),
        )
        empty_dims = ClusterModel(
            dimensions=np.asarray([], dtype=int),
            members=np.asarray([3]),
            representative=np.zeros(d),
            mean=np.zeros(d),
            median=np.zeros(d),
            variance=np.zeros(d),
        )
        labels = np.asarray([0, 0, 0, 2, -1])
        return ModelArtifact(
            clusters=[good, empty_members, empty_dims],
            labels=labels,
            n_objects=5,
            n_dimensions=d,
            threshold_description={"scheme": "m", "m": 0.5},
            global_variance=np.ones(d),
        )

    def test_unservable_clusters_never_win(self, rng):
        idx = ProjectedClusterIndex(self._artifact_with_degenerate_clusters())
        points = rng.normal(scale=0.05, size=(20, 4))
        gains = idx.gains_matrix(points)
        assert np.all(np.isneginf(gains[:, 1]))
        assert np.all(np.isneginf(gains[:, 2]))
        labels = idx.predict(points)
        assert set(np.unique(labels)).issubset({0, OUTLIER_LABEL})


class TestInputValidation:
    def test_dimension_mismatch_rejected(self, index, rng):
        with pytest.raises(ValueError, match="dimensions"):
            index.predict(rng.normal(size=(5, index.n_dimensions + 1)))
        with pytest.raises(ValueError, match="dimensions"):
            index.gains_single(np.zeros(index.n_dimensions + 1))

    def test_bad_center_mode_rejected(self, artifact):
        with pytest.raises(ValueError, match="center"):
            ProjectedClusterIndex(artifact, center="medoid")


class TestEstimatorIntegration:
    def test_sspc_predict_matches_index(self, fitted_sspc, artifact, query_points):
        expected = ProjectedClusterIndex(artifact).predict(query_points)
        np.testing.assert_array_equal(fitted_sspc.predict(query_points), expected)

    def test_sspc_predict_top_m(self, fitted_sspc, query_points):
        labels, clusters, gains = fitted_sspc.predict(query_points, top_m=2)
        assert clusters.shape == (query_points.shape[0], 2)
        np.testing.assert_array_equal(labels, fitted_sspc.predict(query_points))

    def test_save_load_predict_identical(self, fitted_sspc, query_points, tmp_path):
        in_memory = fitted_sspc.predict(query_points)
        path = fitted_sspc.save(tmp_path / "model")
        loaded = ProjectedClusterIndex.from_path(path)
        np.testing.assert_array_equal(loaded.predict(query_points), in_memory)
        assert np.array_equal(
            loaded.gains_matrix(query_points),
            ProjectedClusterIndex(fitted_sspc.to_artifact()).gains_matrix(query_points),
        )

    def test_unfitted_estimator_raises(self):
        from repro.core.sspc import SSPC

        model = SSPC(n_clusters=2)
        with pytest.raises(RuntimeError, match="not fitted"):
            model.predict(np.zeros((2, 2)))
        with pytest.raises(RuntimeError, match="not fitted"):
            model.save("/tmp/never-written")
