"""Integration tests for the SSPC estimator (Listing 2)."""

import numpy as np
import pytest

from repro.core.model import ClusteringResult
from repro.core.sspc import SSPC
from repro.evaluation import adjusted_rand_index, dimension_selection_scores
from repro.semisupervision.constraints import PairwiseConstraints
from repro.semisupervision.knowledge import Knowledge
from repro.semisupervision.sampling import sample_knowledge


class TestUnsupervisedClustering:
    def test_recovers_easy_clusters(self, small_dataset):
        model = SSPC(n_clusters=3, m=0.5, random_state=0).fit(small_dataset.data)
        assert adjusted_rand_index(small_dataset.labels, model.labels_) > 0.8

    def test_recovers_relevant_dimensions(self, small_dataset):
        model = SSPC(n_clusters=3, m=0.5, random_state=0).fit(small_dataset.data)
        scores = dimension_selection_scores(
            small_dataset.relevant_dimensions, model.selected_dimensions_
        )
        assert scores.recall > 0.6
        assert scores.precision > 0.6

    def test_p_scheme_also_works(self, small_dataset):
        model = SSPC(n_clusters=3, p=0.01, random_state=0).fit(small_dataset.data)
        assert adjusted_rand_index(small_dataset.labels, model.labels_) > 0.7

    def test_result_object_consistency(self, small_dataset):
        model = SSPC(n_clusters=3, m=0.5, random_state=1).fit(small_dataset.data)
        result = model.result_
        assert isinstance(result, ClusteringResult)
        assert result.n_clusters == 3
        assert result.n_objects == small_dataset.n_objects
        np.testing.assert_array_equal(result.labels(), model.labels_)
        assert result.algorithm == "SSPC"
        assert np.isfinite(result.objective)
        assert result.objective == pytest.approx(model.objective_)

    def test_fit_predict_matches_labels(self, tiny_dataset):
        model = SSPC(n_clusters=3, m=0.5, random_state=5)
        labels = model.fit_predict(tiny_dataset.data)
        np.testing.assert_array_equal(labels, model.labels_)

    def test_reproducible_with_seed(self, tiny_dataset):
        first = SSPC(n_clusters=3, m=0.5, random_state=7).fit_predict(tiny_dataset.data)
        second = SSPC(n_clusters=3, m=0.5, random_state=7).fit_predict(tiny_dataset.data)
        np.testing.assert_array_equal(first, second)

    def test_allow_outliers_false_assigns_everything(self, tiny_dataset):
        model = SSPC(n_clusters=3, m=0.5, allow_outliers=False, random_state=2)
        labels = model.fit_predict(tiny_dataset.data)
        assert np.all(labels >= 0)

    def test_outliers_detected_on_contaminated_data(self, outlier_dataset):
        model = SSPC(n_clusters=3, m=0.5, random_state=3).fit(outlier_dataset.data)
        detected = int(np.count_nonzero(model.labels_ == -1))
        true = outlier_dataset.n_outliers
        # The detected amount should resemble the actual amount (Section 5.2).
        assert detected > 0
        assert detected < 3 * true


class TestSemiSupervisedClustering:
    def test_knowledge_improves_low_dimensional_case(self, low_dim_dataset):
        raw = SSPC(n_clusters=5, m=0.5, random_state=4).fit(low_dim_dataset.data)
        raw_ari = adjusted_rand_index(low_dim_dataset.labels, raw.labels_)

        knowledge = sample_knowledge(
            low_dim_dataset.labels,
            low_dim_dataset.relevant_dimensions,
            category="both",
            input_size=5,
            coverage=1.0,
            random_state=4,
        )
        guided = SSPC(n_clusters=5, m=0.5, random_state=4).fit(low_dim_dataset.data, knowledge)
        stripped = guided.result_.without_objects(knowledge.labeled_object_indices())
        guided_ari = adjusted_rand_index(low_dim_dataset.labels, stripped.labels())
        assert guided_ari > raw_ari
        assert guided_ari > 0.6

    def test_labeled_dimensions_only(self, low_dim_dataset):
        knowledge = sample_knowledge(
            low_dim_dataset.labels,
            low_dim_dataset.relevant_dimensions,
            category="dimensions",
            input_size=5,
            coverage=1.0,
            random_state=8,
        )
        model = SSPC(n_clusters=5, m=0.5, random_state=8).fit(low_dim_dataset.data, knowledge)
        assert adjusted_rand_index(low_dim_dataset.labels, model.labels_) > 0.6

    def test_partial_coverage_accepted(self, low_dim_dataset):
        knowledge = sample_knowledge(
            low_dim_dataset.labels,
            low_dim_dataset.relevant_dimensions,
            category="both",
            input_size=4,
            coverage=0.6,
            random_state=9,
        )
        model = SSPC(n_clusters=5, m=0.5, random_state=9).fit(low_dim_dataset.data, knowledge)
        assert model.result_.n_clusters == 5

    def test_labeled_objects_stay_in_their_cluster(self, small_dataset):
        members = np.flatnonzero(small_dataset.labels == 2)[:3]
        knowledge = Knowledge.from_pairs(object_pairs=[(int(o), 2) for o in members])
        model = SSPC(n_clusters=3, m=0.5, random_state=1).fit(small_dataset.data, knowledge)
        assert np.all(model.labels_[members] == 2)

    def test_knowledge_validated_against_shape(self, tiny_dataset):
        bad = Knowledge.from_pairs(object_pairs=[(10_000, 0)])
        with pytest.raises(ValueError):
            SSPC(n_clusters=3, random_state=0).fit(tiny_dataset.data, bad)

    def test_knowledge_class_outside_k_rejected(self, tiny_dataset):
        bad = Knowledge.from_pairs(object_pairs=[(0, 7)])
        with pytest.raises(ValueError):
            SSPC(n_clusters=3, random_state=0).fit(tiny_dataset.data, bad)

    def test_constraints_respected(self, small_dataset):
        labels_unconstrained = SSPC(n_clusters=3, m=0.5, random_state=0).fit_predict(
            small_dataset.data
        )
        same = np.flatnonzero(labels_unconstrained == 0)[:2]
        constraints = PairwiseConstraints.from_pairs(cannot_links=[(int(same[0]), int(same[1]))])
        model = SSPC(n_clusters=3, m=0.5, random_state=0)
        labels = model.fit_predict(small_dataset.data, constraints=constraints)
        assert constraints.violations(labels) == 0


class TestParameters:
    def test_m_and_p_mutually_exclusive(self):
        with pytest.raises(ValueError):
            SSPC(n_clusters=3, m=0.5, p=0.01)

    def test_default_threshold_is_m_half(self):
        assert SSPC(n_clusters=3).get_params()["m"] == 0.5

    def test_invalid_parameters_fail_at_construction(self):
        with pytest.raises(ValueError):
            SSPC(n_clusters=0)
        with pytest.raises(ValueError):
            SSPC(n_clusters=3, m=2.0)
        with pytest.raises(ValueError):
            SSPC(n_clusters=3, p=1.5)

    def test_k_larger_than_n_rejected(self):
        data = np.random.default_rng(0).normal(size=(5, 4))
        with pytest.raises(ValueError):
            SSPC(n_clusters=10, random_state=0).fit(data)

    def test_get_params_round_trip(self):
        model = SSPC(n_clusters=4, p=0.05, max_iterations=10, patience=2)
        params = model.get_params()
        assert params["n_clusters"] == 4
        assert params["p"] == 0.05
        assert params["max_iterations"] == 10
        assert "m" not in params

    def test_max_iterations_bounds_work(self, tiny_dataset):
        model = SSPC(n_clusters=3, m=0.5, max_iterations=2, patience=1, random_state=0)
        model.fit(tiny_dataset.data)
        assert model.n_iterations_ <= 2

    def test_robust_across_m_values(self, small_dataset):
        """Figure 4's claim: accuracy stays high across a wide m range."""
        for m in (0.3, 0.5, 0.7):
            model = SSPC(n_clusters=3, m=m, random_state=0).fit(small_dataset.data)
            assert adjusted_rand_index(small_dataset.labels, model.labels_) > 0.7
