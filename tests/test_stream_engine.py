"""Tests of the streaming engine (:mod:`repro.stream.engine`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sspc import SSPC
from repro.data.streams import (
    ClusterBirth,
    ClusterDeath,
    DriftingStreamGenerator,
    MeanShift,
)
from repro.evaluation import adjusted_rand_index
from repro.serving.index import ProjectedClusterIndex
from repro.stream import StreamConfig, StreamingSSPC, load_checkpoint
from repro.stream.checkpoint import resolve_checkpoint_dir

STREAM_SHAPE = dict(
    n_dimensions=40,
    n_clusters=3,
    avg_cluster_dimensionality=6,
    outlier_fraction=0.05,
    random_state=7,
)


def make_stream(events=()):
    return DriftingStreamGenerator(events=events, **STREAM_SHAPE)


@pytest.fixture(scope="module")
def stream_model():
    """A well-fitted initial model on the stream's pre-drift populations."""
    warmup = make_stream().warmup(900)
    model = SSPC(n_clusters=3, m=0.5, max_iterations=20, random_state=3).fit(warmup.data)
    # The engine contracts below assume the warmup fit actually found the
    # three generating clusters (a misfit model *should* trigger spawns).
    assert adjusted_rand_index(warmup.labels, model.labels_) > 0.95
    return model


def adaptive_config(**overrides):
    parameters = dict(seed=1, spawn_min_points=20, lifecycle_every=4, drift_check_every=2)
    parameters.update(overrides)
    return StreamConfig(**parameters)


class TestDriftFreeBitIdentity:
    def test_statistics_match_bare_partial_update_exactly(self, stream_model):
        """Acceptance: drift-free streaming == the PR-2 serving primitive."""
        engine = StreamingSSPC(stream_model.to_artifact(), config=StreamConfig(seed=1))
        index = ProjectedClusterIndex(stream_model.to_artifact())
        for batch in make_stream().batches(30, 150):
            result = engine.process_batch(batch.data)
            labels = index.partial_update(batch.data)
            # No lifecycle events -> stable ids coincide with positions.
            np.testing.assert_array_equal(result.labels, labels)
        assert engine.n_spawned == engine.n_retired == engine.n_drift_refreshes == 0
        assert not engine.adapted
        for position in range(index.n_clusters):
            ours = engine.index.cluster_statistics(position)
            theirs = index.cluster_statistics(position)
            assert ours.size == theirs.size
            assert np.array_equal(ours.mean, theirs.mean)
            assert np.array_equal(ours.variance, theirs.variance)
            assert np.array_equal(ours.median_selected, theirs.median_selected)

    def test_bit_identity_also_holds_with_adaptation_disabled(self, stream_model):
        engine = StreamingSSPC(
            stream_model.to_artifact(),
            config=StreamConfig(seed=1, lifecycle_every=0, drift_check_every=0),
        )
        index = ProjectedClusterIndex(stream_model.to_artifact())
        for batch in make_stream(events=[MeanShift(batch=3, cluster=0)]).batches(8, 150):
            engine.process_batch(batch.data)
            index.partial_update(batch.data)
        assert not engine.adapted
        for position in range(index.n_clusters):
            assert np.array_equal(
                engine.index.cluster_statistics(position).mean,
                index.cluster_statistics(position).mean,
            )


class TestOutlierBuffer:
    def test_buffer_is_bounded(self, stream_model):
        engine = StreamingSSPC(
            stream_model.to_artifact(),
            config=StreamConfig(seed=1, outlier_buffer_size=16, lifecycle_every=0,
                                drift_check_every=0),
        )
        for batch in make_stream().batches(10, 150):
            engine.process_batch(batch.data)
        assert len(engine.outliers) <= 16
        assert engine.outliers.n_dropped > 0
        assert engine.outliers.n_seen > 16


class TestLifecycle:
    def test_cluster_birth_triggers_a_spawn_with_a_fresh_stable_id(self, stream_model):
        stream = make_stream(events=[ClusterBirth(batch=4)])
        engine = StreamingSSPC(stream_model.to_artifact(), config=adaptive_config())
        results = [engine.process_batch(batch.data) for batch in stream.batches(16, 150)]
        spawns = [event for event in engine.events if event.kind == "spawn"]
        assert spawns, "newborn cluster was never spawned"
        assert engine.n_clusters == 4
        assert engine.cluster_ids[-1] == 3  # fresh id, never a reused position
        # After the spawn, the newborn's rows map to exactly one engine id.
        last = results[-1]
        batch = stream.batch(15, 150)
        newborn_labels = last.labels[batch.labels == 3]
        values, counts = np.unique(newborn_labels, return_counts=True)
        assert values[np.argmax(counts)] == 3
        assert counts.max() / newborn_labels.size > 0.8

    def test_dead_cluster_is_retired_and_ids_stay_stable(self, stream_model):
        stream = make_stream(events=[ClusterDeath(batch=2, cluster=2)])
        engine = StreamingSSPC(
            stream_model.to_artifact(),
            config=adaptive_config(lifecycle_every=2, retire_patience=2),
        )
        for batch in stream.batches(14, 150):
            engine.process_batch(batch.data)
        retirements = [event for event in engine.events if event.kind == "retire"]
        assert retirements
        assert engine.n_clusters == 2
        assert len(engine.cluster_ids) == 2
        assert sorted(set(engine.cluster_ids)) == engine.cluster_ids  # still unique
        with pytest.raises(ValueError):
            engine.position_of(retirements[0].cluster_id)

    def test_leaked_members_do_not_spawn_a_duplicate(self, stream_model):
        """Borderline members of an existing cluster must not respawn it."""
        engine = StreamingSSPC(stream_model.to_artifact(), config=adaptive_config())
        for batch in make_stream().batches(30, 150):
            engine.process_batch(batch.data)
        assert engine.n_spawned == 0


class TestDriftAdaptation:
    def test_small_mean_shift_triggers_a_refresh_not_a_spawn(self, stream_model):
        # A shift small enough that points keep passing the gate: the
        # cluster's accepted-traffic mean moves, the detector fires, and
        # the cluster is re-anchored in place.
        stream = make_stream(events=[MeanShift(batch=4, cluster=0, magnitude=0.08)])
        engine = StreamingSSPC(stream_model.to_artifact(), config=adaptive_config())
        for batch in stream.batches(20, 150):
            engine.process_batch(batch.data)
        assert engine.n_drift_refreshes >= 1
        drift_events = [event for event in engine.events if event.kind == "drift"]
        assert all(event.details["score"] > 8.0 for event in drift_events)

    def test_refreshed_cluster_tracks_the_new_population(self, stream_model):
        stream = make_stream(events=[MeanShift(batch=4, cluster=0, magnitude=0.08)])
        engine = StreamingSSPC(stream_model.to_artifact(), config=adaptive_config())
        aris = []
        for batch in stream.batches(24, 150):
            result = engine.process_batch(batch.data)
            clustered = batch.labels >= 0
            aris.append(adjusted_rand_index(batch.labels[clustered], result.labels[clustered]))
        assert np.mean(aris[-6:]) > 0.9

    def test_mixed_event_gauntlet_recovers(self, stream_model):
        stream = make_stream(
            events=[
                MeanShift(batch=16, cluster=0, magnitude=0.35),
                ClusterBirth(batch=20),
                ClusterDeath(batch=24, cluster=2),
            ]
        )
        engine = StreamingSSPC(stream_model.to_artifact(), config=adaptive_config())
        aris = []
        for batch in stream.batches(56, 150):
            result = engine.process_batch(batch.data)
            clustered = batch.labels >= 0
            aris.append(adjusted_rand_index(batch.labels[clustered], result.labels[clustered]))
        assert np.mean(aris[:16]) > 0.95
        assert np.mean(aris[-10:]) > 0.9
        assert engine.n_spawned >= 1


class TestProjectionWindow:
    def test_projection_buffers_stay_bounded(self, stream_model):
        engine = StreamingSSPC(
            stream_model.to_artifact(),
            config=StreamConfig(seed=1, projection_window=64, lifecycle_every=0,
                                drift_check_every=0),
        )
        for batch in make_stream().batches(10, 150):
            engine.process_batch(batch.data)
        for position in range(engine.n_clusters):
            projections = engine.index._clusters[position].projections
            assert projections.shape[0] <= 64


class TestCheckpointRestore:
    def test_interrupted_run_is_bit_identical_to_uninterrupted(self, stream_model, tmp_path):
        stream = make_stream(
            events=[MeanShift(batch=10, cluster=0, magnitude=0.35), ClusterBirth(batch=14)]
        )
        config = adaptive_config()
        reference = StreamingSSPC(stream_model.to_artifact(), config=config)
        reference_labels = [
            reference.process_batch(batch.data).labels for batch in stream.batches(30, 150)
        ]

        interrupted = StreamingSSPC(stream_model.to_artifact(), config=config)
        for batch in stream.batches(18, 150):
            interrupted.process_batch(batch.data)
        assert interrupted.adapted  # the checkpoint exercises the export path
        interrupted.checkpoint(tmp_path / "ck")
        resumed = load_checkpoint(tmp_path / "ck")
        assert resumed.n_batches == 18
        resumed_labels = [
            resumed.process_batch(batch.data).labels
            for batch in stream.batches(12, 150, start=18)
        ]
        for left, right in zip(reference_labels[18:], resumed_labels):
            np.testing.assert_array_equal(left, right)
        assert resumed.cluster_ids == reference.cluster_ids
        assert len(resumed.events) == len(reference.events)
        for position in range(reference.n_clusters):
            ours = resumed.index.cluster_statistics(position)
            theirs = reference.index.cluster_statistics(position)
            assert ours.size == theirs.size
            assert np.array_equal(ours.dimensions, theirs.dimensions)
            assert np.array_equal(ours.mean, theirs.mean)
            assert np.array_equal(ours.variance, theirs.variance)
            assert np.array_equal(ours.median_selected, theirs.median_selected)

    def test_unadapted_checkpoint_preserves_training_payload(self, stream_model, tmp_path):
        """Without adaptation the checkpoint folds into the source artifact."""
        engine = StreamingSSPC(stream_model.to_artifact(), config=StreamConfig(seed=1))
        for batch in make_stream().batches(6, 150):
            engine.process_batch(batch.data)
        assert not engine.adapted
        engine.checkpoint(tmp_path / "ck")
        from repro.serving.artifact import load_artifact

        artifact = load_artifact(resolve_checkpoint_dir(tmp_path / "ck") / "model")
        assert artifact.n_objects == 900  # training labels/members survived
        assert artifact.metadata["serving_sizes"] == [
            int(size) for size in engine.index.cluster_sizes()
        ]

    def test_repeated_checkpoints_record_absolute_absorbed_counts(
        self, stream_model, tmp_path
    ):
        """Re-checkpointing an unadapted engine must not double-count."""
        from repro.serving.artifact import load_artifact

        engine = StreamingSSPC(stream_model.to_artifact(), config=StreamConfig(seed=1))
        stream = make_stream()
        for batch in stream.batches(3, 150):
            engine.process_batch(batch.data)
        engine.checkpoint(tmp_path / "ck")
        for batch in stream.batches(3, 150, start=3):
            engine.process_batch(batch.data)
        engine.checkpoint(tmp_path / "ck")
        artifact = load_artifact(resolve_checkpoint_dir(tmp_path / "ck") / "model")
        assert artifact.metadata["absorbed_points"] == engine.index.n_points_absorbed
        # ... and a restored engine keeps the running total correct.
        resumed = load_checkpoint(tmp_path / "ck")
        for batch in stream.batches(2, 150, start=6):
            resumed.process_batch(batch.data)
        resumed.checkpoint(tmp_path / "ck")
        artifact = load_artifact(resolve_checkpoint_dir(tmp_path / "ck") / "model")
        assert artifact.metadata["absorbed_points"] == (
            engine.index.n_points_absorbed + resumed.index.n_points_absorbed
        )

    def test_adapted_checkpoint_exports_serving_state(self, stream_model, tmp_path):
        stream = make_stream(events=[ClusterBirth(batch=2)])
        engine = StreamingSSPC(stream_model.to_artifact(), config=adaptive_config())
        for batch in stream.batches(12, 150):
            engine.process_batch(batch.data)
        assert engine.adapted
        engine.checkpoint(tmp_path / "ck")
        from repro.serving.artifact import load_artifact

        artifact = load_artifact(resolve_checkpoint_dir(tmp_path / "ck") / "model")
        assert artifact.n_objects == 0  # no training payload for adapted state
        assert artifact.n_clusters == engine.n_clusters


class TestConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"outlier_buffer_size": 0},
            {"spawn_min_points": 1},
            {"retire_patience": 0},
            {"drift_window": 1},
            {"drift_min_points": 1},
            {"drift_window": 16, "drift_min_points": 32},
            {"projection_window": 0},
            {"lifecycle_every": -1},
        ],
    )
    def test_bad_configs_rejected(self, overrides):
        with pytest.raises(ValueError):
            StreamConfig(**overrides)

    def test_config_round_trips_through_dict(self):
        config = StreamConfig(seed=5, max_clusters=7, projection_window=32)
        assert StreamConfig.from_dict(config.to_dict()) == config
