"""Tests for the grid (multi-dimensional histogram) engine."""

import numpy as np
import pytest

from repro.core.grid import Grid, one_dimensional_density


@pytest.fixture()
def clustered_data():
    """200 objects in 10 dims; objects 0-49 concentrated on dims 0-2."""
    rng = np.random.default_rng(21)
    data = rng.uniform(0, 100, size=(200, 10))
    data[:50, 0] = rng.normal(25, 2.0, size=50)
    data[:50, 1] = rng.normal(60, 2.0, size=50)
    data[:50, 2] = rng.normal(80, 2.0, size=50)
    return data


class TestGridConstruction:
    def test_all_objects_fall_in_some_cell(self, clustered_data):
        grid = Grid(clustered_data, [0, 1, 2], bins_per_dimension=4)
        total = sum(grid.cell_density(cell) for cell in grid._cells)
        assert total == clustered_data.shape[0]

    def test_restrict_to_limits_objects(self, clustered_data):
        subset = np.arange(50, 200)
        grid = Grid(clustered_data, [0, 1], bins_per_dimension=4, restrict_to=subset)
        total = sum(grid.cell_density(cell) for cell in grid._cells)
        assert total == subset.size

    def test_cell_of_point_consistent_with_membership(self, clustered_data):
        grid = Grid(clustered_data, [0, 1, 2], bins_per_dimension=5)
        for index in (0, 10, 199):
            cell = grid.cell_of(clustered_data[index])
            assert index in grid.cell_members(cell)

    def test_invalid_dimension_rejected(self, clustered_data):
        with pytest.raises(ValueError):
            Grid(clustered_data, [0, 99], bins_per_dimension=4)

    def test_requires_at_least_two_bins(self, clustered_data):
        with pytest.raises(ValueError):
            Grid(clustered_data, [0], bins_per_dimension=1)

    def test_constant_dimension_handled(self):
        data = np.column_stack([np.ones(30), np.linspace(0, 1, 30)])
        grid = Grid(data, [0, 1], bins_per_dimension=3)
        assert grid.n_cells >= 1


class TestPeakSearches:
    def test_absolute_peak_finds_cluster_core(self, clustered_data):
        grid = Grid(clustered_data, [0, 1, 2], bins_per_dimension=4)
        peak = grid.absolute_peak()
        # The dense region is the 50-object cluster; most peak members belong to it.
        assert peak.density >= 10
        assert np.mean(peak.members < 50) >= 0.85

    def test_peak_density_lower_with_irrelevant_dimension(self, clustered_data):
        relevant = Grid(clustered_data, [0, 1, 2], bins_per_dimension=4).absolute_peak()
        mixed = Grid(clustered_data, [0, 1, 7], bins_per_dimension=4).absolute_peak()
        assert relevant.density > mixed.density

    def test_hill_climb_from_cluster_median(self, clustered_data):
        grid = Grid(clustered_data, [0, 1, 2], bins_per_dimension=4)
        anchor = np.median(clustered_data[:50], axis=0)
        result = grid.hill_climb(anchor)
        assert result.density >= grid.cell_density(grid.cell_of(anchor))
        assert np.mean(result.members < 50) > 0.8

    def test_hill_climb_reaches_local_maximum(self, clustered_data):
        grid = Grid(clustered_data, [0, 1], bins_per_dimension=5)
        result = grid.hill_climb(clustered_data[100])
        for neighbour in grid._neighbours(result.cell):
            assert grid.cell_density(neighbour) <= result.density

    def test_hill_climb_from_biased_anchor_recovers_peak(self, clustered_data):
        # Start from a point offset from the cluster centre (simulating a
        # labeled-object median biased to one side of the class).
        grid = Grid(clustered_data, [0, 1, 2], bins_per_dimension=4)
        biased = np.median(clustered_data[:50], axis=0)
        biased[0] += 8.0
        result = grid.hill_climb(biased)
        assert np.mean(result.members < 50) > 0.5

    def test_empty_grid_absolute_peak(self, clustered_data):
        grid = Grid(clustered_data, [0], bins_per_dimension=3, restrict_to=[5])
        peak = grid.absolute_peak()
        assert peak.density == 1


class TestOneDimensionalDensity:
    def test_density_higher_on_relevant_dimension(self, clustered_data):
        anchor = clustered_data[10]  # a cluster member
        relevant = one_dimensional_density(clustered_data, 0, anchor[0], bins=10)
        irrelevant = one_dimensional_density(clustered_data, 7, anchor[7], bins=10)
        assert relevant > irrelevant

    def test_density_is_a_fraction(self, clustered_data):
        value = one_dimensional_density(clustered_data, 3, 50.0, bins=10)
        assert 0.0 <= value <= 1.0

    def test_restrict_to(self, clustered_data):
        # Restricted to the cluster members, the value range shrinks to the
        # cluster's own spread, so the anchor bin holds clearly more than the
        # uniform baseline (1/bins) but not necessarily a large fraction.
        value = one_dimensional_density(
            clustered_data, 0, 25.0, bins=10, restrict_to=np.arange(50)
        )
        assert value > 1.0 / 10

    def test_invalid_dimension(self, clustered_data):
        with pytest.raises(ValueError):
            one_dimensional_density(clustered_data, 99, 0.0)
