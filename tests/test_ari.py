"""Tests for the Adjusted Rand Index (Eq. 5), including property-based checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.ari import adjusted_rand_index, hubert_arabie_ari, pair_counts

label_vectors = st.lists(st.integers(min_value=-1, max_value=4), min_size=2, max_size=40)


class TestPairCounts:
    def test_identical_partitions(self):
        labels = [0, 0, 1, 1, 2]
        a, b, c, d = pair_counts(labels, labels)
        assert b == 0 and c == 0
        assert a == 2  # pairs (0,1) and (2,3)
        assert a + b + c + d == 10  # C(5, 2)

    def test_known_small_example(self):
        true = [0, 0, 1, 1]
        pred = [0, 1, 0, 1]
        a, b, c, d = pair_counts(true, pred)
        assert (a, b, c, d) == (0, 2, 2, 2)

    def test_outliers_as_singletons_penalise_discarding(self):
        true = [0, 0, 0, 1, 1, 1]
        pred_all = [0, 0, 0, 1, 1, 1]
        pred_discard = [0, 0, -1, 1, 1, -1]
        assert adjusted_rand_index(true, pred_all) > adjusted_rand_index(true, pred_discard)

    def test_outlier_dropping_mode(self):
        true = [0, 0, 1, 1, -1]
        pred = [0, 0, 1, 1, 2]
        a, b, c, d = pair_counts(true, pred, outliers_as_singletons=False)
        assert a + b + c + d == 6  # C(4, 2): the true outlier is dropped

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pair_counts([0, 1], [0, 1, 2])

    def test_single_object(self):
        assert pair_counts([0], [0]) == (0, 0, 0, 0)


class TestAdjustedRandIndex:
    def test_identical_is_one(self):
        labels = [0, 1, 2, 0, 1, 2, 0]
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_label_permutation_invariance(self):
        true = [0, 0, 1, 1, 2, 2]
        pred = [2, 2, 0, 0, 1, 1]
        assert adjusted_rand_index(true, pred) == pytest.approx(1.0)

    def test_random_partition_near_zero(self):
        rng = np.random.default_rng(0)
        true = np.repeat(np.arange(4), 50)
        values = [
            adjusted_rand_index(true, rng.integers(0, 4, size=200)) for _ in range(20)
        ]
        assert abs(float(np.mean(values))) < 0.05

    def test_single_cluster_vs_split(self):
        true = [0] * 6
        pred = [0, 0, 0, 1, 1, 1]
        value = adjusted_rand_index(true, pred)
        assert value < 1.0

    def test_worse_than_chance_can_be_negative(self):
        true = [0, 0, 1, 1]
        pred = [0, 1, 0, 1]
        assert adjusted_rand_index(true, pred) < 0.0 or adjusted_rand_index(true, pred) == pytest.approx(
            -0.5
        )

    def test_known_value(self):
        # Hand-computed example: U = {0,0,1,1,1}, V = {0,0,0,1,1}
        true = [0, 0, 1, 1, 1]
        pred = [0, 0, 0, 1, 1]
        a, b, c, d = pair_counts(true, pred)
        expected = 2 * (a * d - b * c) / ((a + b) * (b + d) + (a + c) * (c + d))
        assert adjusted_rand_index(true, pred) == pytest.approx(expected)


class TestAriProperties:
    @settings(max_examples=80, deadline=None)
    @given(true=label_vectors, seed=st.integers(0, 100))
    def test_paper_formula_matches_hubert_arabie(self, true, seed):
        """Eq. 5 of the paper is algebraically the Hubert-Arabie ARI."""
        rng = np.random.default_rng(seed)
        pred = rng.integers(-1, 3, size=len(true)).tolist()
        lhs = adjusted_rand_index(true, pred)
        rhs = hubert_arabie_ari(true, pred)
        assert lhs == pytest.approx(rhs, abs=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(labels=label_vectors)
    def test_symmetry(self, labels):
        rng = np.random.default_rng(1)
        other = rng.integers(-1, 3, size=len(labels)).tolist()
        assert adjusted_rand_index(labels, other) == pytest.approx(
            adjusted_rand_index(other, labels)
        )

    @settings(max_examples=50, deadline=None)
    @given(labels=label_vectors)
    def test_self_comparison_is_one(self, labels):
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    @settings(max_examples=50, deadline=None)
    @given(labels=label_vectors, seed=st.integers(0, 100))
    def test_bounded_above_by_one(self, labels, seed):
        rng = np.random.default_rng(seed)
        pred = rng.integers(-1, 4, size=len(labels)).tolist()
        assert adjusted_rand_index(labels, pred) <= 1.0 + 1e-12
