"""End-to-end serving telemetry: ids, accounting, Prometheus, traces, SLOs.

Everything here drives a real :class:`PredictServer` over real loopback
sockets — the acceptance surface for the request-id contract, the
error-path accounting, the Prometheus/JSON agreement, and the linked
request → flush → worker trace assembly.
"""

from __future__ import annotations

import asyncio
import contextlib
import json

import numpy as np
import pytest

from repro.server.app import PredictServer, ServerConfig


@pytest.fixture(scope="module")
def query_points():
    rng = np.random.default_rng(7)
    return rng.normal(size=(12, 40))


@contextlib.asynccontextmanager
async def running_server(artifact_path, **config_kwargs):
    config_kwargs.setdefault("port", 0)
    server = PredictServer(artifact_path, ServerConfig(**config_kwargs))
    host, port = await server.start()
    try:
        yield server, host, port
    finally:
        await server.stop()


async def raw_exchange(host, port, raw: bytes):
    """Send pre-built bytes, read one full response off the socket."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(raw)
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split()[1])
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"", b"\n"):
                break
            name, _, value = line.decode().partition(":")
            headers[name.strip().lower()] = value.strip()
        body = await reader.readexactly(int(headers.get("content-length", 0)))
        return status, headers, json.loads(body) if body else None
    finally:
        writer.close()
        with contextlib.suppress(ConnectionError):
            await writer.wait_closed()


async def request(host, port, method, path, payload=None, extra_headers=()):
    body = b"" if payload is None else json.dumps(payload).encode()
    head = "%s %s HTTP/1.1\r\nHost: test\r\n" % (method, path)
    for name, value in extra_headers:
        head += "%s: %s\r\n" % (name, value)
    if body:
        head += "Content-Type: application/json\r\nContent-Length: %d\r\n" % len(body)
    return await raw_exchange(host, port, head.encode() + b"\r\n" + body)


class TestRequestIds:
    def test_inbound_id_is_echoed(self, artifact_on_disk, query_points):
        async def drive():
            async with running_server(artifact_on_disk) as (server, host, port):
                return await request(
                    host,
                    port,
                    "POST",
                    "/predict",
                    {"point": list(query_points[0])},
                    extra_headers=[("X-Request-Id", "caller-abc")],
                )

        status, headers, body = asyncio.run(drive())
        assert status == 200
        assert headers["x-request-id"] == "caller-abc"
        assert "label" in body

    def test_generated_ids_are_unique(self, artifact_on_disk, query_points):
        async def drive():
            async with running_server(artifact_on_disk) as (server, host, port):
                results = []
                for row in query_points[:3]:
                    results.append(
                        await request(host, port, "POST", "/predict", {"point": list(row)})
                    )
                return results

        ids = [headers["x-request-id"] for _, headers, _ in asyncio.run(drive())]
        assert all(ids)
        assert len(set(ids)) == 3

    def test_oversized_inbound_id_is_capped(self, artifact_on_disk, query_points):
        async def drive():
            async with running_server(artifact_on_disk) as (server, host, port):
                return await request(
                    host,
                    port,
                    "POST",
                    "/predict",
                    {"point": list(query_points[0])},
                    extra_headers=[("X-Request-Id", "x" * 500)],
                )

        _, headers, _ = asyncio.run(drive())
        assert headers["x-request-id"] == "x" * 128


class TestErrorPathAccounting:
    """404 / 400 / 413 must count, echo an id, and feed telemetry."""

    def test_unknown_route_404(self, artifact_on_disk):
        async def drive():
            async with running_server(artifact_on_disk) as (server, host, port):
                result = await request(
                    host,
                    port,
                    "GET",
                    "/no/such/route",
                    extra_headers=[("X-Request-Id", "lost-1")],
                )
                return result, dict(server.request_counts), dict(server.error_counts), (
                    server.telemetry.snapshot()
                )

        (status, headers, body), requests, errors, telemetry = asyncio.run(drive())
        assert status == 404
        assert headers["x-request-id"] == "lost-1"
        assert "error" in body
        assert requests[("GET", "/no/such/route")] == 1
        assert errors["404"] == 1
        assert telemetry["requests_total"]["other"]["4xx"] == 1

    def test_wrong_method_405(self, artifact_on_disk):
        async def drive():
            async with running_server(artifact_on_disk) as (server, host, port):
                result = await request(host, port, "GET", "/predict")
                return result, dict(server.error_counts)

        (status, headers, _), errors = asyncio.run(drive())
        assert status == 405
        assert headers["x-request-id"]
        assert errors["405"] == 1

    def test_json_parse_error_400(self, artifact_on_disk):
        async def drive():
            async with running_server(artifact_on_disk) as (server, host, port):
                raw = (
                    b"POST /predict HTTP/1.1\r\nHost: t\r\n"
                    b"X-Request-Id: broken-7\r\n"
                    b"Content-Type: application/json\r\nContent-Length: 9\r\n\r\n"
                    b"not json!"
                )
                result = await raw_exchange(host, port, raw)
                return result, dict(server.request_counts), dict(server.error_counts)

        (status, headers, body), requests, errors = asyncio.run(drive())
        assert status == 400
        assert headers["x-request-id"] == "broken-7"
        assert requests[("POST", "/predict")] == 1
        assert errors["400"] == 1

    def test_malformed_header_is_counted_as_bad_request(self, artifact_on_disk):
        async def drive():
            async with running_server(artifact_on_disk) as (server, host, port):
                raw = b"POST /predict HTTP/1.1\r\nthis-is-not-a-header\r\n\r\n"
                result = await raw_exchange(host, port, raw)
                return result, dict(server.request_counts), (
                    server.telemetry.snapshot()
                )

        (status, headers, _), requests, telemetry = asyncio.run(drive())
        assert status == 400
        assert headers["x-request-id"], "even a malformed request gets an id"
        assert requests[("*", "bad_request")] == 1
        assert telemetry["requests_total"]["bad_request"]["4xx"] == 1

    def test_oversized_body_413(self, artifact_on_disk):
        async def drive():
            async with running_server(
                artifact_on_disk, max_body_bytes=256
            ) as (server, host, port):
                payload = {"point": [0.0] * 10_000}
                result = await request(
                    host,
                    port,
                    "POST",
                    "/predict",
                    payload,
                    extra_headers=[("X-Request-Id", "big-1")],
                )
                return result, dict(server.request_counts), dict(server.error_counts)

        (status, headers, _), requests, errors = asyncio.run(drive())
        assert status == 413
        assert headers["x-request-id"] == "big-1"
        assert requests[("*", "bad_request")] == 1
        assert errors["413"] == 1


def parse_prometheus(text: str):
    """``{(name, sorted-label-tuple): value}`` for every sample line."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        body, _, value = line.rpartition(" ")
        if "{" in body:
            name, _, rest = body.partition("{")
            labels = tuple(
                sorted(
                    (pair.split("=", 1)[0], pair.split("=", 1)[1].strip('"'))
                    for pair in rest[:-1].split(",")
                    if pair
                )
            )
        else:
            name, labels = body, ()
        samples[(name, labels)] = float(value)
    return samples


class TestPrometheusAgreement:
    def test_bucket_counts_equal_json_snapshot(self, artifact_on_disk, query_points):
        async def drive():
            async with running_server(artifact_on_disk) as (server, host, port):
                for row in query_points:
                    status, _, _ = await request(
                        host, port, "POST", "/predict", {"point": list(row)}
                    )
                    assert status == 200
                # JSON first, then the scrape: predict-route series
                # freeze once predict traffic stops, so the two views
                # must agree exactly for that window.
                _, _, metrics = await request(host, port, "GET", "/metrics")
                return metrics, server.render_prometheus()

        metrics, prometheus = asyncio.run(drive())
        samples = parse_prometheus(prometheus)
        key = tuple(sorted((("route", "predict"), ("status_class", "2xx"))))
        side = metrics["telemetry"]["latency_seconds"]["predict"]["2xx"]
        assert samples[("repro_request_latency_seconds_count", key)] == side["count"]
        assert samples[("repro_requests_total", key)] == (
            metrics["telemetry"]["requests_total"]["predict"]["2xx"]
        )
        buckets = sorted(
            (float("inf") if dict(labels)["le"] == "+Inf" else float(dict(labels)["le"]), value)
            for (name, labels), value in samples.items()
            if name == "repro_request_latency_seconds_bucket"
            and tuple(p for p in labels if p[0] != "le") == key
        )
        cumulative = [value for _, value in buckets]
        assert cumulative == [float(c) for c in side["buckets"]["cumulative"]]
        assert cumulative == sorted(cumulative), "buckets must be cumulative"

    def test_scrape_response_over_http_is_parseable(self, artifact_on_disk):
        async def drive():
            async with running_server(artifact_on_disk) as (server, host, port):
                reader, writer = await asyncio.open_connection(host, port)
                try:
                    writer.write(
                        b"GET /metrics?format=prometheus HTTP/1.1\r\nHost: t\r\n\r\n"
                    )
                    await writer.drain()
                    status_line = await reader.readline()
                    status = int(status_line.split()[1])
                    headers = {}
                    while True:
                        line = await reader.readline()
                        if line in (b"\r\n", b"", b"\n"):
                            break
                        name, _, value = line.decode().partition(":")
                        headers[name.strip().lower()] = value.strip()
                    body = await reader.readexactly(int(headers["content-length"]))
                    return status, headers, body.decode("utf-8")
                finally:
                    writer.close()
                    with contextlib.suppress(ConnectionError):
                        await writer.wait_closed()

        status, headers, text = asyncio.run(drive())
        assert status == 200
        assert "version=0.0.4" in headers["content-type"]
        samples = parse_prometheus(text)
        assert ("repro_uptime_seconds", ()) in samples
        assert ("repro_workers_alive", ()) in samples


class TestFlushAttribution:
    def test_overflow_burst_attribution_via_metrics(self, artifact_on_disk, query_points):
        """A same-pass overflow burst: 10 concurrent singles, max_batch=4.

        The first pass overfills the batch (full flushes) and re-arms
        the remainder; every flush must be attributed to exactly one
        reason, and every submitted point must land in some batch.
        """

        async def drive():
            async with running_server(
                artifact_on_disk, max_batch=4, max_wait_us=50_000.0
            ) as (server, host, port):
                rows = [query_points[i % len(query_points)] for i in range(10)]
                results = await asyncio.gather(
                    *(
                        request(host, port, "POST", "/predict", {"point": list(row)})
                        for row in rows
                    )
                )
                assert all(status == 200 for status, _, _ in results)
                _, _, metrics = await request(host, port, "GET", "/metrics")
                return metrics

        metrics = asyncio.run(drive())
        batcher = metrics["batcher"]
        reasons = batcher["flush_reasons"]
        assert sum(reasons.values()) == batcher["n_flushes"], (
            "every flush must carry exactly one reason"
        )
        assert batcher["n_submitted"] == 10
        assert batcher["n_batched"] == 10, "every submission must reach a batch"
        assert reasons["full"] >= 2, (
            "10 concurrent singles at max_batch=4 must overflow at least twice: %s"
            % reasons
        )


class TestTailTraceEndToEnd:
    def test_linked_request_flush_worker_spans(self, artifact_on_disk, query_points):
        """Acceptance: server.request → server.flush → worker.predict
        share one request id and form a connected parent chain."""

        async def drive():
            async with running_server(artifact_on_disk) as (server, host, port):
                status, _, _ = await request(
                    host,
                    port,
                    "POST",
                    "/predict",
                    {"point": list(query_points[0])},
                    extra_headers=[("X-Request-Id", "traced-1")],
                )
                assert status == 200
                status, _, trace = await request(host, port, "GET", "/debug/tail_trace")
                assert status == 200
                return trace

        trace = asyncio.run(drive())
        spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        mine = [s for s in spans if s["args"].get("request_id") == "traced-1"]
        by_name = {span["name"]: span for span in mine}
        assert {"server.request", "server.flush", "worker.predict"} <= set(by_name), (
            sorted(by_name)
        )
        request_span = by_name["server.request"]
        flush_span = by_name["server.flush"]
        worker_span = by_name["worker.predict"]
        assert flush_span["args"]["parent_id"] == request_span["args"]["span_id"]
        assert worker_span["args"]["parent_id"] == flush_span["args"]["span_id"]
        # the request span carries the batch attribution
        assert request_span["args"]["batch_id"] == flush_span["args"]["batch_id"]
        assert request_span["args"]["flush_reason"] in (
            "quiesce",
            "full",
            "timeout",
            "chained",
            "drain",
        )
        # phase decomposition rode along
        assert "server.queue_wait" in {span["name"] for span in mine}
        assert "server.kernel" in {span["name"] for span in mine}


class TestHealthzSLO:
    def test_healthz_degrades_on_fast_burn(self, artifact_on_disk):
        async def drive():
            async with running_server(artifact_on_disk) as (server, host, port):
                status, _, body = await request(host, port, "GET", "/healthz")
                assert status == 200 and body["status"] == "ok"
                # Inject a server-error storm directly into the tracker:
                # enough 5xx to blow both the 1m and 5m windows.
                for _ in range(30):
                    trace = server.telemetry.begin_request("POST", "predict", "x")
                    server.telemetry.finish_request(trace, 500)
                return await request(host, port, "GET", "/healthz")

        status, headers, body = asyncio.run(drive())
        assert status == 503
        assert body["status"] == "degraded"
        assert body["reason"] == "slo_fast_burn"
        assert headers["x-request-id"]
        assert body["slo"]["fast_burn"] is True
