"""Scaled-down integration tests for the per-figure experiment runners.

The goal is not to reproduce the paper's numbers here (the benchmark
harness does that at full scale) but to verify that every runner executes
end-to-end, produces the expected row structure and preserves the
qualitative relationships the paper reports.
"""

import numpy as np
import pytest

from repro.data.generator import make_projected_clusters
from repro.data.multigroup import make_multigroup_dataset
from repro.experiments.ablations import (
    format_ablation_table,
    run_initialisation_ablation,
    run_representative_ablation,
    run_threshold_scheme_ablation,
)
from repro.experiments.harness import format_series_table
from repro.experiments.knowledge_input import run_coverage_experiment, run_input_size_experiment
from repro.experiments.multiple_groupings import format_multigrouping_table, run_multiple_groupings
from repro.experiments.outlier_immunity import run_outlier_immunity
from repro.experiments.parameter_sensitivity import run_parameter_sensitivity
from repro.experiments.raw_accuracy import run_raw_accuracy
from repro.experiments.scalability import (
    format_scalability_table,
    linear_fit_quality,
    run_scalability,
)


@pytest.mark.slow
class TestRawAccuracyRunner:
    def test_rows_and_projected_advantage(self):
        rows = run_raw_accuracy(
            dimensionalities=(4, 10),
            n_objects=200,
            n_dimensions=40,
            n_clusters=3,
            n_repeats=1,
            include_clarans=True,
            include_harp=False,
            random_state=0,
        )
        assert {row.configuration["l_real"] for row in rows} == {4, 10}
        sspc_rows = [row for row in rows if row.algorithm.startswith("SSPC(m")]
        clarans_rows = [row for row in rows if row.algorithm == "CLARANS"]
        assert len(sspc_rows) == 2 and len(clarans_rows) == 2
        # Projected clustering beats the non-projected reference on this data.
        assert np.mean([r.ari for r in sspc_rows]) > np.mean([r.ari for r in clarans_rows])
        table = format_series_table(rows, x_key="l_real")
        assert "l_real" in table


@pytest.mark.slow
class TestParameterSensitivityRunner:
    def test_sspc_flatter_than_proclus(self):
        rows = run_parameter_sensitivity(
            n_objects=250,
            n_dimensions=40,
            n_clusters=3,
            l_real=6,
            proclus_l_values=(2, 6, 18),
            sspc_m_values=(0.3, 0.5, 0.7),
            sspc_p_values=(0.01,),
            n_repeats=1,
            random_state=1,
        )
        sspc_aris = [row.ari for row in rows if row.algorithm == "SSPC(m)"]
        proclus_aris = [row.ari for row in rows if row.algorithm == "PROCLUS"]
        assert len(sspc_aris) == 3 and len(proclus_aris) == 3
        assert (max(sspc_aris) - min(sspc_aris)) <= (max(proclus_aris) - min(proclus_aris)) + 0.3
        assert min(sspc_aris) > 0.5


@pytest.mark.slow
class TestOutlierImmunityRunner:
    def test_detected_outliers_track_truth(self):
        rows = run_outlier_immunity(
            outlier_fractions=(0.0, 0.2),
            n_objects=300,
            n_dimensions=40,
            n_clusters=3,
            l_real=8,
            n_repeats=1,
            random_state=2,
        )
        assert len(rows) == 2
        clean, contaminated = rows
        assert contaminated.extra["true_outliers"] > 0
        assert contaminated.extra["detected_outliers"] > clean.extra["detected_outliers"] - 5
        assert contaminated.ari > 0.5


@pytest.mark.slow
class TestKnowledgeInputRunners:
    @pytest.fixture(scope="class")
    def small_low_dim(self):
        return make_projected_clusters(
            n_objects=120,
            n_dimensions=400,
            n_clusters=4,
            avg_cluster_dimensionality=8,
            random_state=3,
        )

    def test_input_size_improves_accuracy(self, small_low_dim):
        rows = run_input_size_experiment(
            input_sizes=(0, 5),
            categories=("both",),
            dataset=small_low_dim,
            n_knowledge_draws=2,
            random_state=3,
        )
        by_size = {row.configuration["input_size"]: row.ari for row in rows}
        assert by_size[5] > by_size[0]
        assert by_size[5] > 0.5

    def test_coverage_rows_structure(self, small_low_dim):
        rows = run_coverage_experiment(
            coverages=(0.0, 1.0),
            categories=("dimensions",),
            dataset=small_low_dim,
            input_size=4,
            n_knowledge_draws=2,
            random_state=4,
        )
        assert len(rows) == 2
        coverages = {row.configuration["coverage"] for row in rows}
        assert coverages == {0.0, 1.0}
        full = [row for row in rows if row.configuration["coverage"] == 1.0][0]
        none = [row for row in rows if row.configuration["coverage"] == 0.0][0]
        assert full.ari >= none.ari - 0.05


@pytest.mark.slow
class TestMultipleGroupingsRunner:
    def test_guidance_steers_result(self):
        dataset = make_multigroup_dataset(
            n_objects=100,
            n_dimensions_per_grouping=200,
            n_clusters=3,
            avg_cluster_dimensionality=8,
            random_state=5,
        )
        rows = run_multiple_groupings(
            dataset=dataset,
            input_size=5,
            include_harp=False,
            include_proclus=True,
            n_repeats=1,
            random_state=5,
        )
        table = format_multigrouping_table(rows)
        assert "grouping 1" in table
        guided1 = [r for r in rows if r.guidance == "grouping 1"][0]
        guided2 = [r for r in rows if r.guidance == "grouping 2"][0]
        # Knowledge from grouping i should favour grouping i.
        assert guided1.ari_grouping1 > guided1.ari_grouping2
        assert guided2.ari_grouping2 > guided2.ari_grouping1


@pytest.mark.slow
class TestScalabilityRunner:
    def test_rows_and_linearity(self):
        rows = run_scalability(
            object_counts=(100, 200, 400),
            dimension_counts=(20, 40, 80),
            base_objects=150,
            base_dimensions=20,
            n_clusters=3,
            l_real=4,
            n_repeats=1,
            random_state=6,
        )
        algorithms = {row.algorithm for row in rows}
        assert algorithms == {"SSPC", "PROCLUS"}
        table = format_scalability_table(rows)
        assert "n_objects" in table and "n_dimensions" in table
        fit = linear_fit_quality(rows, "SSPC", "n_objects")
        assert fit["slope"] > 0


@pytest.mark.slow
class TestAblationRunners:
    def test_representative_ablation_runs(self):
        rows = run_representative_ablation(
            n_objects=240, n_dimensions=40, n_clusters=3, l_real=6,
            outlier_fraction=0.15, n_repeats=1, random_state=7,
        )
        variants = {row.variant for row in rows}
        assert len(rows) == 2 and len(variants) == 2
        assert all(0.0 <= row.ari <= 1.0 for row in rows)

    def test_initialisation_ablation_favours_seed_groups(self):
        rows = run_initialisation_ablation(
            n_objects=240, n_dimensions=80, n_clusters=3, l_real=5, n_repeats=1, random_state=8
        )
        by_variant = {row.variant: row.ari for row in rows}
        assert by_variant["seed groups (paper)"] >= by_variant["random medoids (ablated)"] - 0.1

    def test_threshold_ablation_and_table(self):
        rows = run_threshold_scheme_ablation(
            n_objects=240, n_dimensions=40, n_clusters=3, l_real=6, n_repeats=1, random_state=9
        )
        assert len(rows) == 4  # 2 schemes x 2 distributions
        text = format_ablation_table(rows)
        assert "m-scheme" in text and "p-scheme" in text
