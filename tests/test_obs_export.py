"""Exporters: Chrome trace shape, metrics snapshots, crash-safe writes."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.export import summarize_histogram
from repro.reliability import CHECKSUM_KEY
from repro.reliability.atomic import read_json
from tests.test_obs_core import make_clock


@pytest.fixture(autouse=True)
def _obs_off():
    obs.disable()
    yield
    obs.disable()


def _record_sample() -> obs.Recorder:
    with obs.recording(clock=make_clock(), trace_id="sample") as rec:
        with obs.span("fit", category="fit", k=3):
            with obs.span("fit.assign", category="fit"):
                obs.incr("engine.gains_calls")
        obs.observe("stream.batch_size", 128)
        obs.event("drift", cluster_id=1)
    return rec


def test_chrome_trace_shape_and_microseconds():
    rec = _record_sample()
    payload = obs.chrome_trace(rec)
    assert set(payload) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert payload["otherData"]["trace_id"] == "sample"
    events = payload["traceEvents"]
    complete = {e["name"]: e for e in events if e["ph"] == "X"}
    assert set(complete) == {"fit", "fit.assign"}
    span = complete["fit.assign"]
    assert span["cat"] == "fit"
    assert span["dur"] > 0  # microseconds
    assert span["args"]["parent_id"] == complete["fit"]["args"]["span_id"]
    instants = [e for e in events if e["ph"] == "i"]
    assert [e["name"] for e in instants] == ["drift"]
    assert instants[0]["args"] == {"cluster_id": 1}
    metas = [e for e in events if e["ph"] == "M"]
    assert any(e["name"] == "process_name" for e in metas)
    # the whole payload must be JSON-serialisable (Perfetto loads it raw)
    json.dumps(payload)


def test_trace_round_trip_via_file(tmp_path):
    rec = _record_sample()
    path = tmp_path / "trace.json"
    obs.write_chrome_trace(path, rec)
    loaded = obs.load_chrome_trace(path)
    assert loaded == obs.chrome_trace(rec)
    with pytest.raises(ValueError):
        bad = tmp_path / "bad.json"
        bad.write_text('{"no": "traceEvents"}')
        obs.load_chrome_trace(bad)


def test_metrics_snapshot_summaries():
    rec = _record_sample()
    snapshot = obs.metrics_snapshot(rec)
    assert snapshot["schema_version"] == 1
    assert snapshot["trace_id"] == "sample"
    assert snapshot["counters"] == {"engine.gains_calls": 1.0}
    assert snapshot["histograms"]["stream.batch_size"]["count"] == 1
    assert snapshot["event_kinds"] == {"drift": 1}
    assert snapshot["spans"]["count"] == 2
    assert snapshot["spans"]["by_category"]["fit"]["count"] == 2
    assert snapshot["n_hook_calls"] == rec.n_hook_calls > 0


def test_metrics_written_checksummed(tmp_path):
    rec = _record_sample()
    path = tmp_path / "metrics.json"
    obs.write_metrics(path, rec)
    raw = json.loads(path.read_text())
    assert CHECKSUM_KEY in raw
    verified = read_json(path)  # raises IntegrityError on corruption
    assert verified["counters"] == {"engine.gains_calls": 1.0}


def test_summarize_histogram_quantiles():
    assert summarize_histogram([]) == {"count": 0}
    summary = summarize_histogram(list(range(1, 101)))
    assert summary["count"] == 100
    assert summary["min"] == 1 and summary["max"] == 100
    assert summary["p50"] == 50
    assert summary["p90"] == 90
    assert summary["p99"] == 99


def test_trace_session_noop_without_paths():
    with obs.trace_session() as recorder:
        assert recorder is None
        assert not obs.enabled()


def test_trace_session_writes_both_artifacts(tmp_path):
    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    logged = []
    with obs.trace_session(trace=trace_path, metrics=metrics_path, log=logged.append):
        with obs.span("fit", category="fit"):
            pass
    assert not obs.enabled()
    assert obs.load_chrome_trace(trace_path)["traceEvents"]
    assert read_json(metrics_path)["spans"]["count"] == 1
    assert len(logged) == 2


def test_trace_session_writes_on_error(tmp_path):
    trace_path = tmp_path / "trace.json"
    with pytest.raises(RuntimeError):
        with obs.trace_session(trace=trace_path):
            with obs.span("doomed", category="fit"):
                raise RuntimeError("boom")
    payload = obs.load_chrome_trace(trace_path)
    names = [e["name"] for e in payload["traceEvents"] if e["ph"] == "X"]
    assert names == ["doomed"]
