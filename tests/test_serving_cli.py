"""End-to-end tests of the ``repro-serve`` command line."""

from __future__ import annotations

import csv
import json

import numpy as np
import pytest

from repro.data.loaders import save_csv_dataset
from repro.serving.artifact import SCHEMA_VERSION as ARTIFACT_SCHEMA_VERSION
from repro.serving.artifact import load_artifact
from repro.serving.cli import main
from repro.serving.index import ProjectedClusterIndex


@pytest.fixture()
def artifact_dir(fitted_sspc, tmp_path):
    path = tmp_path / "model"
    fitted_sspc.save(path)
    return path


@pytest.fixture()
def points_csv(small_dataset, rng, tmp_path):
    points = small_dataset.data[rng.choice(small_dataset.data.shape[0], size=15)]
    points = points + rng.normal(scale=0.01, size=points.shape)
    path = tmp_path / "points.csv"
    save_csv_dataset(path, points)
    # Return the CSV-quantized values (the CSV writer rounds to 6
    # significant digits) so expectations match what the CLI reads.
    from repro.data.loaders import load_csv_dataset

    quantized, _ = load_csv_dataset(path)
    return path, quantized


def _read_labels(path):
    with open(path, newline="") as handle:
        rows = list(csv.DictReader(handle))
    return np.asarray([int(row["label"]) for row in rows])


class TestFit:
    def test_fit_synthetic_writes_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "m"
        code = main([
            "fit", "--synthetic", "120x20x2", "--artifact", str(artifact),
            "--random-state", "0", "--max-iterations", "5",
        ])
        assert code == 0
        loaded = load_artifact(artifact)
        assert loaded.n_objects == 120
        assert loaded.n_dimensions == 20
        assert loaded.n_clusters == 2
        assert "artifact written" in capsys.readouterr().out

    def test_fit_from_csv(self, small_dataset, tmp_path):
        train = tmp_path / "train.csv"
        save_csv_dataset(train, small_dataset.data)
        artifact = tmp_path / "m"
        code = main([
            "fit", "--input", str(train), "--artifact", str(artifact),
            "--n-clusters", "3", "--max-iterations", "5", "--random-state", "0",
        ])
        assert code == 0
        assert load_artifact(artifact).n_clusters == 3

    def test_fit_requires_exactly_one_source(self, tmp_path, capsys):
        assert main(["fit", "--artifact", str(tmp_path / "m")]) == 2
        assert "exactly one" in capsys.readouterr().err


class TestPredict:
    def test_labels_match_library_predictions(
        self, artifact_dir, points_csv, tmp_path, capsys
    ):
        points_path, points = points_csv
        out = tmp_path / "out.csv"
        code = main([
            "predict", "--artifact", str(artifact_dir),
            "--input", str(points_path), "--output", str(out),
        ])
        assert code == 0
        expected = ProjectedClusterIndex.from_path(artifact_dir).predict(
            np.loadtxt(points_path, delimiter=",", skiprows=1)
        )
        np.testing.assert_array_equal(_read_labels(out), expected)

    def test_top_m_columns(self, artifact_dir, points_csv, tmp_path):
        points_path, _ = points_csv
        out = tmp_path / "out.csv"
        assert main([
            "predict", "--artifact", str(artifact_dir), "--input", str(points_path),
            "--output", str(out), "--top-m", "2",
        ]) == 0
        with open(out, newline="") as handle:
            header = next(csv.reader(handle))
        assert header == ["index", "label", "cluster_0", "gain_0", "cluster_1", "gain_1"]

    def test_update_save_back_persists_statistics(
        self, artifact_dir, points_csv, tmp_path
    ):
        points_path, points = points_csv
        before = load_artifact(artifact_dir)
        expected = ProjectedClusterIndex(before)
        labels = expected.partial_update(points)
        assert np.count_nonzero(labels >= 0) > 0  # the batch must be absorbed

        out = tmp_path / "out.csv"
        assert main([
            "predict", "--artifact", str(artifact_dir), "--input", str(points_path),
            "--output", str(out), "--update", "--save-back",
        ]) == 0
        after = load_artifact(artifact_dir)
        assert after.metadata["absorbed_points"] == expected.n_points_absorbed
        assert after.metadata["serving_sizes"] == [
            int(size) for size in expected.cluster_sizes()
        ]
        for i, cluster in enumerate(after.clusters):
            stats = expected.cluster_statistics(i)
            np.testing.assert_array_equal(cluster.mean, stats.mean)
            np.testing.assert_array_equal(cluster.variance, stats.variance)
            np.testing.assert_array_equal(
                cluster.median[stats.dimensions], stats.median_selected
            )
        # A reloaded index resumes from the absorbed sizes (thresholds and
        # further gains match the in-memory updated index exactly).
        reloaded = ProjectedClusterIndex(after)
        np.testing.assert_array_equal(reloaded.cluster_sizes(), expected.cluster_sizes())
        assert np.array_equal(
            reloaded.gains_matrix(points), expected.gains_matrix(points)
        )

    def test_save_back_without_update_is_refused(
        self, artifact_dir, points_csv, capsys
    ):
        points_path, _ = points_csv
        code = main([
            "predict", "--artifact", str(artifact_dir),
            "--input", str(points_path), "--save-back",
        ])
        assert code == 2
        assert "--save-back requires --update" in capsys.readouterr().err

    def test_missing_input_reports_error(self, artifact_dir, tmp_path, capsys):
        code = main([
            "predict", "--artifact", str(artifact_dir),
            "--input", str(tmp_path / "absent.csv"),
        ])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestInspect:
    def test_json_output(self, artifact_dir, fitted_sspc, capsys):
        assert main(["inspect", "--artifact", str(artifact_dir), "--json"]) == 0
        description = json.loads(capsys.readouterr().out)
        assert description["n_clusters"] == fitted_sspc.n_clusters
        assert description["algorithm"] == "SSPC"
        assert description["schema_version"] == ARTIFACT_SCHEMA_VERSION

    def test_human_output(self, artifact_dir, capsys):
        assert main(["inspect", "--artifact", str(artifact_dir)]) == 0
        out = capsys.readouterr().out
        assert "SSPC artifact" in out
        assert "threshold" in out

    def test_missing_artifact_reports_error(self, tmp_path, capsys):
        assert main(["inspect", "--artifact", str(tmp_path / "nope")]) == 1
        assert "error" in capsys.readouterr().err
