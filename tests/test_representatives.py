"""Tests for bad-cluster detection and representative replacement (Section 4.3)."""

import numpy as np
import pytest

from repro.core.assignment import ClusterState
from repro.core.objective import ObjectiveFunction
from repro.core.representatives import (
    compute_phi_scores,
    find_bad_cluster,
    replace_representatives,
)
from repro.core.thresholds import VarianceRatioThreshold


@pytest.fixture()
def setup():
    rng = np.random.default_rng(17)
    data = rng.uniform(0, 100, size=(90, 8))
    data[:30, 0] = rng.normal(20, 1.0, size=30)
    data[:30, 1] = rng.normal(40, 1.0, size=30)
    data[30:60, 2] = rng.normal(70, 1.0, size=30)
    data[30:60, 3] = rng.normal(80, 1.0, size=30)
    objective = ObjectiveFunction(data, VarianceRatioThreshold(m=0.5))

    def make_state(members, dims):
        members = np.asarray(members, dtype=int)
        return ClusterState(
            representative=np.median(data[members], axis=0),
            dimensions=np.asarray(dims, dtype=int),
            members=members,
            size_hint=members.size,
        )

    return objective, make_state


class TestComputePhiScores:
    def test_overall_is_normalised_sum(self, setup):
        objective, make_state = setup
        states = [make_state(range(30), [0, 1]), make_state(range(30, 60), [2, 3])]
        per_cluster, overall = compute_phi_scores(objective, states)
        assert len(per_cluster) == 2
        expected = sum(per_cluster) / (objective.n_objects * objective.n_dimensions)
        assert overall == pytest.approx(expected)

    def test_good_cluster_scores_positive(self, setup):
        objective, make_state = setup
        per_cluster, _ = compute_phi_scores(objective, [make_state(range(30), [0, 1])])
        assert per_cluster[0] > 0


class TestFindBadCluster:
    def test_lowest_score_cluster_picked(self, setup):
        objective, make_state = setup
        good = make_state(range(30), [0, 1])
        bad = make_state(range(60, 90), [5, 6])  # no real structure
        scores, _ = compute_phi_scores(objective, [good, bad])
        assert find_bad_cluster(objective, [good, bad], scores) == 1

    def test_empty_cluster_is_always_bad(self, setup):
        objective, make_state = setup
        good = make_state(range(30), [0, 1])
        empty = ClusterState(
            representative=np.zeros(objective.n_dimensions),
            dimensions=np.asarray([4]),
            members=np.empty(0, dtype=int),
            size_hint=2,
        )
        scores = [10.0, 50.0]
        assert find_bad_cluster(objective, [good, empty], scores) == 1

    def test_similar_clusters_loser_detected(self, setup):
        objective, make_state = setup
        # Two clusters over the same real cluster: same dims, nearby medians.
        first = make_state(range(20), [0, 1])
        second = make_state(range(15, 30), [0, 1])
        third = make_state(range(30, 60), [2, 3])
        scores, _ = compute_phi_scores(objective, [first, second, third])
        bad = find_bad_cluster(objective, [first, second, third], scores)
        assert bad in (0, 1)
        assert scores[bad] <= scores[1 - bad]

    def test_empty_clustering_rejected(self, setup):
        objective, _ = setup
        with pytest.raises(ValueError):
            find_bad_cluster(objective, [], [])


class TestReplaceRepresentatives:
    def test_bad_cluster_gets_new_medoid_and_dimensions(self, setup):
        objective, make_state = setup
        states = [make_state(range(30), [0, 1]), make_state(range(60, 90), [5])]
        new = replace_representatives(objective, states, bad_cluster=1, new_medoid=35, new_medoid_dimensions=np.asarray([2, 3]))
        np.testing.assert_allclose(new[1].representative, objective.data[35])
        np.testing.assert_array_equal(new[1].dimensions, [2, 3])

    def test_other_clusters_get_median_representative(self, setup):
        objective, make_state = setup
        states = [make_state(range(30), [0, 1]), make_state(range(60, 90), [5])]
        new = replace_representatives(objective, states, 1, 35, None)
        expected_median = np.median(objective.data[np.arange(30)], axis=0)
        np.testing.assert_allclose(new[0].representative, expected_median)

    def test_members_cleared_for_next_iteration(self, setup):
        objective, make_state = setup
        states = [make_state(range(30), [0, 1]), make_state(range(30, 60), [2, 3])]
        new = replace_representatives(objective, states, 0, 5, None)
        assert all(state.members.size == 0 for state in new)

    def test_none_medoid_falls_back_to_median(self, setup):
        objective, make_state = setup
        states = [make_state(range(30), [0, 1]), make_state(range(30, 60), [2, 3])]
        new = replace_representatives(objective, states, 0, None, None)
        expected_median = np.median(objective.data[np.arange(30)], axis=0)
        np.testing.assert_allclose(new[0].representative, expected_median)

    def test_empty_cluster_keeps_previous_representative(self, setup):
        objective, make_state = setup
        empty = ClusterState(
            representative=np.full(objective.n_dimensions, 42.0),
            dimensions=np.asarray([1]),
            members=np.empty(0, dtype=int),
            size_hint=2,
        )
        new = replace_representatives(objective, [empty], bad_cluster=5, new_medoid=None, new_medoid_dimensions=None)
        np.testing.assert_allclose(new[0].representative, 42.0)
