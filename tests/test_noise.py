"""Tests for noisy-knowledge screening (future-work extension)."""

import numpy as np
import pytest

from repro.semisupervision.knowledge import Knowledge
from repro.semisupervision.noise import KnowledgeValidator


@pytest.fixture()
def dataset(small_dataset):
    return small_dataset


class TestObjectScreening:
    def test_correct_objects_are_kept(self, dataset):
        members = np.flatnonzero(dataset.labels == 0)[:5]
        knowledge = Knowledge.from_pairs(object_pairs=[(int(o), 0) for o in members])
        cleaned, report = KnowledgeValidator().validate(dataset.data, knowledge)
        assert cleaned.objects.count(0) == 5
        assert report.n_rejections() == 0

    def test_wrong_object_is_rejected(self, dataset):
        members = np.flatnonzero(dataset.labels == 0)[:5]
        intruder = int(np.flatnonzero(dataset.labels == 1)[0])
        pairs = [(int(o), 0) for o in members] + [(intruder, 0)]
        knowledge = Knowledge.from_pairs(object_pairs=pairs)
        cleaned, report = KnowledgeValidator().validate(dataset.data, knowledge)
        rejected_ids = [obj for obj, _, _ in report.rejected_objects]
        assert intruder in rejected_ids
        assert intruder not in cleaned.objects.for_class(0).tolist()

    def test_too_few_objects_kept_unscreened(self, dataset):
        members = np.flatnonzero(dataset.labels == 0)[:2]
        knowledge = Knowledge.from_pairs(object_pairs=[(int(o), 0) for o in members])
        cleaned, report = KnowledgeValidator().validate(dataset.data, knowledge)
        assert cleaned.objects.count(0) == 2
        assert report.n_rejections() == 0


class TestDimensionScreening:
    def test_correct_dimensions_kept(self, dataset):
        members = np.flatnonzero(dataset.labels == 1)[:6]
        dims = dataset.relevant_dimensions[1][:3]
        knowledge = Knowledge.from_pairs(
            object_pairs=[(int(o), 1) for o in members],
            dimension_pairs=[(int(d), 1) for d in dims],
        )
        cleaned, report = KnowledgeValidator().validate(dataset.data, knowledge)
        assert set(cleaned.dimensions.for_class(1).tolist()) == set(int(d) for d in dims)

    def test_irrelevant_dimension_rejected(self, dataset):
        members = np.flatnonzero(dataset.labels == 1)[:6]
        irrelevant = int(
            np.setdiff1d(np.arange(dataset.n_dimensions), dataset.relevant_dimensions[1])[0]
        )
        knowledge = Knowledge.from_pairs(
            object_pairs=[(int(o), 1) for o in members],
            dimension_pairs=[(irrelevant, 1)],
        )
        cleaned, report = KnowledgeValidator().validate(dataset.data, knowledge)
        assert irrelevant not in cleaned.dimensions.for_class(1).tolist()
        assert report.n_rejections() >= 1

    def test_dimensions_without_objects_kept(self, dataset):
        dims = dataset.relevant_dimensions[2][:2]
        knowledge = Knowledge.from_pairs(dimension_pairs=[(int(d), 2) for d in dims])
        cleaned, _ = KnowledgeValidator().validate(dataset.data, knowledge)
        assert cleaned.dimensions.count(2) == 2


class TestValidatorConfiguration:
    def test_invalid_variance_ratio(self):
        with pytest.raises(ValueError):
            KnowledgeValidator(variance_ratio=0.0)

    def test_invalid_min_supporting_dimensions(self):
        with pytest.raises(ValueError):
            KnowledgeValidator(min_supporting_dimensions=0)

    def test_validator_does_not_mutate_input(self, dataset):
        members = np.flatnonzero(dataset.labels == 0)[:4]
        knowledge = Knowledge.from_pairs(object_pairs=[(int(o), 0) for o in members])
        before = dict(knowledge.objects.by_class)
        KnowledgeValidator().validate(dataset.data, knowledge)
        assert knowledge.objects.by_class == before
