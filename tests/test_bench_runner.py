"""Sharded runner: resume, invalidation, shard/serial equality, failures."""

import glob
import multiprocessing
import os
import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro.bench import registry
from repro.utils.executor import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.bench.runner import profile_filename, run_scenarios, run_suite
from repro.bench.scenario import MetricSpec, Scenario, TaskSpec
from repro.bench.store import RunStore
from repro.utils.rng import random_seed_from, spawn_rngs

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


# ---- synthetic scenario (module-level so process workers can run it) ----


def _demo_plan(config):
    seeds = [random_seed_from(rng) for rng in spawn_rngs(int(config["seed"]), int(config["n_tasks"]))]
    return [
        TaskSpec(
            name="task-%d" % index,
            params={
                "index": index,
                "seed": seed,
                "counter_dir": config["counter_dir"],
                "fail_marker": config.get("fail_marker", ""),
            },
        )
        for index, seed in enumerate(seeds)
    ]


def _demo_execute(params):
    marker = params.get("fail_marker", "")
    if marker and Path(marker).exists() and params["index"] == 1:
        raise RuntimeError("injected task failure")
    handle, _ = tempfile.mkstemp(prefix="task-%d." % params["index"], dir=params["counter_dir"])
    os.close(handle)
    rng = np.random.default_rng(int(params["seed"]))
    return {"index": int(params["index"]), "value": float(rng.normal())}


def _demo_aggregate(payloads):
    values = [payload["value"] for payload in payloads]
    return {
        "metrics": {"value_sum": float(sum(values)), "n_values": float(len(values))},
        "table": "demo",
        "details": {"values": values},
    }


def _executions(counter_dir, index=None):
    pattern = "task-*" if index is None else "task-%d.*" % index
    return len(glob.glob(str(Path(counter_dir) / pattern)))


@pytest.fixture
def demo_scenario(tmp_path):
    counter_dir = tmp_path / "counters"
    counter_dir.mkdir()
    scenario = Scenario(
        scenario_id="demo_runner",
        figure="test",
        title="synthetic runner scenario",
        group="robustness",
        scale_configs={
            scale: {"n_tasks": 3, "seed": 5, "counter_dir": str(counter_dir)}
            for scale in ("smoke", "reduced", "paper")
        },
        plan=_demo_plan,
        execute=_demo_execute,
        aggregate=_demo_aggregate,
        metrics=(MetricSpec("value_sum", "accuracy", "match", 1e-12),),
    )
    registry.register(scenario)
    yield scenario, counter_dir
    registry.unregister("demo_runner")


@pytest.fixture
def failing_scenario(tmp_path):
    counter_dir = tmp_path / "counters-fail"
    counter_dir.mkdir()
    marker = tmp_path / "fail-now"
    marker.touch()
    scenario = Scenario(
        scenario_id="demo_failing",
        figure="test",
        title="synthetic failing scenario",
        group="robustness",
        scale_configs={
            scale: {
                "n_tasks": 3,
                "seed": 5,
                "counter_dir": str(counter_dir),
                "fail_marker": str(marker),
            }
            for scale in ("smoke", "reduced", "paper")
        },
        plan=_demo_plan,
        execute=_demo_execute,
        aggregate=_demo_aggregate,
        metrics=(MetricSpec("value_sum", "accuracy", "match", 1e-12),),
    )
    registry.register(scenario)
    yield scenario, counter_dir, marker
    registry.unregister("demo_failing")


class TestResume:
    def test_completed_tasks_are_not_reexecuted(self, demo_scenario, tmp_path):
        scenario, counter_dir = demo_scenario
        store = RunStore(tmp_path / "run")
        first = run_scenarios([scenario], scale="smoke", store=store, workers=1)
        assert first.ok and first.n_executed == 3
        assert _executions(counter_dir) == 3

        second = run_scenarios([scenario], scale="smoke", store=store, workers=1)
        assert second.ok
        assert second.n_cached == 3 and second.n_executed == 0
        assert _executions(counter_dir) == 3  # nothing ran again
        assert second.summaries["demo_runner"].metrics == first.summaries["demo_runner"].metrics

    def test_partial_store_resumes_only_missing_tasks(self, demo_scenario, tmp_path):
        scenario, counter_dir = demo_scenario
        store = RunStore(tmp_path / "run")
        run_scenarios([scenario], scale="smoke", store=store, workers=1)

        # Simulate a killed run: one record vanishes.
        victim = scenario.build_tasks("smoke")[2]
        store.record_path("demo_runner", victim).unlink()
        report = run_scenarios([scenario], scale="smoke", store=store, workers=1)
        assert report.ok and report.n_cached == 2 and report.n_executed == 1
        assert _executions(counter_dir, index=2) == 2
        assert _executions(counter_dir, index=0) == 1

    def test_no_resume_reexecutes_everything(self, demo_scenario, tmp_path):
        scenario, counter_dir = demo_scenario
        store = RunStore(tmp_path / "run")
        run_scenarios([scenario], scale="smoke", store=store, workers=1)
        run_scenarios([scenario], scale="smoke", store=store, workers=1, resume=False)
        assert _executions(counter_dir) == 6

    def test_config_change_invalidates_records(self, demo_scenario, tmp_path):
        scenario, counter_dir = demo_scenario
        store = RunStore(tmp_path / "run")
        run_scenarios([scenario], scale="smoke", store=store, workers=1)

        changed = Scenario(
            scenario_id=scenario.scenario_id,
            figure=scenario.figure,
            title=scenario.title,
            group=scenario.group,
            scale_configs={
                scale: {"n_tasks": 3, "seed": 6, "counter_dir": str(counter_dir)}
                for scale in ("smoke", "reduced", "paper")
            },
            plan=scenario.plan,
            execute=scenario.execute,
            aggregate=scenario.aggregate,
            metrics=scenario.metrics,
        )
        registry.register(changed, replace=True)
        report = run_scenarios([changed], scale="smoke", store=store, workers=1)
        assert report.n_cached == 0 and report.n_executed == 3
        assert _executions(counter_dir) == 6


class TestFailureHandling:
    def test_interrupted_run_persists_completed_tasks_then_resumes(
        self, failing_scenario, tmp_path
    ):
        scenario, counter_dir, marker = failing_scenario
        store = RunStore(tmp_path / "run")
        report = run_scenarios([scenario], scale="smoke", store=store, workers=1)
        assert not report.ok
        assert "demo_failing/task-1" in report.failures
        assert store.load_summary()["failures"]
        # The two healthy tasks were persisted before the failure surfaced.
        assert _executions(counter_dir, index=0) == 1
        assert _executions(counter_dir, index=2) == 1

        marker.unlink()  # "fix" the failure, rerun: only task-1 executes
        report = run_scenarios([scenario], scale="smoke", store=store, workers=1)
        assert report.ok and report.n_cached == 2 and report.n_executed == 1
        assert _executions(counter_dir, index=0) == 1
        assert _executions(counter_dir, index=1) == 1


@pytest.mark.skipif(not HAS_FORK, reason="process sharding test needs the fork start method")
class TestSharding:
    def test_sharded_equals_serial_on_synthetic_scenario(self, demo_scenario, tmp_path):
        scenario, _ = demo_scenario
        serial_store = RunStore(tmp_path / "serial")
        shard_store = RunStore(tmp_path / "shard")
        serial = run_scenarios([scenario], scale="smoke", store=serial_store, workers=1)
        sharded = run_scenarios([scenario], scale="smoke", store=shard_store, workers=3)
        assert serial.ok and sharded.ok
        assert (
            serial.summaries["demo_runner"].metrics == sharded.summaries["demo_runner"].metrics
        )
        assert (
            serial.summaries["demo_runner"].details["values"]
            == sharded.summaries["demo_runner"].details["values"]
        )

    def test_sharded_equals_serial_on_builtin_scenario(self, tmp_path):
        serial = run_suite(
            scale="smoke",
            run_dir=tmp_path / "serial",
            workers=1,
            scenario_ids=["figure1_knowledge_analysis"],
        )
        sharded = run_suite(
            scale="smoke",
            run_dir=tmp_path / "shard",
            workers=2,
            scenario_ids=["figure1_knowledge_analysis"],
        )
        assert serial.ok and sharded.ok
        assert (
            serial.summaries["figure1_knowledge_analysis"].metrics
            == sharded.summaries["figure1_knowledge_analysis"].metrics
        )


class TestProfiling:
    def test_profile_writes_top25_tables_next_to_manifest(self, demo_scenario, tmp_path):
        scenario, _ = demo_scenario
        store = RunStore(tmp_path / "profiled")
        report = run_scenarios(
            [scenario], scale="smoke", store=store, workers=1, profile=True
        )
        assert report.ok
        profiles = sorted((store.root / "profiles").glob("demo_runner__task-*.txt"))
        assert len(profiles) == 3
        text = profiles[0].read_text()
        assert "cumulative" in text
        assert "top 25" in text

    def test_profile_off_by_default(self, demo_scenario, tmp_path):
        scenario, _ = demo_scenario
        store = RunStore(tmp_path / "plain")
        report = run_scenarios([scenario], scale="smoke", store=store, workers=1)
        assert report.ok
        assert not (store.root / "profiles").exists()

    def test_profiled_records_resume_like_normal_ones(self, demo_scenario, tmp_path):
        scenario, counter_dir = demo_scenario
        store = RunStore(tmp_path / "resume-profiled")
        run_scenarios([scenario], scale="smoke", store=store, workers=1, profile=True)
        executed = _executions(counter_dir)
        report = run_scenarios([scenario], scale="smoke", store=store, workers=1)
        assert report.ok
        assert _executions(counter_dir) == executed  # all cached

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork")
    def test_profile_works_under_process_sharding(self, demo_scenario, tmp_path):
        scenario, _ = demo_scenario
        store = RunStore(tmp_path / "profiled-sharded")
        report = run_scenarios(
            [scenario], scale="smoke", store=store, workers=3, profile=True
        )
        assert report.ok
        profiles = sorted((store.root / "profiles").glob("demo_runner__task-*.txt"))
        assert len(profiles) == 3

    def test_profile_filenames_cannot_collide_across_tasks(self):
        """Regression: ``a__b``/``c`` and ``a``/``b__c`` used to map to one file."""
        first = profile_filename("prof_a__x", TaskSpec(name="t", params={}))
        second = profile_filename("prof_a", TaskSpec(name="x__t", params={}))
        assert first != second
        # same (scenario, task) with different params also gets its own file
        third = profile_filename("prof_a", TaskSpec(name="x__t", params={"seed": 1}))
        assert second != third

    def test_profile_filenames_are_filesystem_safe(self):
        name = profile_filename("weird/scenario", TaskSpec(name="task:0 *", params={}))
        assert "/" not in name and ":" not in name and "*" not in name and " " not in name
        assert name.endswith(".txt")

    def test_no_stale_profile_temp_files(self, demo_scenario, tmp_path):
        scenario, _ = demo_scenario
        store = RunStore(tmp_path / "profiled-clean")
        report = run_scenarios(
            [scenario], scale="smoke", store=store, workers=1, profile=True
        )
        assert report.ok
        assert not list((store.root / "profiles").glob("*.tmp"))


class TestExecutors:
    def test_serial_and_thread_map_preserve_order(self):
        items = list(range(7))
        fn = lambda x: x * x  # noqa: E731
        assert SerialExecutor().map(fn, items) == [x * x for x in items]
        assert ThreadExecutor(3).map(fn, items) == [x * x for x in items]

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork")
    def test_process_map_preserves_order(self):
        items = list(range(7))
        assert ProcessExecutor(3).map(_square, items) == [x * x for x in items]

    def test_worker_validation(self):
        with pytest.raises(ValueError):
            ThreadExecutor(0)
        with pytest.raises(ValueError):
            ProcessExecutor(0)


def _square(x):
    return x * x
