"""The mmap artifact load path: bit-identity, integrity, generation swaps."""

from __future__ import annotations

import shutil

import numpy as np
import pytest

from repro.reliability import IntegrityError
from repro.serving.artifact import load_artifact
from repro.serving.index import ProjectedClusterIndex
from repro.serving.npz_mmap import CompressedMemberError, mmap_npz
from repro.server.pool import build_serving_index


@pytest.fixture(scope="module")
def query_points():
    rng = np.random.default_rng(6)
    return rng.normal(size=(30, 40))


def test_mmap_arrays_and_predictions_match_eager(artifact_on_disk, query_points):
    eager = load_artifact(artifact_on_disk)
    mapped = load_artifact(artifact_on_disk, mmap_mode="r")
    np.testing.assert_array_equal(mapped.labels, eager.labels)
    np.testing.assert_array_equal(mapped.global_variance, eager.global_variance)
    for eager_cluster, mapped_cluster in zip(eager.clusters, mapped.clusters):
        np.testing.assert_array_equal(mapped_cluster.median, eager_cluster.median)
        np.testing.assert_array_equal(mapped_cluster.variance, eager_cluster.variance)
    np.testing.assert_array_equal(
        ProjectedClusterIndex(mapped, copy_arrays=False).predict(query_points),
        ProjectedClusterIndex(eager).predict(query_points),
    )


def test_mode_r_views_are_read_only(artifact_on_disk):
    mapped = mmap_npz(artifact_on_disk / "arrays.npz", mode="r")
    labels = mapped["labels"]
    assert labels.flags.writeable is False
    with pytest.raises((ValueError, OSError)):
        labels[0] = 99


def test_corrupted_member_fails_the_mmap_load(artifact_on_disk, tmp_path):
    copy = tmp_path / "model"
    shutil.copytree(artifact_on_disk, copy)
    arrays_path = copy / "arrays.npz"
    raw = bytearray(arrays_path.read_bytes())
    # Corrupt one byte of the global_variance payload specifically —
    # locating it by content keeps the zip structure itself intact.
    needle = load_artifact(artifact_on_disk).global_variance.tobytes()
    offset = raw.find(needle)
    assert offset > 0, "payload bytes not found in arrays.npz"
    raw[offset + len(needle) // 2] ^= 0xFF
    arrays_path.write_bytes(bytes(raw))
    with pytest.raises(IntegrityError):
        load_artifact(copy, mmap_mode="r")


def test_generation_swap_leaves_live_mmap_readers_intact(
    artifact_on_disk, fitted_sspc, query_points, tmp_path
):
    serving_dir = tmp_path / "model"
    shutil.copytree(artifact_on_disk, serving_dir)
    index = build_serving_index(serving_dir, mmap_mode="r")
    before = index.predict(query_points)

    # Build a *different* artifact (post-fold state) and atomically
    # re-save it over the serving directory while the index still maps
    # the old generation.
    folded_index = ProjectedClusterIndex(load_artifact(artifact_on_disk))
    folded_index.partial_update(query_points)
    folded_artifact = folded_index.export_artifact()
    folded_artifact.save(serving_dir)

    # The live reader holds the old inode: bit-identical answers.
    np.testing.assert_array_equal(index.predict(query_points), before)
    # A fresh load sees the new generation.
    fresh = build_serving_index(serving_dir, mmap_mode="r")
    np.testing.assert_array_equal(
        fresh.predict(query_points), folded_index.predict(query_points)
    )


def test_compressed_npz_is_rejected_by_mmap(tmp_path):
    path = tmp_path / "compressed.npz"
    np.savez_compressed(path, values=np.arange(10.0))
    with pytest.raises(CompressedMemberError):
        mmap_npz(path)


def test_build_serving_index_falls_back_on_compressed_artifact(
    artifact_on_disk, query_points, tmp_path
):
    copy = tmp_path / "model"
    shutil.copytree(artifact_on_disk, copy)
    with np.load(copy / "arrays.npz") as handle:
        arrays = {name: handle[name] for name in handle.files}
    np.savez_compressed(copy / "arrays.npz", **arrays)
    # Same bytes per array (checksums pass), but no longer mappable:
    # the boot falls back to the eager load instead of failing.
    index = build_serving_index(copy, mmap_mode="r")
    reference = ProjectedClusterIndex(load_artifact(artifact_on_disk))
    np.testing.assert_array_equal(
        index.predict(query_points), reference.predict(query_points)
    )
