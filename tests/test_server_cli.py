"""The ``repro-server`` entry point: parser defaults and daemon lifecycle."""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import time
import urllib.request

import numpy as np
import pytest

from repro.serving.artifact import load_artifact
from repro.serving.index import ProjectedClusterIndex
from repro.server.cli import build_parser


class TestBuildParser:
    def test_defaults(self):
        args = build_parser().parse_args(["artifacts/model"])
        assert args.artifact == "artifacts/model"
        assert args.host == "127.0.0.1"
        assert args.port == 8757
        assert args.workers == 0
        assert args.max_batch == 64
        assert args.max_wait_us == 2000.0
        assert args.no_adaptive is False
        assert args.center == "median"
        assert args.no_mmap is False
        assert args.state_dir is None

    def test_artifact_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_center_is_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["model", "--center", "mode"])


def _wait_ready(process, timeout_s=30.0):
    """Read stdout lines until the READY banner; return (host, port)."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise AssertionError(
                "daemon exited before READY: %s" % process.stderr.read()
            )
        if line.startswith("READY"):
            fields = dict(part.split("=") for part in line.split()[1:])
            return fields["host"], int(fields["port"])
    raise AssertionError("daemon did not print READY within %.0fs" % timeout_s)


def test_daemon_boots_serves_and_stops_on_sigterm(artifact_on_disk):
    query = np.random.default_rng(5).normal(size=(1, 40))
    expected = ProjectedClusterIndex(load_artifact(artifact_on_disk)).predict(query)

    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.server.cli",
            str(artifact_on_disk),
            "--port",
            "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        host, port = _wait_ready(process)
        base = "http://%s:%d" % (host, port)
        with urllib.request.urlopen(base + "/healthz", timeout=10) as response:
            health = json.loads(response.read())
        assert health["status"] == "ok"
        body = json.dumps({"point": list(query[0])}).encode()
        with urllib.request.urlopen(
            urllib.request.Request(
                base + "/predict",
                data=body,
                headers={"Content-Type": "application/json"},
            ),
            timeout=10,
        ) as response:
            predicted = json.loads(response.read())
        assert predicted["label"] == int(expected[0])

        process.send_signal(signal.SIGTERM)
        stdout, _ = process.communicate(timeout=30)
        assert "STOPPED" in stdout
        assert process.returncode == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)
