"""Tests for column-wise preprocessing."""

import numpy as np
import pytest

from repro.data.preprocessing import min_max_normalize, standardize


class TestStandardize:
    def test_zero_mean_unit_variance(self, rng):
        data = rng.normal(5.0, 3.0, size=(200, 4))
        transformed, _ = standardize(data)
        np.testing.assert_allclose(transformed.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(transformed.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_maps_to_zero(self):
        data = np.column_stack([np.full(10, 7.0), np.arange(10, dtype=float)])
        transformed, _ = standardize(data)
        np.testing.assert_allclose(transformed[:, 0], 0.0)

    def test_inverse_transform_round_trip(self, rng):
        data = rng.normal(size=(50, 3))
        transformed, scaler = standardize(data)
        np.testing.assert_allclose(scaler.inverse_transform(transformed), data, atol=1e-10)

    def test_transform_new_data_consistent(self, rng):
        train = rng.normal(10, 2, size=(100, 2))
        _, scaler = standardize(train)
        new = np.asarray([[10.0, 10.0]])
        transformed = scaler.transform(new)
        expected = (new - train.mean(axis=0)) / train.std(axis=0)
        np.testing.assert_allclose(transformed, expected)

    def test_column_count_mismatch_rejected(self, rng):
        _, scaler = standardize(rng.normal(size=(20, 3)))
        with pytest.raises(ValueError):
            scaler.transform(rng.normal(size=(5, 4)))


class TestMinMaxNormalize:
    def test_default_range(self, rng):
        data = rng.uniform(-50, 50, size=(100, 5))
        transformed, _ = min_max_normalize(data)
        assert transformed.min() >= -1e-12
        assert transformed.max() <= 1.0 + 1e-12
        np.testing.assert_allclose(transformed.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(transformed.max(axis=0), 1.0, atol=1e-12)

    def test_custom_range(self, rng):
        data = rng.uniform(0, 10, size=(50, 2))
        transformed, _ = min_max_normalize(data, feature_range=(-1.0, 1.0))
        np.testing.assert_allclose(transformed.min(axis=0), -1.0, atol=1e-12)
        np.testing.assert_allclose(transformed.max(axis=0), 1.0, atol=1e-12)

    def test_invalid_range_rejected(self, rng):
        with pytest.raises(ValueError):
            min_max_normalize(rng.normal(size=(5, 2)), feature_range=(1.0, 1.0))

    def test_inverse_round_trip(self, rng):
        data = rng.uniform(3, 9, size=(30, 4))
        transformed, scaler = min_max_normalize(data)
        np.testing.assert_allclose(scaler.inverse_transform(transformed), data, atol=1e-10)

    def test_constant_column(self):
        data = np.column_stack([np.full(10, 4.0), np.arange(10, dtype=float)])
        transformed, _ = min_max_normalize(data)
        np.testing.assert_allclose(transformed[:, 0], 0.0)
