"""Tests for the knowledge-sampling protocol (Section 5.3)."""

import numpy as np
import pytest

from repro.semisupervision.sampling import KnowledgeSampler, sample_knowledge


@pytest.fixture(scope="module")
def ground_truth(small_dataset):
    return small_dataset.labels, small_dataset.relevant_dimensions


class TestSampler:
    def test_both_categories_sizes(self, ground_truth):
        labels, dims = ground_truth
        knowledge = sample_knowledge(
            labels, dims, category="both", input_size=4, coverage=1.0, random_state=0
        )
        for label in range(len(dims)):
            assert knowledge.objects.count(label) == 4
            assert knowledge.dimensions.count(label) == 4

    def test_objects_only(self, ground_truth):
        labels, dims = ground_truth
        knowledge = sample_knowledge(
            labels, dims, category="objects", input_size=3, coverage=1.0, random_state=1
        )
        assert knowledge.objects.count() == 3 * len(dims)
        assert knowledge.dimensions.is_empty()

    def test_dimensions_only(self, ground_truth):
        labels, dims = ground_truth
        knowledge = sample_knowledge(
            labels, dims, category="dimensions", input_size=3, coverage=1.0, random_state=2
        )
        assert knowledge.objects.is_empty()
        assert knowledge.dimensions.count() == 3 * len(dims)

    def test_samples_are_correct_knowledge(self, ground_truth):
        """Sampled labels must come from the real members / relevant dims."""
        labels, dims = ground_truth
        knowledge = sample_knowledge(
            labels, dims, category="both", input_size=5, coverage=1.0, random_state=3
        )
        for label in range(len(dims)):
            members = set(np.flatnonzero(labels == label).tolist())
            relevant = set(np.asarray(dims[label]).tolist())
            assert set(knowledge.objects.for_class(label).tolist()).issubset(members)
            assert set(knowledge.dimensions.for_class(label).tolist()).issubset(relevant)

    def test_coverage_controls_number_of_classes(self, ground_truth):
        labels, dims = ground_truth
        knowledge = sample_knowledge(
            labels, dims, category="both", input_size=4, coverage=0.34, random_state=4
        )
        expected = int(round(0.34 * len(dims)))
        assert len(knowledge.classes()) == expected

    def test_zero_input_size_gives_empty_knowledge(self, ground_truth):
        labels, dims = ground_truth
        knowledge = sample_knowledge(labels, dims, category="both", input_size=0, coverage=1.0)
        assert knowledge.is_empty()

    def test_none_category(self, ground_truth):
        labels, dims = ground_truth
        assert sample_knowledge(labels, dims, category="none", input_size=5).is_empty()

    def test_explicit_covered_classes(self, ground_truth):
        labels, dims = ground_truth
        knowledge = sample_knowledge(
            labels, dims, category="objects", input_size=2, covered_classes=[1], random_state=5
        )
        assert knowledge.classes() == [1]

    def test_input_size_capped_at_available(self, ground_truth):
        labels, dims = ground_truth
        knowledge = sample_knowledge(
            labels, dims, category="dimensions", input_size=1000, coverage=1.0, random_state=6
        )
        for label in range(len(dims)):
            assert knowledge.dimensions.count(label) == len(dims[label])

    def test_independent_draws_differ(self, ground_truth):
        labels, dims = ground_truth
        first = sample_knowledge(labels, dims, category="objects", input_size=3, random_state=7)
        second = sample_knowledge(labels, dims, category="objects", input_size=3, random_state=8)
        assert first.objects.by_class != second.objects.by_class

    def test_invalid_category_rejected(self, ground_truth):
        labels, dims = ground_truth
        with pytest.raises(ValueError):
            sample_knowledge(labels, dims, category="labels", input_size=3)

    def test_invalid_covered_class_rejected(self, ground_truth):
        labels, dims = ground_truth
        sampler = KnowledgeSampler(labels, dims)
        with pytest.raises(ValueError):
            sampler.sample(category="objects", input_size=1, covered_classes=[99])

    def test_mismatched_dimensions_length_rejected(self):
        with pytest.raises(ValueError):
            KnowledgeSampler(np.asarray([0, 1, 2]), [[0]])
