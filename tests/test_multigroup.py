"""Tests for the multiple-groupings dataset (Section 5.4 construction)."""

import numpy as np
import pytest

from repro.data.multigroup import make_multigroup_dataset
from repro.evaluation import adjusted_rand_index


@pytest.fixture(scope="module")
def multigroup():
    return make_multigroup_dataset(
        n_objects=90,
        n_dimensions_per_grouping=60,
        n_clusters=3,
        avg_cluster_dimensionality=6,
        random_state=13,
    )


class TestConstruction:
    def test_combined_shape(self, multigroup):
        assert multigroup.data.shape == (90, 120)
        assert multigroup.n_groupings == 2

    def test_each_grouping_partitions_objects(self, multigroup):
        for grouping in range(2):
            labels = multigroup.grouping_labels(grouping)
            assert labels.shape == (90,)
            assert set(np.unique(labels)) == {0, 1, 2}

    def test_groupings_are_independent(self, multigroup):
        ari = adjusted_rand_index(
            multigroup.grouping_labels(0), multigroup.grouping_labels(1)
        )
        assert abs(ari) < 0.3

    def test_relevant_dimensions_live_in_their_block(self, multigroup):
        for cluster_dims in multigroup.grouping_dimensions(0):
            assert np.all(cluster_dims < 60)
        for cluster_dims in multigroup.grouping_dimensions(1):
            assert np.all((cluster_dims >= 60) & (cluster_dims < 120))

    def test_block_signal_matches_grouping(self, multigroup):
        """Each grouping's structure is visible in its own dimension block."""
        population_variance = (100.0 - 0.0) ** 2 / 12.0
        for grouping in range(2):
            labels = multigroup.grouping_labels(grouping)
            for label, dims in enumerate(multigroup.grouping_dimensions(grouping)):
                members = np.flatnonzero(labels == label)
                local = multigroup.data[members][:, dims].var(axis=0, ddof=1)
                assert np.all(local < 0.25 * population_variance)

    def test_more_than_two_groupings(self):
        dataset = make_multigroup_dataset(
            n_objects=60,
            n_dimensions_per_grouping=30,
            n_clusters=2,
            avg_cluster_dimensionality=4,
            n_groupings=3,
            random_state=5,
        )
        assert dataset.n_groupings == 3
        assert dataset.data.shape == (60, 90)

    def test_requires_at_least_two_groupings(self):
        with pytest.raises(ValueError):
            make_multigroup_dataset(n_groupings=1)
