"""Unit tests of the shared per-iteration statistics engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.objective import ClusterStatistics, ObjectiveFunction
from repro.core.stats_cache import ClusterStatsCache
from repro.core.thresholds import VarianceRatioThreshold


@pytest.fixture()
def data():
    rng = np.random.default_rng(42)
    return rng.normal(size=(60, 12))


def test_statistics_bit_identical_to_direct_computation(data):
    cache = ClusterStatsCache(data)
    members = np.asarray([3, 17, 5, 40, 21])
    cached = cache.statistics(members)
    direct = ClusterStatistics.from_members(data, members)
    assert cached.size == direct.size
    assert np.array_equal(cached.mean, direct.mean)
    assert np.array_equal(cached.median, direct.median)
    assert np.array_equal(cached.variance, direct.variance)


def test_repeated_lookup_costs_one_pass(data):
    cache = ClusterStatsCache(data)
    members = np.arange(10)
    first = cache.statistics(members)
    second = cache.statistics(members)
    third = cache.statistics(list(range(10)))  # same set, different container
    assert first is second is third
    assert cache.misses == 1
    assert cache.hits == 2
    assert cache.n_stat_passes == 1


def test_membership_change_invalidates(data):
    """A changed member set must never be served a stale entry."""
    cache = ClusterStatsCache(data)
    old_members = np.asarray([0, 1, 2, 3])
    old_stats = cache.statistics(old_members)
    new_members = np.asarray([0, 1, 2, 4])  # one member swapped
    new_stats = cache.statistics(new_members)
    assert cache.misses == 2
    assert not np.array_equal(old_stats.mean, new_stats.mean)
    # The original entry is still served for the original member set.
    assert cache.statistics(old_members) is old_stats


def test_member_order_is_part_of_the_key(data):
    """Keys preserve order so cached results stay bit-identical."""
    cache = ClusterStatsCache(data)
    cache.statistics([5, 2, 9])
    cache.statistics([2, 5, 9])
    assert cache.misses == 2


def test_eviction_respects_max_entries(data):
    cache = ClusterStatsCache(data, max_entries=2)
    cache.statistics([0, 1])
    cache.statistics([2, 3])
    cache.statistics([4, 5])  # evicts [0, 1]
    assert cache.n_entries == 2
    cache.statistics([2, 3])
    assert cache.hits == 1
    cache.statistics([0, 1])  # was evicted -> recomputed
    assert cache.misses == 4


def test_disabled_cache_is_pass_through(data):
    cache = ClusterStatsCache(data, max_entries=0)
    members = np.arange(8)
    first = cache.statistics(members)
    second = cache.statistics(members)
    assert first is not second
    assert cache.hits == 0
    assert cache.misses == 2
    assert cache.n_entries == 0
    assert np.array_equal(first.median, second.median)


def test_empty_member_set(data):
    cache = ClusterStatsCache(data)
    stats = cache.statistics(np.empty(0, dtype=int))
    assert stats.size == 0
    assert np.array_equal(stats.mean, np.zeros(data.shape[1]))


def test_mean_light_path_matches_block_mean(data):
    cache = ClusterStatsCache(data)
    members = np.asarray([1, 4, 9, 16])
    assert np.array_equal(cache.mean(members), data[members].mean(axis=0))
    # Memoized: a second query is a hit and no full pass happened.
    cache.mean(members)
    assert cache.hits == 1
    assert cache.n_stat_passes == 0


def test_mean_reuses_full_statistics_entry(data):
    cache = ClusterStatsCache(data)
    members = np.asarray([2, 6, 10])
    stats = cache.statistics(members)
    assert cache.mean(members) is stats.mean
    assert cache.hits == 1


def test_median_shares_the_cached_pass(data):
    cache = ClusterStatsCache(data)
    members = np.asarray([7, 8, 9, 10])
    median = cache.median(members)
    assert np.array_equal(median, np.median(data[members], axis=0))
    assert cache.misses == 1
    cache.median(members)
    assert cache.misses == 1


def test_float32_input_coerced_to_float64(data):
    """Statistics must match the float64 path even for float32 input."""
    cache = ClusterStatsCache(data.astype(np.float32))
    assert cache.data.dtype == np.float64
    members = np.arange(6)
    expected = ClusterStatistics.from_members(data.astype(np.float32).astype(np.float64), members)
    assert np.array_equal(cache.statistics(members).variance, expected.variance)


def test_global_variance_skips_the_median(data):
    cache = ClusterStatsCache(data)
    assert np.array_equal(cache.global_variance, data.var(axis=0, ddof=1))
    assert cache._global is None  # no full (median-sorting) pass triggered
    # Once full global statistics exist they are reused.
    full = cache.global_statistics
    assert cache.global_variance is full.variance


def test_global_statistics_computed_once(data):
    cache = ClusterStatsCache(data)
    first = cache.global_statistics
    second = cache.global_statistics
    assert first is second
    assert np.array_equal(first.variance, data.var(axis=0, ddof=1))


def test_clear_resets_everything(data):
    cache = ClusterStatsCache(data)
    cache.statistics([0, 1, 2])
    cache.mean([3, 4])
    _ = cache.global_statistics
    cache.clear()
    assert cache.n_entries == 0
    assert cache.hits == 0 and cache.misses == 0
    cache.statistics([0, 1, 2])
    assert cache.misses == 1


def test_invalid_construction(data):
    with pytest.raises(ValueError):
        ClusterStatsCache(data, max_entries=-1)
    with pytest.raises(ValueError):
        ClusterStatsCache(np.arange(5))


def test_objective_function_uses_shared_cache(data):
    threshold = VarianceRatioThreshold(m=0.5)
    cache = ClusterStatsCache(data)
    objective = ObjectiveFunction(data, threshold, stats_cache=cache)
    assert objective.stats_cache is cache
    members = np.arange(12)
    objective.cluster_statistics(members)
    objective.phi_ij_all(members)
    objective.phi_i(members, [0, 1, 2])
    assert cache.n_stat_passes == 1


def test_objective_function_rejects_mismatched_cache(data):
    threshold = VarianceRatioThreshold(m=0.5)
    other = np.random.default_rng(0).normal(size=data.shape)
    with pytest.raises(ValueError):
        ObjectiveFunction(data, threshold, stats_cache=ClusterStatsCache(other))


def test_objective_function_accepts_equal_valued_cache(data):
    threshold = VarianceRatioThreshold(m=0.5)
    objective = ObjectiveFunction(data, threshold, stats_cache=ClusterStatsCache(data.copy()))
    assert objective.cluster_statistics(np.arange(4)).size == 4


# ---------------------------------------------------------------------- #
# merge_mean_variance (the serving-side partial_update primitive)
# ---------------------------------------------------------------------- #
class TestMergeMeanVariance:
    def _blocks(self, sizes, d=7, seed=3):
        rng = np.random.default_rng(seed)
        return [rng.normal(size=(size, d)) for size in sizes]

    @staticmethod
    def _stats(block):
        if block.shape[0] == 0:
            return 0, np.zeros(block.shape[1]), np.zeros(block.shape[1])
        variance = block.var(axis=0, ddof=1) if block.shape[0] > 1 else np.zeros(block.shape[1])
        return block.shape[0], block.mean(axis=0), variance

    def test_matches_from_scratch_pass(self):
        from repro.core.stats_cache import merge_mean_variance

        a, b = self._blocks([23, 11])
        size, mean, variance = merge_mean_variance(*self._stats(a), *self._stats(b))
        union = np.vstack([a, b])
        assert size == union.shape[0]
        np.testing.assert_allclose(mean, union.mean(axis=0), rtol=1e-12, atol=1e-14)
        np.testing.assert_allclose(variance, union.var(axis=0, ddof=1), rtol=1e-11, atol=1e-14)

    def test_singleton_blocks(self):
        from repro.core.stats_cache import merge_mean_variance

        a, b = self._blocks([1, 1], seed=5)
        size, mean, variance = merge_mean_variance(*self._stats(a), *self._stats(b))
        union = np.vstack([a, b])
        assert size == 2
        np.testing.assert_allclose(mean, union.mean(axis=0), rtol=1e-12)
        np.testing.assert_allclose(variance, union.var(axis=0, ddof=1), rtol=1e-11, atol=1e-14)

    def test_empty_block_is_identity(self):
        from repro.core.stats_cache import merge_mean_variance

        (a,) = self._blocks([9], seed=8)
        size_a, mean_a, var_a = self._stats(a)
        empty = np.zeros((0, a.shape[1]))
        for args in (
            self._stats(empty) + (size_a, mean_a, var_a),
            (size_a, mean_a, var_a) + self._stats(empty),
        ):
            size, mean, variance = merge_mean_variance(*args)
            assert size == size_a
            np.testing.assert_array_equal(mean, mean_a)
            np.testing.assert_array_equal(variance, var_a)

    def test_chained_merges_match_one_pass(self):
        from repro.core.stats_cache import merge_mean_variance

        blocks = self._blocks([5, 1, 17, 3], seed=11)
        size, mean, variance = self._stats(blocks[0])
        for block in blocks[1:]:
            size, mean, variance = merge_mean_variance(
                size, mean, variance, *self._stats(block)
            )
        union = np.vstack(blocks)
        assert size == union.shape[0]
        np.testing.assert_allclose(mean, union.mean(axis=0), rtol=1e-11, atol=1e-14)
        np.testing.assert_allclose(variance, union.var(axis=0, ddof=1), rtol=1e-10, atol=1e-14)

    def test_negative_sizes_rejected(self):
        from repro.core.stats_cache import merge_mean_variance

        with pytest.raises(ValueError):
            merge_mean_variance(-1, np.zeros(2), np.zeros(2), 1, np.zeros(2), np.zeros(2))


class TestEvictionAccounting:
    def test_evictions_counted_and_bound_respected(self, rng):
        data = rng.normal(size=(40, 6))
        cache = ClusterStatsCache(data, max_entries=4)
        for start in range(12):
            cache.statistics(np.arange(start, start + 5))
        assert cache.n_entries == 4
        assert cache.evictions == 8
        assert cache.hit_rate == 0.0

    def test_hit_rate_and_counters_snapshot(self, rng):
        data = rng.normal(size=(30, 5))
        cache = ClusterStatsCache(data)
        members = np.arange(10)
        cache.statistics(members)
        cache.statistics(members)
        cache.statistics(members)
        counters = cache.counters()
        assert counters["hits"] == 2
        assert counters["misses"] == 1
        assert counters["evictions"] == 0
        assert counters["hit_rate"] == pytest.approx(2 / 3)

    def test_clear_resets_eviction_counter(self, rng):
        data = rng.normal(size=(20, 4))
        cache = ClusterStatsCache(data, max_entries=1)
        cache.statistics(np.arange(3))
        cache.statistics(np.arange(4))
        assert cache.evictions == 1
        cache.clear()
        assert cache.evictions == 0


class TestSSPCPlumbing:
    def test_max_entries_plumbed_from_the_estimator(self, tiny_dataset):
        from repro.core.sspc import SSPC

        model = SSPC(
            n_clusters=3, m=0.5, max_iterations=3, random_state=0,
            stats_cache_max_entries=7,
        ).fit(tiny_dataset.data)
        assert model.stats_cache_.max_entries == 7
        assert model.stats_cache_.hits > 0
        assert model.get_params()["stats_cache_max_entries"] == 7

    def test_default_keeps_the_cache_default_and_parameters_clean(self, tiny_dataset):
        from repro.core.sspc import SSPC

        model = SSPC(n_clusters=3, m=0.5, max_iterations=3, random_state=0)
        model.fit(tiny_dataset.data)
        assert model.stats_cache_.max_entries == 128
        assert "stats_cache_max_entries" not in model.get_params()

    def test_negative_bound_rejected(self):
        from repro.core.sspc import SSPC

        with pytest.raises(ValueError):
            SSPC(n_clusters=2, stats_cache_max_entries=-1)
