"""Tests for the CLARANS baseline."""

import numpy as np
import pytest

from repro.baselines import CLARANS
from repro.evaluation import adjusted_rand_index


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(12)
    centers = np.asarray([[0.0, 0.0, 0.0], [8.0, 8.0, 8.0], [-8.0, 8.0, -8.0], [8.0, -8.0, 0.0]])
    data = np.vstack([rng.normal(center, 0.7, size=(30, 3)) for center in centers])
    labels = np.repeat(np.arange(4), 30)
    return data, labels


class TestClarans:
    def test_recovers_full_space_clusters(self, blobs):
        data, labels = blobs
        model = CLARANS(n_clusters=4, random_state=0, max_neighbors=150).fit(data)
        assert adjusted_rand_index(labels, model.labels_) > 0.9

    def test_fails_on_projected_clusters(self, low_dim_dataset):
        """The paper's point: full-space distances miss low-dimensional clusters."""
        model = CLARANS(n_clusters=5, random_state=0, max_neighbors=60).fit(low_dim_dataset.data)
        assert adjusted_rand_index(low_dim_dataset.labels, model.labels_) < 0.3

    def test_every_object_assigned(self, blobs):
        data, _ = blobs
        model = CLARANS(n_clusters=3, random_state=1, max_neighbors=60).fit(data)
        assert np.all(model.labels_ >= 0)

    def test_cost_is_total_distance_to_medoids(self, blobs):
        data, _ = blobs
        model = CLARANS(n_clusters=4, random_state=2, max_neighbors=100).fit(data)
        distances = np.sqrt(
            ((data[:, None, :] - data[model.medoid_indices_][None, :, :]) ** 2).sum(axis=2)
        )
        assert model.cost_ == pytest.approx(distances.min(axis=1).sum(), rel=1e-9)

    def test_more_local_searches_never_hurt_cost(self, blobs):
        data, _ = blobs
        quick = CLARANS(n_clusters=4, num_local=1, max_neighbors=40, random_state=3).fit(data)
        thorough = CLARANS(n_clusters=4, num_local=4, max_neighbors=40, random_state=3).fit(data)
        assert thorough.cost_ <= quick.cost_ * 1.05

    def test_result_metadata(self, blobs):
        data, _ = blobs
        model = CLARANS(n_clusters=2, random_state=4, max_neighbors=40).fit(data)
        assert model.result_.algorithm == "CLARANS"
        assert model.result_.parameters["num_local"] == 2

    def test_reproducible(self, blobs):
        data, _ = blobs
        first = CLARANS(n_clusters=3, random_state=11, max_neighbors=50).fit_predict(data)
        second = CLARANS(n_clusters=3, random_state=11, max_neighbors=50).fit_predict(data)
        np.testing.assert_array_equal(first, second)
