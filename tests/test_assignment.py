"""Tests for the object-assignment step (Listing 2, step 3)."""

import numpy as np
import pytest

from repro.core.assignment import ClusterState, assign_objects, members_from_labels
from repro.core.objective import ObjectiveFunction
from repro.core.thresholds import VarianceRatioThreshold
from repro.semisupervision.constraints import PairwiseConstraints
from repro.semisupervision.knowledge import Knowledge


@pytest.fixture()
def two_cluster_setup():
    """Two well-separated clusters on disjoint relevant dimensions."""
    rng = np.random.default_rng(33)
    data = rng.uniform(0, 100, size=(100, 10))
    data[:40, 0] = rng.normal(20, 1.0, size=40)
    data[:40, 1] = rng.normal(30, 1.0, size=40)
    data[40:80, 2] = rng.normal(70, 1.0, size=40)
    data[40:80, 3] = rng.normal(80, 1.0, size=40)
    objective = ObjectiveFunction(data, VarianceRatioThreshold(m=0.5))
    states = [
        ClusterState(
            representative=np.median(data[:40], axis=0),
            dimensions=np.asarray([0, 1]),
            members=np.empty(0, dtype=int),
            size_hint=40,
        ),
        ClusterState(
            representative=np.median(data[40:80], axis=0),
            dimensions=np.asarray([2, 3]),
            members=np.empty(0, dtype=int),
            size_hint=40,
        ),
    ]
    return objective, states


class TestAssignObjects:
    def test_members_assigned_to_their_cluster(self, two_cluster_setup):
        objective, states = two_cluster_setup
        labels = assign_objects(objective, states)
        assert np.mean(labels[:40] == 0) > 0.9
        assert np.mean(labels[40:80] == 1) > 0.9

    def test_background_objects_become_outliers(self, two_cluster_setup):
        objective, states = two_cluster_setup
        labels = assign_objects(objective, states)
        # Objects 80-99 match neither relevant subspace.  With only two
        # selected dimensions per cluster a background object near a
        # representative can still show a positive gain, so "most but not
        # necessarily all" of them end on the outlier list.
        assert np.mean(labels[80:] == -1) >= 0.4
        # And far fewer background objects are absorbed than real members.
        assert np.mean(labels[80:] == -1) > np.mean(labels[:80] == -1)

    def test_no_states_everything_outlier(self, two_cluster_setup):
        objective, _ = two_cluster_setup
        labels = assign_objects(objective, [])
        assert np.all(labels == -1)

    def test_empty_dimension_state_attracts_nothing(self, two_cluster_setup):
        objective, states = two_cluster_setup
        states[1].dimensions = np.empty(0, dtype=int)
        labels = assign_objects(objective, states)
        assert not np.any(labels == 1)

    def test_labeled_objects_pinned_to_their_class(self, two_cluster_setup):
        objective, states = two_cluster_setup
        # Claim two background objects for cluster 0; the knowledge is assumed
        # correct so the assignment must honour it.
        knowledge = Knowledge.from_pairs(object_pairs=[(90, 0), (95, 0)])
        labels = assign_objects(objective, states, knowledge=knowledge)
        assert labels[90] == 0 and labels[95] == 0

    def test_members_from_labels_partition(self, two_cluster_setup):
        objective, states = two_cluster_setup
        labels = assign_objects(objective, states)
        members = members_from_labels(labels, 2)
        assert len(members) == 2
        recombined = np.concatenate(members)
        assert len(set(recombined.tolist())) == recombined.size
        assert set(recombined.tolist()) == set(np.flatnonzero(labels >= 0).tolist())


class TestConstrainedAssignment:
    def test_cannot_link_separates_pair(self, two_cluster_setup):
        objective, states = two_cluster_setup
        unconstrained = assign_objects(objective, states)
        # Pick two cluster-0 members and forbid them from sharing a cluster.
        pair = tuple(np.flatnonzero(unconstrained == 0)[:2])
        constraints = PairwiseConstraints.from_pairs(cannot_links=[pair])
        labels = assign_objects(objective, states, constraints=constraints)
        assert not (labels[pair[0]] == labels[pair[1]] and labels[pair[0]] != -1)

    def test_must_link_keeps_pair_together(self, two_cluster_setup):
        objective, states = two_cluster_setup
        # Link a cluster-0 member with a background object.
        constraints = PairwiseConstraints.from_pairs(must_links=[(0, 90)])
        labels = assign_objects(objective, states, constraints=constraints)
        assert labels[0] == labels[90]
        assert labels[0] != -1

    def test_empty_constraints_are_noop(self, two_cluster_setup):
        objective, states = two_cluster_setup
        base = assign_objects(objective, states)
        with_empty = assign_objects(objective, states, constraints=PairwiseConstraints())
        np.testing.assert_array_equal(base, with_empty)


class TestClusterState:
    def test_copy_is_deep(self):
        state = ClusterState(
            representative=np.zeros(3),
            dimensions=np.asarray([1]),
            members=np.asarray([2]),
            size_hint=5,
        )
        clone = state.copy()
        clone.representative[0] = 9.0
        clone.dimensions[0] = 2
        assert state.representative[0] == 0.0
        assert state.dimensions[0] == 1
