"""Tests for the PROCLUS baseline."""

import numpy as np
import pytest

from repro.baselines import PROCLUS
from repro.evaluation import adjusted_rand_index, dimension_selection_scores


class TestProclus:
    def test_recovers_moderate_dimensionality_clusters(self, small_dataset):
        model = PROCLUS(
            n_clusters=3,
            avg_dimensions=small_dataset.average_dimensionality(),
            random_state=0,
        ).fit(small_dataset.data)
        assert adjusted_rand_index(small_dataset.labels, model.labels_) > 0.5

    def test_selected_dimension_counts_respect_l(self, small_dataset):
        l_value = 6
        model = PROCLUS(n_clusters=3, avg_dimensions=l_value, random_state=1).fit(small_dataset.data)
        total = sum(dims.size for dims in model.dimensions_)
        assert total == l_value * 3
        assert all(dims.size >= 2 for dims in model.dimensions_)

    def test_dimension_recovery_with_correct_l(self, small_dataset):
        model = PROCLUS(
            n_clusters=3,
            avg_dimensions=small_dataset.average_dimensionality(),
            random_state=2,
        ).fit(small_dataset.data)
        scores = dimension_selection_scores(small_dataset.relevant_dimensions, model.dimensions_)
        assert scores.recall > 0.4

    def test_sensitive_to_wrong_l(self, small_dataset):
        """Figure 4's phenomenon: accuracy degrades when l is badly wrong."""
        correct = PROCLUS(n_clusters=3, avg_dimensions=6, random_state=3).fit(small_dataset.data)
        wrong = PROCLUS(n_clusters=3, avg_dimensions=30, random_state=3).fit(small_dataset.data)
        ari_correct = adjusted_rand_index(small_dataset.labels, correct.labels_)
        ari_wrong = adjusted_rand_index(small_dataset.labels, wrong.labels_)
        assert ari_correct >= ari_wrong - 0.05

    def test_outlier_detection_optional(self, small_dataset):
        with_outliers = PROCLUS(n_clusters=3, avg_dimensions=6, random_state=4).fit(small_dataset.data)
        without = PROCLUS(
            n_clusters=3, avg_dimensions=6, outlier_fraction_radius=None, random_state=4
        ).fit(small_dataset.data)
        assert np.all(without.labels_ >= 0)
        assert np.count_nonzero(with_outliers.labels_ == -1) >= 0

    def test_medoids_are_objects(self, tiny_dataset):
        model = PROCLUS(n_clusters=3, avg_dimensions=4, random_state=5).fit(tiny_dataset.data)
        assert model.medoid_indices_.shape == (3,)
        assert np.all(model.medoid_indices_ < tiny_dataset.n_objects)

    def test_result_object(self, tiny_dataset):
        model = PROCLUS(n_clusters=3, avg_dimensions=4, random_state=6).fit(tiny_dataset.data)
        assert model.result_.algorithm == "PROCLUS"
        assert model.result_.n_clusters == 3
        assert np.isfinite(model.result_.objective)

    def test_invalid_avg_dimensions(self):
        with pytest.raises(ValueError):
            PROCLUS(n_clusters=3, avg_dimensions=0.5)

    def test_reproducible(self, tiny_dataset):
        first = PROCLUS(n_clusters=3, avg_dimensions=4, random_state=7).fit_predict(tiny_dataset.data)
        second = PROCLUS(n_clusters=3, avg_dimensions=4, random_state=7).fit_predict(tiny_dataset.data)
        np.testing.assert_array_equal(first, second)
