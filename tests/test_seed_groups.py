"""Tests for seed-group construction (Section 4.2)."""

import numpy as np
import pytest

from repro.core.objective import ObjectiveFunction
from repro.core.seed_groups import SeedGroup, SeedGroupBuilder
from repro.core.thresholds import VarianceRatioThreshold
from repro.semisupervision.knowledge import Knowledge
from repro.semisupervision.sampling import sample_knowledge


@pytest.fixture()
def dataset_objective(small_dataset):
    return ObjectiveFunction(small_dataset.data, VarianceRatioThreshold(m=0.5))


class TestSeedGroup:
    def test_deduplicates_and_sorts(self):
        group = SeedGroup(seeds=[5, 2, 5], dimensions=[3, 1, 3])
        np.testing.assert_array_equal(group.seeds, [2, 5])
        np.testing.assert_array_equal(group.dimensions, [1, 3])

    def test_private_flag(self):
        assert SeedGroup(seeds=[1], dimensions=[0], cluster=2).is_private
        assert not SeedGroup(seeds=[1], dimensions=[0]).is_private

    def test_draw_medoid_without_replacement_then_recycles(self, rng):
        group = SeedGroup(seeds=[1, 2, 3], dimensions=[0])
        first_three = {group.draw_medoid(rng) for _ in range(3)}
        assert first_three == {1, 2, 3}
        # Exhausted -> recycles, still draws valid seeds.
        assert group.draw_medoid(rng) in {1, 2, 3}

    def test_draw_from_empty_group_raises(self, rng):
        group = SeedGroup(seeds=[], dimensions=[0])
        with pytest.raises(RuntimeError):
            group.draw_medoid(rng)


class TestPrivateGroups:
    def test_both_inputs_builds_accurate_group(self, small_dataset, dataset_objective, rng):
        knowledge = sample_knowledge(
            small_dataset.labels,
            small_dataset.relevant_dimensions,
            category="both",
            input_size=4,
            coverage=1.0,
            random_state=3,
        )
        builder = SeedGroupBuilder(dataset_objective, small_dataset.n_clusters, knowledge)
        private, _ = builder.build(rng)
        assert set(private) == set(range(small_dataset.n_clusters))
        for label, group in private.items():
            true_members = set(np.flatnonzero(small_dataset.labels == label).tolist())
            true_dims = set(small_dataset.relevant_dimensions[label].tolist())
            seed_accuracy = np.mean([seed in true_members for seed in group.seeds])
            assert seed_accuracy > 0.6
            assert len(set(group.dimensions.tolist()) & true_dims) >= 2
            assert group.knowledge_kind == "both"

    def test_labeled_dimensions_forced_into_group(self, small_dataset, dataset_objective, rng):
        labeled_dim = int(small_dataset.relevant_dimensions[0][0])
        knowledge = Knowledge.from_pairs(dimension_pairs=[(labeled_dim, 0)])
        builder = SeedGroupBuilder(dataset_objective, small_dataset.n_clusters, knowledge)
        private, _ = builder.build(rng)
        assert labeled_dim in private[0].dimensions
        assert private[0].knowledge_kind == "dimensions"

    def test_objects_only_group(self, small_dataset, dataset_objective, rng):
        members = np.flatnonzero(small_dataset.labels == 1)[:4]
        knowledge = Knowledge.from_pairs(object_pairs=[(int(o), 1) for o in members])
        builder = SeedGroupBuilder(dataset_objective, small_dataset.n_clusters, knowledge)
        private, _ = builder.build(rng)
        assert list(private) == [1]
        assert private[1].knowledge_kind == "objects"
        assert private[1].n_seeds >= 1


class TestPublicGroups:
    def test_public_groups_created_without_knowledge(self, small_dataset, dataset_objective, rng):
        builder = SeedGroupBuilder(
            dataset_objective, small_dataset.n_clusters, Knowledge.empty(), public_group_factor=2
        )
        private, public = builder.build(rng)
        assert private == {}
        assert len(public) >= small_dataset.n_clusters
        for group in public:
            assert group.n_seeds >= 1
            assert not group.is_private

    def test_public_groups_have_disjoint_seeds(self, small_dataset, dataset_objective, rng):
        builder = SeedGroupBuilder(dataset_objective, small_dataset.n_clusters, Knowledge.empty())
        _, public = builder.build(rng)
        seen = set()
        for group in public:
            overlap = seen & set(group.seeds.tolist())
            assert not overlap
            seen.update(group.seeds.tolist())

    def test_mixed_knowledge_creates_private_and_public(self, small_dataset, dataset_objective, rng):
        members = np.flatnonzero(small_dataset.labels == 0)[:3]
        knowledge = Knowledge.from_pairs(object_pairs=[(int(o), 0) for o in members])
        builder = SeedGroupBuilder(dataset_objective, small_dataset.n_clusters, knowledge)
        private, public = builder.build(rng)
        assert list(private) == [0]
        # Two knowledge-free clusters -> at least that many public groups.
        assert len(public) >= small_dataset.n_clusters - 1


class TestBuilderConfiguration:
    def test_initialisation_order_prefers_more_knowledge(self, small_dataset, dataset_objective):
        members0 = np.flatnonzero(small_dataset.labels == 0)[:2]
        members1 = np.flatnonzero(small_dataset.labels == 1)[:5]
        dims2 = small_dataset.relevant_dimensions[2][:2]
        knowledge = Knowledge.from_pairs(
            object_pairs=[(int(o), 0) for o in members0] + [(int(o), 1) for o in members1],
            dimension_pairs=[(int(d), 1) for d in dims2[:1]] + [(int(d), 2) for d in dims2],
        )
        builder = SeedGroupBuilder(dataset_objective, small_dataset.n_clusters, knowledge)
        order = builder._initialisation_order()
        # Cluster 1 has both kinds -> first; cluster 0 objects only -> second;
        # cluster 2 dimensions only -> third; cluster without knowledge last.
        assert order[0] == 1
        assert order[1] == 0
        assert order[2] == 2

    def test_auto_bins_scale_with_available_objects(self, dataset_objective):
        builder = SeedGroupBuilder(dataset_objective, 3, Knowledge.empty())
        assert builder._effective_bins(40) <= builder._effective_bins(5000)
        assert 2 <= builder._effective_bins(10) <= 8

    def test_explicit_bins_respected(self, dataset_objective):
        builder = SeedGroupBuilder(dataset_objective, 3, Knowledge.empty(), bins_per_dimension=4)
        assert builder._effective_bins(10_000) == 4

    def test_invalid_seed_selection_p(self, dataset_objective):
        with pytest.raises(ValueError):
            SeedGroupBuilder(dataset_objective, 3, seed_selection_p=0.0)
