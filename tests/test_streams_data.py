"""Tests of the drift-capable stream generators (:mod:`repro.data.streams`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.streams import (
    ClusterBirth,
    ClusterDeath,
    DimensionDrift,
    DriftingStreamGenerator,
    MeanShift,
    make_drift_schedule,
)


def make_generator(**overrides):
    parameters = dict(
        n_dimensions=30,
        n_clusters=3,
        avg_cluster_dimensionality=5,
        outlier_fraction=0.1,
        random_state=11,
    )
    parameters.update(overrides)
    return DriftingStreamGenerator(**parameters)


class TestDeterminismAndResumability:
    def test_same_batch_index_is_bit_identical(self):
        generator = make_generator()
        first = generator.batch(3, 120)
        second = generator.batch(3, 120)
        assert np.array_equal(first.data, second.data)
        assert np.array_equal(first.labels, second.labels)

    def test_batches_independent_of_iteration_order(self):
        """Batch i is the same whether reached from 0 or started at i (resume)."""
        generator = make_generator(events=[MeanShift(batch=2, cluster=0)])
        sequential = list(generator.batches(6, 80))
        resumed = list(generator.batches(3, 80, start=3))
        for left, right in zip(sequential[3:], resumed):
            assert left.index == right.index
            assert np.array_equal(left.data, right.data)
            assert np.array_equal(left.labels, right.labels)

    def test_two_generators_same_seed_agree(self):
        first = make_generator().batch(5, 100)
        second = make_generator().batch(5, 100)
        assert np.array_equal(first.data, second.data)

    def test_warmup_deterministic_and_distinct_from_batches(self):
        generator = make_generator()
        warmup = generator.warmup(200)
        assert warmup.index == -1
        assert np.array_equal(warmup.data, generator.warmup(200).data)
        assert not np.array_equal(warmup.data[:100], generator.batch(0, 100).data)


class TestBatchContents:
    def test_shapes_and_label_values(self):
        generator = make_generator()
        batch = generator.batch(0, 200)
        assert batch.data.shape == (200, 30)
        assert batch.labels.shape == (200,)
        assert set(np.unique(batch.labels)) <= {-1, 0, 1, 2}

    def test_outlier_fraction_respected(self):
        batch = make_generator(outlier_fraction=0.1).batch(0, 200)
        assert int(np.count_nonzero(batch.labels == -1)) == 20

    def test_members_concentrate_on_relevant_dimensions(self):
        generator = make_generator(outlier_fraction=0.0)
        batch = generator.batch(0, 300)
        relevant = generator.relevant_dimensions(0)
        for cluster_id, dims in relevant.items():
            rows = batch.data[batch.labels == cluster_id]
            irrelevant = np.setdiff1d(np.arange(30), dims)
            assert rows[:, dims].std(axis=0).max() < rows[:, irrelevant].std(axis=0).min()


class TestEvents:
    def test_mean_shift_moves_the_population(self):
        generator = make_generator(events=[MeanShift(batch=5, cluster=0, magnitude=0.3)])
        dims = generator.relevant_dimensions(0)[0]
        before = generator.batch(4, 400)
        after = generator.batch(5, 400)
        mean_before = before.data[before.labels == 0][:, dims].mean(axis=0)
        mean_after = after.data[after.labels == 0][:, dims].mean(axis=0)
        assert np.abs(mean_after - mean_before).max() > 10.0

    def test_birth_adds_a_fresh_stable_id(self):
        generator = make_generator(events=[ClusterBirth(batch=4)])
        assert generator.active_cluster_ids(3) == (0, 1, 2)
        assert generator.active_cluster_ids(4) == (0, 1, 2, 3)
        batch = generator.batch(4, 200)
        assert np.count_nonzero(batch.labels == 3) > 0

    def test_death_stops_emission_and_never_reuses_the_id(self):
        generator = make_generator(
            events=[ClusterDeath(batch=3, cluster=1), ClusterBirth(batch=6)]
        )
        assert 1 not in generator.active_cluster_ids(3)
        assert generator.active_cluster_ids(6) == (0, 2, 3)
        batch = generator.batch(6, 200)
        assert np.count_nonzero(batch.labels == 1) == 0

    def test_dimension_drift_swaps_relevant_dimensions(self):
        generator = make_generator(events=[DimensionDrift(batch=2, cluster=2, n_dimensions=2)])
        before = generator.relevant_dimensions(1)[2]
        after = generator.relevant_dimensions(2)[2]
        assert before.size == after.size
        assert np.intersect1d(before, after).size == before.size - 2

    def test_event_on_dead_cluster_rejects(self):
        with pytest.raises(ValueError):
            make_generator(
                events=[ClusterDeath(batch=1, cluster=0), MeanShift(batch=2, cluster=0)]
            )


class TestSchedulePresets:
    @pytest.mark.parametrize("kind", ["none", "mean_shift", "dimension_drift",
                                      "birth", "death", "mixed"])
    def test_presets_build_valid_generators(self, kind):
        events = make_drift_schedule(kind, drift_batch=3)
        generator = make_generator(events=events)
        batch = generator.batch(5, 60)
        assert batch.data.shape == (60, 30)

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            make_drift_schedule("sideways", drift_batch=3)
