"""Tests for the experiment harness (best-of-repeats protocol)."""

import numpy as np
import pytest

from repro.core.sspc import SSPC
from repro.experiments.harness import (
    AlgorithmSpec,
    default_algorithms,
    evaluate_result,
    format_series_table,
    run_best_of,
)
from repro.experiments.harness import ExperimentResult
from repro.semisupervision.sampling import sample_knowledge


class TestRunBestOf:
    def test_returns_result_with_configuration(self, tiny_dataset):
        spec = AlgorithmSpec(
            name="SSPC",
            factory=lambda rng: SSPC(n_clusters=3, m=0.5, random_state=rng),
            supports_knowledge=True,
        )
        row = run_best_of(
            spec,
            tiny_dataset.data,
            tiny_dataset.labels,
            n_repeats=2,
            random_state=0,
            configuration={"case": "unit"},
        )
        assert row.algorithm == "SSPC"
        assert row.configuration == {"case": "unit"}
        assert -1.0 <= row.ari <= 1.0
        assert row.runtime_seconds > 0.0
        assert np.isfinite(row.objective)

    def test_knowledge_forwarded_and_stripped(self, tiny_dataset):
        knowledge = sample_knowledge(
            tiny_dataset.labels,
            tiny_dataset.relevant_dimensions,
            category="both",
            input_size=3,
            coverage=1.0,
            random_state=1,
        )
        spec = AlgorithmSpec(
            name="SSPC",
            factory=lambda rng: SSPC(n_clusters=3, m=0.5, random_state=rng),
            supports_knowledge=True,
        )
        row = run_best_of(
            spec,
            tiny_dataset.data,
            tiny_dataset.labels,
            n_repeats=1,
            knowledge=knowledge,
            random_state=2,
        )
        assert row.ari > 0.3

    def test_best_objective_selected(self, tiny_dataset):
        """With several repeats the reported objective is the max over runs."""
        objectives = []

        class Recorder:
            def __init__(self, rng):
                self.inner = SSPC(n_clusters=3, m=0.5, random_state=rng)

            def fit(self, data):
                self.inner.fit(data)
                objectives.append(self.inner.objective_)
                return self

            @property
            def result_(self):
                return self.inner.result_

        spec = AlgorithmSpec(name="probe", factory=lambda rng: Recorder(rng))
        row = run_best_of(spec, tiny_dataset.data, tiny_dataset.labels, n_repeats=3, random_state=3)
        assert row.objective == pytest.approx(max(objectives))

    def test_evaluate_result_strips_labeled_objects(self, tiny_dataset):
        knowledge = sample_knowledge(
            tiny_dataset.labels,
            tiny_dataset.relevant_dimensions,
            category="objects",
            input_size=3,
            coverage=1.0,
            random_state=4,
        )
        model = SSPC(n_clusters=3, m=0.5, random_state=4).fit(tiny_dataset.data, knowledge)
        with_strip = evaluate_result(model.result_, tiny_dataset.labels, knowledge=knowledge)
        without = evaluate_result(model.result_, tiny_dataset.labels)
        assert 0.0 <= with_strip <= 1.0
        assert without >= with_strip - 1e-9


class TestDefaultAlgorithms:
    def test_line_up_contains_paper_algorithms(self):
        specs = default_algorithms(5, true_avg_dimensionality=10)
        names = [spec.name for spec in specs]
        assert any("SSPC(m" in name for name in names)
        assert any("SSPC(p" in name for name in names)
        assert any("PROCLUS" in name for name in names)
        assert "HARP" in names
        assert "CLARANS" in names

    def test_optional_baselines_can_be_dropped(self):
        specs = default_algorithms(
            5, true_avg_dimensionality=10, include_clarans=False, include_harp=False
        )
        names = [spec.name for spec in specs]
        assert "CLARANS" not in names
        assert "HARP" not in names

    def test_factories_produce_fresh_estimators(self):
        specs = default_algorithms(3, true_avg_dimensionality=5)
        rng = np.random.default_rng(0)
        first = specs[0].factory(rng)
        second = specs[0].factory(rng)
        assert first is not second


class TestFormatting:
    def test_series_table_contains_all_cells(self):
        rows = [
            ExperimentResult("A", {"x": 1}, ari=0.5, objective=0.0, runtime_seconds=0.1),
            ExperimentResult("A", {"x": 2}, ari=0.7, objective=0.0, runtime_seconds=0.1),
            ExperimentResult("B", {"x": 1}, ari=0.2, objective=0.0, runtime_seconds=0.1),
        ]
        table = format_series_table(rows, x_key="x", title="demo")
        assert "demo" in table
        assert "0.500" in table and "0.700" in table and "0.200" in table
        # Missing (B, x=2) cell rendered as a dash.
        assert "-" in table
