"""Tests for the Knowledge / LabeledObjects / LabeledDimensions containers."""

import numpy as np
import pytest

from repro.semisupervision.knowledge import Knowledge, LabeledDimensions, LabeledObjects


class TestLabeledObjects:
    def test_from_pairs_groups_by_class(self):
        objects = LabeledObjects.from_pairs([(3, 0), (7, 0), (2, 1)])
        np.testing.assert_array_equal(objects.for_class(0), [3, 7])
        np.testing.assert_array_equal(objects.for_class(1), [2])
        assert objects.classes() == [0, 1]

    def test_duplicates_ignored(self):
        objects = LabeledObjects.from_pairs([(3, 0), (3, 0)])
        assert objects.count(0) == 1

    def test_same_object_two_classes_rejected(self):
        with pytest.raises(ValueError):
            LabeledObjects.from_pairs([(3, 0), (3, 1)])

    def test_from_mapping(self):
        objects = LabeledObjects.from_mapping({0: [1, 2], 2: [5]})
        assert objects.count() == 3
        assert objects.count(2) == 1

    def test_all_objects_sorted_unique(self):
        objects = LabeledObjects.from_pairs([(9, 0), (1, 1), (5, 0)])
        np.testing.assert_array_equal(objects.all_objects(), [1, 5, 9])

    def test_validate_against(self):
        objects = LabeledObjects.from_pairs([(10, 0)])
        objects.validate_against(11)
        with pytest.raises(ValueError):
            objects.validate_against(10)

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError):
            LabeledObjects.from_pairs([(-1, 0)])
        with pytest.raises(ValueError):
            LabeledObjects.from_pairs([(1, -2)])

    def test_malformed_pair_rejected(self):
        with pytest.raises(ValueError):
            LabeledObjects.from_pairs([(1, 2, 3)])


class TestLabeledDimensions:
    def test_dimension_may_serve_multiple_classes(self):
        dims = LabeledDimensions.from_pairs([(4, 0), (4, 1)])
        assert dims.count(0) == 1
        assert dims.count(1) == 1

    def test_validate_against(self):
        dims = LabeledDimensions.from_pairs([(4, 0)])
        dims.validate_against(5)
        with pytest.raises(ValueError):
            dims.validate_against(4)

    def test_empty(self):
        assert LabeledDimensions().is_empty()
        assert not LabeledDimensions.from_pairs([(0, 0)]).is_empty()


class TestKnowledge:
    def test_knowledge_kind_classification(self):
        knowledge = Knowledge.from_pairs(
            object_pairs=[(0, 0), (1, 1)],
            dimension_pairs=[(2, 1), (3, 2)],
        )
        assert knowledge.knowledge_kind(0) == "objects"
        assert knowledge.knowledge_kind(1) == "both"
        assert knowledge.knowledge_kind(2) == "dimensions"
        assert knowledge.knowledge_kind(3) == "none"

    def test_amount(self):
        knowledge = Knowledge.from_pairs(
            object_pairs=[(0, 0), (1, 0)], dimension_pairs=[(2, 0)]
        )
        assert knowledge.amount(0) == 3
        assert knowledge.amount(1) == 0

    def test_classes_union(self):
        knowledge = Knowledge.from_pairs(object_pairs=[(0, 0)], dimension_pairs=[(1, 3)])
        assert knowledge.classes() == [0, 3]

    def test_empty(self):
        assert Knowledge.empty().is_empty()
        assert Knowledge.empty().classes() == []

    def test_validate_against(self):
        knowledge = Knowledge.from_pairs(object_pairs=[(0, 0)], dimension_pairs=[(1, 1)])
        knowledge.validate_against(5, 5, 2)
        with pytest.raises(ValueError):
            knowledge.validate_against(5, 5, 1)  # class 1 outside k=1
        with pytest.raises(ValueError):
            knowledge.validate_against(5, 1, 3)  # dimension 1 outside d=1

    def test_labeled_object_indices(self):
        knowledge = Knowledge.from_pairs(object_pairs=[(4, 0), (2, 1)])
        np.testing.assert_array_equal(knowledge.labeled_object_indices(), [2, 4])
