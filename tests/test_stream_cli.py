"""Tests of the ``repro-stream`` CLI (run / replay / inspect)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.stream.checkpoint import describe_checkpoint
from repro.stream.cli import main

RUN_ARGS = [
    "run",
    "--n-batches", "8",
    "--batch-size", "100",
    "--n-dimensions", "24",
    "--n-clusters", "3",
    "--cluster-dim", "5",
    "--drift", "none",
    "--warmup", "450",
    "--fit-iterations", "5",
    "--seed", "5",
    "--quiet",
]


@pytest.fixture()
def checkpoint(tmp_path):
    path = tmp_path / "ck"
    assert main(RUN_ARGS + ["--checkpoint", str(path)]) == 0
    return path


class TestRun:
    def test_run_writes_checkpoint_and_report(self, tmp_path, capsys):
        checkpoint = tmp_path / "ck"
        report = tmp_path / "report.json"
        code = main(RUN_ARGS + ["--checkpoint", str(checkpoint), "--report", str(report)])
        assert code == 0
        captured = capsys.readouterr()
        assert "processed 8 batches" in captured.out
        description = describe_checkpoint(checkpoint)
        assert description["n_batches"] == 8
        assert description["metadata"]["stream"]["n_dimensions"] == 24
        payload = json.loads(report.read_text())
        assert len(payload["batches"]) == 8
        aris = [record["ari"] for record in payload["batches"]]
        assert all(not np.isnan(value) for value in aris)

    def test_run_without_checkpoint_is_fine(self, capsys):
        assert main(RUN_ARGS) == 0
        assert "processed 8 batches" in capsys.readouterr().out


class TestReplay:
    def test_replay_resumes_from_the_recorded_position(self, checkpoint, capsys):
        code = main(["replay", "--checkpoint", str(checkpoint),
                     "--n-batches", "4", "--quiet"])
        assert code == 0
        assert "resuming stream at batch 8" in capsys.readouterr().err
        assert describe_checkpoint(checkpoint)["n_batches"] == 12

    def test_replay_can_write_elsewhere(self, checkpoint, tmp_path):
        target = tmp_path / "continued"
        code = main(["replay", "--checkpoint", str(checkpoint),
                     "--n-batches", "3", "--output", str(target), "--quiet"])
        assert code == 0
        assert describe_checkpoint(checkpoint)["n_batches"] == 8  # original untouched
        assert describe_checkpoint(target)["n_batches"] == 11

    def test_replay_equals_uninterrupted_run(self, tmp_path):
        """run 8 == run 5 + replay 3, bit for bit on the model statistics."""
        full = tmp_path / "full"
        split = tmp_path / "split"
        assert main(RUN_ARGS + ["--checkpoint", str(full)]) == 0
        short = [arg if arg != "8" else "5" for arg in RUN_ARGS]
        assert main(short + ["--checkpoint", str(split)]) == 0
        assert main(["replay", "--checkpoint", str(split),
                     "--n-batches", "3", "--quiet"]) == 0
        left = describe_checkpoint(full)["model"]
        right = describe_checkpoint(split)["model"]
        assert left["cluster_sizes"] == right["cluster_sizes"]

    def test_replay_refuses_checkpoint_without_recipe(self, tmp_path, capsys):
        from repro.core.sspc import SSPC
        from repro.data.streams import DriftingStreamGenerator
        from repro.stream import StreamingSSPC

        warmup = DriftingStreamGenerator(
            n_dimensions=20, n_clusters=2, avg_cluster_dimensionality=4, random_state=1
        ).warmup(200)
        model = SSPC(n_clusters=2, m=0.5, max_iterations=3, random_state=1).fit(warmup.data)
        engine = StreamingSSPC(model.to_artifact())
        engine.checkpoint(tmp_path / "bare")
        assert main(["replay", "--checkpoint", str(tmp_path / "bare")]) == 2
        assert "no recorded stream recipe" in capsys.readouterr().err


class TestInspect:
    def test_inspect_json_payload(self, checkpoint, capsys):
        assert main(["inspect", "--checkpoint", str(checkpoint), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "repro-sspc-stream-checkpoint"
        assert payload["n_batches"] == 8
        assert payload["model"]["n_clusters"] == len(payload["cluster_ids"])

    def test_inspect_human_readable(self, checkpoint, capsys):
        assert main(["inspect", "--checkpoint", str(checkpoint)]) == 0
        out = capsys.readouterr().out
        assert "stream position : batch 8" in out
        assert "live clusters" in out

    def test_inspect_missing_checkpoint_fails_cleanly(self, tmp_path, capsys):
        assert main(["inspect", "--checkpoint", str(tmp_path / "nope")]) == 1
        assert "error:" in capsys.readouterr().err
