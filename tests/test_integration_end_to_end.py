"""End-to-end integration tests exercising the full public API surface."""

import numpy as np

import repro
from repro import SSPC, Knowledge
from repro.baselines import CLARANS, PROCLUS
from repro.data import (
    load_csv_dataset,
    make_expression_like_dataset,
    make_projected_clusters,
    save_csv_dataset,
    standardize,
)
from repro.evaluation import adjusted_rand_index, clustering_report
from repro.semisupervision import KnowledgeValidator, sample_knowledge


class TestPublicApi:
    def test_version_and_exports(self):
        assert repro.__version__
        assert repro.SSPC is SSPC
        assert repro.Knowledge is Knowledge

    def test_quickstart_flow(self):
        """The README quickstart, condensed."""
        dataset = make_projected_clusters(
            n_objects=200, n_dimensions=50, n_clusters=3, avg_cluster_dimensionality=6, random_state=0
        )
        model = SSPC(n_clusters=3, m=0.5, random_state=0).fit(dataset.data)
        report = clustering_report(
            dataset.labels,
            model.labels_,
            true_dimensions=dataset.relevant_dimensions,
            predicted_dimensions=model.selected_dimensions_,
        )
        assert report["ari"] > 0.7
        assert report["dimension_f1"] > 0.5

    def test_gene_expression_scenario_with_knowledge(self):
        """The Section 5.3 scenario at reduced scale: 1%-dimensional clusters."""
        dataset = make_expression_like_dataset(
            n_samples=120, n_genes=800, n_sample_classes=4, n_marker_genes=8, random_state=1
        )
        knowledge = sample_knowledge(
            dataset.labels,
            dataset.relevant_dimensions,
            category="both",
            input_size=5,
            coverage=1.0,
            random_state=1,
        )
        model = SSPC(n_clusters=4, m=0.5, random_state=1).fit(dataset.data, knowledge)
        stripped = model.result_.without_objects(knowledge.labeled_object_indices())
        assert adjusted_rand_index(dataset.labels, stripped.labels()) > 0.6

    def test_comparison_against_baselines_on_low_dim_data(self, low_dim_dataset):
        """The paper's headline: SSPC-with-knowledge beats the baselines."""
        knowledge = sample_knowledge(
            low_dim_dataset.labels,
            low_dim_dataset.relevant_dimensions,
            category="dimensions",
            input_size=5,
            coverage=1.0,
            random_state=2,
        )
        sspc = SSPC(n_clusters=5, m=0.5, random_state=2).fit(low_dim_dataset.data, knowledge)
        sspc_ari = adjusted_rand_index(low_dim_dataset.labels, sspc.labels_)

        proclus = PROCLUS(n_clusters=5, avg_dimensions=10, random_state=2).fit(low_dim_dataset.data)
        proclus_ari = adjusted_rand_index(low_dim_dataset.labels, proclus.labels_)

        clarans = CLARANS(n_clusters=5, max_neighbors=60, random_state=2).fit(low_dim_dataset.data)
        clarans_ari = adjusted_rand_index(low_dim_dataset.labels, clarans.labels_)

        assert sspc_ari > proclus_ari
        assert sspc_ari > clarans_ari

    def test_csv_round_trip_then_cluster(self, tmp_path):
        dataset = make_projected_clusters(
            n_objects=120, n_dimensions=30, n_clusters=3, avg_cluster_dimensionality=5, random_state=3
        )
        path = tmp_path / "exported.csv"
        save_csv_dataset(path, dataset.data, dataset.labels)
        data, labels = load_csv_dataset(path)
        standardized, _ = standardize(data)
        model = SSPC(n_clusters=3, m=0.5, random_state=3).fit(standardized)
        assert adjusted_rand_index(labels, model.labels_) > 0.7

    def test_noisy_knowledge_screening_protects_accuracy(self):
        # Tight local populations (1%-5% of the value range) give the
        # screening step clear evidence against the wrong label.
        dataset = make_projected_clusters(
            n_objects=150, n_dimensions=60, n_clusters=3, avg_cluster_dimensionality=6,
            local_std_fraction=(0.01, 0.05), random_state=4
        )
        # Correct knowledge for cluster 0, plus one wrong object label.
        members = np.flatnonzero(dataset.labels == 0)[:5]
        intruder = int(np.flatnonzero(dataset.labels == 1)[0])
        noisy = Knowledge.from_pairs(
            object_pairs=[(int(o), 0) for o in members] + [(intruder, 0)]
        )
        cleaned, report = KnowledgeValidator().validate(dataset.data, noisy)
        assert report.n_rejections() >= 1
        model = SSPC(n_clusters=3, m=0.5, random_state=4).fit(dataset.data, cleaned)
        assert adjusted_rand_index(dataset.labels, model.labels_) > 0.7
