"""Recorder semantics: spans, metrics, events, clock injection, merging."""

from __future__ import annotations

import threading

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _obs_off():
    """Every test starts and ends with observability disabled."""
    obs.disable()
    yield
    obs.disable()


def make_clock(step: float = 0.001):
    state = {"t": 0.0}

    def clock() -> float:
        state["t"] += step
        return state["t"]

    return clock


def test_disabled_hooks_are_noops():
    assert obs.get_recorder() is None
    assert not obs.enabled()
    null = obs.span("anything", category="fit", k=3)
    assert obs.span("other") is null  # shared singleton, no allocation
    with null as handle:
        assert handle.set(extra=1) is handle
    obs.incr("c")
    obs.gauge("g", 1.0)
    obs.observe("h", 2.0)
    obs.event("drift", cluster_id=1)
    assert obs.get_recorder() is None


def test_recording_restores_previous_state():
    outer = obs.configure(trace_id="outer")
    with obs.recording(trace_id="inner") as inner:
        assert obs.get_recorder() is inner
        assert inner.trace_id == "inner"
    assert obs.get_recorder() is outer
    with obs.suspended():
        assert obs.get_recorder() is None
    assert obs.get_recorder() is outer


def test_span_nesting_and_injected_clock():
    with obs.recording(clock=make_clock(0.5), trace_id="t") as rec:
        with obs.span("outer", category="fit", k=4) as outer:
            with obs.span("inner", category="fit") as inner:
                pass
            outer.set(note="done")
    spans = {s["name"]: s for s in rec.spans}
    assert spans["inner"]["parent"] == spans["outer"]["id"]
    assert spans["outer"]["parent"] is None
    # fake clock ticks 0.5 per call: enter/exit pairs give deterministic durations
    assert spans["inner"]["dur"] == pytest.approx(0.5)
    assert spans["outer"]["args"] == {"k": 4, "note": "done"}
    assert rec.trace_id == "t"


def test_span_records_exception_and_unwinds_stack():
    with obs.recording(clock=make_clock()) as rec:
        with pytest.raises(ValueError):
            with obs.span("failing", category="fit"):
                raise ValueError("boom")
        with obs.span("after", category="fit"):
            pass
    spans = {s["name"]: s for s in rec.spans}
    assert spans["failing"]["args"]["error"] == "ValueError"
    assert spans["after"]["parent"] is None  # stack unwound despite the raise


def test_counters_gauges_histograms_events():
    with obs.recording(clock=make_clock()) as rec:
        obs.incr("engine.gains_calls")
        obs.incr("engine.gains_calls", 2.0)
        obs.gauge("stream.clusters", 7)
        obs.gauge("stream.clusters", 5)
        obs.observe("stream.batch_size", 100)
        obs.observe("stream.batch_size", 300)
        obs.event("retire", cluster_id=3, reason="stale")
    assert rec.counters["engine.gains_calls"] == 3.0
    assert rec.gauges["stream.clusters"] == 5.0
    assert rec.histograms["stream.batch_size"] == [100.0, 300.0]
    (event,) = rec.events
    assert event["kind"] == "retire"
    assert event["details"] == {"cluster_id": 3, "reason": "stale"}


def test_threaded_spans_parent_within_their_own_thread():
    with obs.recording(clock=make_clock()) as rec:
        with obs.span("main-root", category="test"):
            done = threading.Event()

            def worker():
                with obs.span("thread-root", category="test"):
                    with obs.span("thread-child", category="test"):
                        pass
                done.set()

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert done.is_set()
    spans = {s["name"]: s for s in rec.spans}
    # the worker thread's stack is independent: its root has no parent
    assert spans["thread-root"]["parent"] is None
    assert spans["thread-child"]["parent"] == spans["thread-root"]["id"]
    assert spans["thread-root"]["tid"] != spans["main-root"]["tid"]


def test_export_and_ingest_rebase_and_reparent():
    child = obs.Recorder(clock=make_clock(0.25), trace_id="shared")
    child.pid = 4242
    with child.span("task-work", "worker"):
        with child.span("task-sub", "worker"):
            pass
    child.incr("worker.items", 3)
    child.observe("worker.sizes", 11)
    child.event("fault_injected", op="write")
    state = child.export_state()

    with obs.recording(clock=make_clock(1.0)) as parent:
        parent.incr("worker.items", 1)
        task_span = parent.add_span("executor.task", "executor", 10.0, 2.0, args={"index": 0})
        parent.ingest(state, at=10.0, parent_span_id=task_span)

    spans = {s["name"]: s for s in parent.spans}
    assert spans["task-work"]["parent"] == task_span
    assert spans["task-sub"]["parent"] == spans["task-work"]["id"]
    # ids were remapped: no collisions with the parent's own span ids
    assert len({s["id"] for s in parent.spans}) == len(parent.spans)
    # timestamps re-based onto the parent timeline, pids preserved
    assert spans["task-work"]["ts"] >= 10.0
    assert spans["task-work"]["pid"] == 4242
    assert parent.counters["worker.items"] == 4.0
    assert parent.histograms["worker.sizes"] == [11.0]
    (event,) = parent.events
    assert event["ts"] >= 10.0


def test_begin_child_recording_replaces_inherited_recorder():
    parent = obs.configure(trace_id="parent")
    with parent.span("parent-span", "fit"):
        pass
    child = obs.begin_child_recording(trace_id="parent")
    assert obs.get_recorder() is child
    assert child is not parent
    assert child.spans == []  # inherited parent spans are not duplicated


def test_wall_time_and_monotonic_are_floats():
    assert isinstance(obs.wall_time(), float)
    before = obs.monotonic()
    assert obs.monotonic() >= before
