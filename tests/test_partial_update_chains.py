"""Long-run ``partial_update`` chains stay exact.

The streaming subsystem folds micro-batches into the serving statistics
thousands of times; these tests drive *hundreds* of sequential folds and
compare the final cached statistics against a single from-scratch pass
over the union of training members and every accepted row — means and
variances must agree to float rounding, medians bit for bit.  A second
group pins the outlier-gating boundary: rows whose best gain is exactly
zero are rejected, rows an epsilon inside are absorbed, and the chain
bookkeeping never drifts across the boundary.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.artifact import ClusterModel, ModelArtifact
from repro.serving.index import ProjectedClusterIndex


class TestLongChains:
    N_FOLDS = 300

    @pytest.fixture()
    def chained(self, fitted_sspc, small_dataset, rng):
        """Run a 300-fold chain; returns (index, accepted rows per cluster)."""
        index = ProjectedClusterIndex(fitted_sspc.to_artifact())
        data = small_dataset.data
        accepted = {position: [] for position in range(index.n_clusters)}
        for _ in range(self.N_FOLDS):
            base = data[rng.integers(0, data.shape[0], size=3)]
            batch = base + rng.normal(scale=0.05, size=base.shape)
            labels = index.partial_update(batch)
            for position in range(index.n_clusters):
                rows = batch[labels == position]
                if rows.shape[0]:
                    accepted[position].append(rows)
        return index, accepted

    def _union(self, fitted_sspc, small_dataset, accepted, position):
        members = fitted_sspc.result_.clusters[position].members
        blocks = [small_dataset.data[members]]
        blocks.extend(accepted[position])
        return np.concatenate(blocks, axis=0)

    def test_sizes_advance_exactly(self, chained, fitted_sspc, small_dataset):
        index, accepted = chained
        for position in range(index.n_clusters):
            union = self._union(fitted_sspc, small_dataset, accepted, position)
            assert index.cluster_statistics(position).size == union.shape[0]

    def test_means_and_variances_match_from_scratch(self, chained, fitted_sspc, small_dataset):
        index, accepted = chained
        for position in range(index.n_clusters):
            union = self._union(fitted_sspc, small_dataset, accepted, position)
            stats = index.cluster_statistics(position)
            np.testing.assert_allclose(stats.mean, union.mean(axis=0), rtol=1e-9, atol=1e-9)
            np.testing.assert_allclose(
                stats.variance, union.var(axis=0, ddof=1), rtol=1e-8, atol=1e-9
            )

    def test_medians_match_from_scratch_bit_for_bit(self, chained, fitted_sspc, small_dataset):
        index, accepted = chained
        for position in range(index.n_clusters):
            union = self._union(fitted_sspc, small_dataset, accepted, position)
            stats = index.cluster_statistics(position)
            expected = np.median(union[:, stats.dimensions], axis=0)
            assert np.array_equal(stats.median_selected, expected)

    def test_chain_is_deterministic(self, fitted_sspc, rng):
        """Folding the same batches through two indexes agrees bit for bit."""
        first = ProjectedClusterIndex(fitted_sspc.to_artifact())
        second = ProjectedClusterIndex(fitted_sspc.to_artifact())
        batches = [
            rng.uniform(0, 100, size=(4, first.n_dimensions)) for _ in range(200)
        ]
        for batch in batches:
            first.partial_update(batch)
        for batch in batches:
            second.partial_update(batch)
        for position in range(first.n_clusters):
            ours, theirs = first.cluster_statistics(position), second.cluster_statistics(position)
            assert np.array_equal(ours.mean, theirs.mean)
            assert np.array_equal(ours.variance, theirs.variance)
            assert np.array_equal(ours.median_selected, theirs.median_selected)


def boundary_artifact():
    """A hand-built one-cluster model with an exactly known gate.

    One selected dimension (0), ``m = 0.5`` thresholds over global
    variances ``[4, 1]``: the threshold is ``2.0``, so the gain of a
    point at distance ``delta`` from the center along dimension 0 is
    ``1 - delta**2 / 2`` — zero exactly at ``delta = sqrt(2)``.
    """
    rows = np.asarray([[0.0, 5.0], [0.2, 6.0], [-0.2, 4.0], [0.0, 5.5]])
    return ModelArtifact(
        clusters=[
            ClusterModel(
                dimensions=np.asarray([0]),
                members=np.arange(4),
                representative=np.asarray([0.0, 5.125]),
                mean=rows.mean(axis=0),
                median=np.median(rows, axis=0),
                variance=rows.var(axis=0, ddof=1),
                score=1.0,
                member_projections=rows[:, [0]],
            )
        ],
        labels=np.zeros(4, dtype=int),
        n_objects=4,
        n_dimensions=2,
        threshold_description={"scheme": "m", "m": 0.5},
        global_variance=np.asarray([4.0, 1.0]),
        algorithm="SSPC",
    ), rows


class TestGatingBoundary:
    def test_zero_gain_is_rejected_epsilon_inside_is_accepted(self):
        artifact, _ = boundary_artifact()
        index = ProjectedClusterIndex(artifact)
        center = index._clusters[0].center_selected[0]
        boundary = np.sqrt(2.0)
        on_boundary = np.asarray([[center + boundary, 50.0]])
        inside = np.asarray([[center + boundary - 1e-9, 50.0]])
        outside = np.asarray([[center + boundary + 1e-9, 50.0]])
        assert index.gains_single(on_boundary[0])[0] == pytest.approx(0.0, abs=1e-12)
        assert index.predict(on_boundary)[0] == -1  # strictly-positive gate
        assert index.predict(inside)[0] == 0
        assert index.predict(outside)[0] == -1

    def test_boundary_chain_matches_from_scratch(self, rng):
        """A long chain peppered with boundary rows stays exact."""
        artifact, training_rows = boundary_artifact()
        index = ProjectedClusterIndex(artifact)
        accepted_rows = []
        n_boundary_rejections = 0
        boundary = np.sqrt(2.0)
        for step in range(250):
            center = index._clusters[0].center_selected[0]
            at_gate = center + boundary
            batch = np.asarray(
                [
                    [at_gate, float(step)],                      # at the gate (gain ~ 0)
                    [center + rng.uniform(-1.0, 1.0), 50.0],     # comfortably inside
                    [center + boundary * rng.choice([-3, 3]), 50.0],  # far outside
                ]
            )
            labels = index.partial_update(batch)
            # The gate is strictly positive; the expectation uses the
            # kernel's own arithmetic, so rounding at the boundary can
            # never make this assert and the kernel disagree.
            expected_at_gate = 0 if (1.0 - (at_gate - center) ** 2 / 2.0) > 0.0 else -1
            assert labels[0] == expected_at_gate
            if labels[0] == -1:
                n_boundary_rejections += 1
            assert labels[1] == 0
            assert labels[2] == -1
            accepted_rows.append(batch[labels == 0])
        assert n_boundary_rejections > 200  # the gate really is strict
        union = np.concatenate([training_rows] + accepted_rows, axis=0)
        stats = index.cluster_statistics(0)
        assert stats.size == union.shape[0]
        np.testing.assert_allclose(stats.mean, union.mean(axis=0), rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(
            stats.variance, union.var(axis=0, ddof=1), rtol=1e-8, atol=1e-9
        )
        assert np.array_equal(
            stats.median_selected, np.median(union[:, [0]], axis=0)
        )
