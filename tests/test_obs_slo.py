"""SLO tracking: rolling windows, burn rates, the fast-burn condition."""

from __future__ import annotations

import pytest

from repro.obs.slo import SLOConfig, SLOTracker, burn_rate


class FakeClock:
    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_tracker(**overrides):
    clock = FakeClock()
    config = SLOConfig(**overrides)
    return SLOTracker(config, clock=clock), clock


class TestBurnRate:
    def test_exact_budget_burns_at_one(self):
        # 0.1% errors against a 99.9% target is exactly the budget.
        assert burn_rate(1, 1000, 0.999) == pytest.approx(1.0)

    def test_scales_linearly_with_bad_fraction(self):
        assert burn_rate(10, 1000, 0.999) == pytest.approx(10.0)

    def test_zero_requests_is_zero_burn(self):
        assert burn_rate(0, 0, 0.999) == 0.0


class TestSLOConfig:
    def test_rejects_bad_targets(self):
        with pytest.raises(ValueError):
            SLOConfig(availability_target=1.5)
        with pytest.raises(ValueError):
            SLOConfig(latency_target=0.0)
        with pytest.raises(ValueError):
            SLOConfig(latency_budget_ms=-1.0)


class TestSLOTracker:
    def test_all_ok_traffic_reports_clean(self):
        tracker, clock = make_tracker()
        for _ in range(100):
            tracker.record(ok=True, latency_s=0.01)
            clock.advance(0.1)
        window = tracker.window(60)
        assert window["requests"] == 100
        assert window["errors"] == 0
        assert window["availability"] == 1.0
        assert window["availability_burn"] == 0.0
        assert not tracker.fast_burn()
        assert tracker.report()["status"] == "ok"

    def test_errors_raise_availability_burn(self):
        tracker, clock = make_tracker()
        for i in range(100):
            tracker.record(ok=(i % 2 == 0), latency_s=0.01)
            clock.advance(0.1)
        window = tracker.window(60)
        assert window["errors"] == 50
        assert window["availability"] == pytest.approx(0.5)
        # 50% bad against a 0.1% budget: burn = 0.5 / 0.001 = 500.
        assert window["availability_burn"] == pytest.approx(500.0)

    def test_slow_requests_raise_latency_burn_only(self):
        tracker, clock = make_tracker(latency_budget_ms=50.0)
        for _ in range(100):
            tracker.record(ok=True, latency_s=0.2)  # 200ms > 50ms budget
            clock.advance(0.1)
        window = tracker.window(60)
        assert window["errors"] == 0
        assert window["slow"] == 100
        assert window["availability_burn"] == 0.0
        assert window["latency_burn"] > 14.4

    def test_fast_burn_requires_min_requests(self):
        tracker, _ = make_tracker(min_window_requests=10)
        for _ in range(5):
            tracker.record(ok=False, latency_s=0.01)
        assert not tracker.fast_burn(), "5 requests must not page anyone"
        for _ in range(20):
            tracker.record(ok=False, latency_s=0.01)
        assert tracker.fast_burn()
        assert tracker.report()["status"] == "fast_burn"

    def test_old_traffic_ages_out_of_short_windows(self):
        tracker, clock = make_tracker()
        for _ in range(50):
            tracker.record(ok=False, latency_s=0.01)
        clock.advance(120.0)  # past the 1m window, inside 5m and 1h
        tracker.record(ok=True, latency_s=0.01)
        assert tracker.window(60)["errors"] == 0
        assert tracker.window(300)["errors"] == 50
        assert tracker.window(3600)["errors"] == 50
        assert not tracker.fast_burn(), "burn must subside once the 1m window clears"

    def test_huge_clock_gap_resets_all_windows(self):
        tracker, clock = make_tracker()
        for _ in range(50):
            tracker.record(ok=False, latency_s=0.01)
        clock.advance(7200.0)  # beyond the longest window
        tracker.record(ok=True, latency_s=0.01)
        assert tracker.window(3600)["errors"] == 0
        assert tracker.window(3600)["requests"] == 1

    def test_report_shape(self):
        tracker, _ = make_tracker()
        tracker.record(ok=True, latency_s=0.01)
        report = tracker.report()
        assert set(report) == {"objectives", "windows", "fast_burn", "status"}
        assert set(report["windows"]) == {"1m", "5m", "1h"}
        for window in report["windows"].values():
            assert set(window) >= {
                "requests",
                "errors",
                "slow",
                "availability",
                "latency_ok",
                "availability_burn",
                "latency_burn",
            }
