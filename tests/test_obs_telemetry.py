"""Serving telemetry: request traces, aggregation, tails, Prometheus."""

from __future__ import annotations

import itertools
import json

import pytest

from repro.obs.prom import (
    PromWriter,
    escape_label_value,
    format_number,
    write_histogram,
    write_telemetry,
)
from repro.obs.histogram import LogHistogram, log_bounds
from repro.obs.slo import SLOConfig
from repro.obs.telemetry import RequestTrace, Telemetry, status_class


def make_telemetry(**kwargs):
    """A telemetry on a counter clock: every now() is 0.1ms later."""
    ticks = itertools.count()
    kwargs.setdefault("clock", lambda: next(ticks) * 1e-4)
    kwargs.setdefault("trace_prefix", "test")
    return Telemetry(SLOConfig(), **kwargs)


class TestStatusClass:
    def test_maps_and_clamps(self):
        assert status_class(200) == "2xx"
        assert status_class(404) == "4xx"
        assert status_class(503) == "5xx"
        assert status_class(999) == "5xx"
        assert status_class(0) == "1xx"


class TestRequestTrace:
    def test_link_batch_adopts_ticket_and_phases(self):
        trace = RequestTrace("req-1", "POST", "predict", 1.0)
        trace.link_batch(
            {
                "batch_id": 7,
                "batch_size": 4,
                "flush_reason": "full",
                "queue_wait_us": 500.0,
                "kernel_s": 0.002,
            },
            submitted_at=1.001,
        )
        assert trace.batch_id == 7
        assert trace.flush_reason == "full"
        names = [name for name, *_ in trace.phases]
        assert names == ["server.queue_wait", "server.kernel"]
        # kernel starts where the queue wait ends
        _, wait_start, wait_duration, _ = trace.phases[0]
        _, kernel_start, _, _ = trace.phases[1]
        assert kernel_start == pytest.approx(wait_start + wait_duration)

    def test_link_batch_ignores_unfilled_ticket(self):
        trace = RequestTrace("req-1", "POST", "predict", 1.0)
        trace.link_batch({}, submitted_at=1.0)
        assert trace.batch_id is None
        assert trace.phases == []

    def test_span_args_carry_identity_and_batch(self):
        trace = RequestTrace("req-9", "GET", "healthz", 0.0)
        trace.status = 200
        args = trace.span_args()
        assert args["request_id"] == "req-9"
        assert args["route"] == "healthz"
        assert "batch_id" not in args


class TestTelemetryAggregation:
    def test_request_ids_are_unique_and_prefixed(self):
        telemetry = make_telemetry()
        ids = {telemetry.next_request_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(rid.startswith("test-") for rid in ids)

    def test_finish_aggregates_by_route_and_class(self):
        telemetry = make_telemetry()
        for status in (200, 200, 404, 500):
            trace = telemetry.begin_request("POST", "predict", "r")
            telemetry.finish_request(trace, status)
        snapshot = telemetry.snapshot()
        assert snapshot["requests_total"]["predict"] == {"2xx": 2, "4xx": 1, "5xx": 1}
        latency = snapshot["latency_seconds"]["predict"]["2xx"]
        assert latency["count"] == 2
        cumulative = latency["buckets"]["cumulative"]
        assert cumulative[-1] == 2
        assert latency["buckets"]["le"][-1] == "+Inf"

    def test_500s_feed_the_availability_slo(self):
        telemetry = make_telemetry()
        for _ in range(30):
            trace = telemetry.begin_request("POST", "predict", "r")
            telemetry.finish_request(trace, 500)
        report = telemetry.snapshot()["slo"]
        assert report["status"] == "fast_burn"

    def test_4xx_does_not_burn_availability(self):
        telemetry = make_telemetry()
        for _ in range(30):
            trace = telemetry.begin_request("POST", "predict", "r")
            telemetry.finish_request(trace, 404)
        report = telemetry.snapshot()["slo"]
        assert report["status"] == "ok"

    def test_errored_requests_are_tail_captured(self):
        telemetry = make_telemetry()
        ok = telemetry.begin_request("POST", "predict", "ok-req")
        telemetry.finish_request(ok, 200)
        bad = telemetry.begin_request("POST", "predict", "bad-req")
        telemetry.finish_request(bad, 500, error="kernel exploded")
        counts = telemetry.snapshot()["tail"]
        assert counts["captured_errors"] == 1

    def test_slow_capture_is_bounded(self):
        telemetry = make_telemetry(tail_slow=4)
        for i in range(100):
            trace = telemetry.begin_request("POST", "predict", "req-%d" % i)
            telemetry.finish_request(trace, 200)
        counts = telemetry.snapshot()["tail"]
        assert counts["captured_slow"] <= 2 * 4  # current + previous window

    def test_flush_retention_is_bounded(self):
        telemetry = make_telemetry(flush_capacity=8)
        for i in range(50):
            telemetry.observe_flush(i, "full", 4, i * 1e-4, 1e-3)
        assert telemetry.snapshot()["tail"]["flushes_retained"] == 8


class TestTailTrace:
    def test_links_request_flush_and_worker_spans(self):
        telemetry = make_telemetry()
        trace = telemetry.begin_request("POST", "predict", "req-linked")
        trace.link_batch(
            {
                "batch_id": 3,
                "batch_size": 2,
                "flush_reason": "quiesce",
                "queue_wait_us": 100.0,
                "kernel_s": 0.001,
            },
            submitted_at=trace.start,
        )
        worker_state = {
            "spans": [
                {
                    "id": 1,
                    "parent": None,
                    "name": "worker.predict",
                    "cat": "server",
                    "ts": 0.0,
                    "dur": 0.001,
                    "pid": 999,
                    "tid": 1,
                    "args": {"rows": 2},
                }
            ]
        }
        telemetry.observe_flush(3, "quiesce", 2, 0.0, 0.001, worker_state)
        telemetry.finish_request(trace, 500, error="boom")  # errored => captured

        chrome = telemetry.tail_trace()
        events = {
            event["name"]: event
            for event in chrome["traceEvents"]
            if event.get("ph") == "X"
        }
        assert {"server.request", "server.flush", "worker.predict"} <= set(events)
        request = events["server.request"]
        flush = events["server.flush"]
        worker = events["worker.predict"]
        # one shared request id across all three layers
        for event in (request, flush, worker):
            assert event["args"]["request_id"] == "req-linked"
        # and a connected parent chain request -> flush -> worker
        assert flush["args"]["parent_id"] == request["args"]["span_id"]
        assert worker["args"]["parent_id"] == flush["args"]["span_id"]

    def test_uncaptured_requests_produce_no_spans(self):
        telemetry = make_telemetry()
        spans = [
            event
            for event in telemetry.tail_trace()["traceEvents"]
            if event.get("ph") == "X"
        ]
        assert spans == []


class TestPromFormat:
    def test_format_number(self):
        assert format_number(float("inf")) == "+Inf"
        assert format_number(3.0) == "3"
        assert format_number(0.25) == "0.25"

    def test_escape_label_value(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_writer_renders_families_and_samples(self):
        writer = PromWriter()
        writer.family("x_total", "counter", "a counter")
        writer.sample("x_total", {"route": "predict"}, 3)
        text = writer.render()
        assert "# HELP x_total a counter" in text
        assert "# TYPE x_total counter" in text
        assert 'x_total{route="predict"} 3' in text
        assert text.endswith("\n")

    def test_write_histogram_scales_bounds_not_counts(self):
        histogram = LogHistogram(log_bounds(1.0, 100.0))
        for value in (2.0, 20.0):
            histogram.observe(value)
        writer = PromWriter()
        writer.family("w_seconds", "histogram", "waits")
        write_histogram(writer, "w_seconds", {}, histogram, scale=1e-3)
        text = writer.render()
        assert "w_seconds_count 2" in text
        assert "w_seconds_sum 0.022" in text
        assert 'le="+Inf"' in text


class TestWriteTelemetry:
    def test_prometheus_counts_equal_snapshot(self):
        telemetry = make_telemetry()
        for status in (200, 200, 200, 404):
            trace = telemetry.begin_request("POST", "predict", "r")
            telemetry.finish_request(trace, status)
        snapshot = telemetry.snapshot()
        writer = PromWriter()
        write_telemetry(writer, telemetry)
        text = writer.render()
        assert 'repro_requests_total{route="predict",status_class="2xx"} 3' in text
        assert 'repro_requests_total{route="predict",status_class="4xx"} 1' in text
        count_line = (
            'repro_request_latency_seconds_count{route="predict",status_class="2xx"} %d'
            % snapshot["latency_seconds"]["predict"]["2xx"]["count"]
        )
        assert count_line in text
        assert "repro_slo_fast_burn 0" in text

    def test_output_is_deterministic(self):
        def build():
            telemetry = make_telemetry()
            for status in (200, 500, 404):
                trace = telemetry.begin_request("POST", "predict", "r")
                telemetry.finish_request(trace, status)
            writer = PromWriter()
            write_telemetry(writer, telemetry)
            return writer.render(), json.dumps(telemetry.snapshot(), sort_keys=True)

        assert build() == build()
