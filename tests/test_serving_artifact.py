"""Tests of the serving artifact format (save/load/round-trip fidelity)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.model import ClusteringResult
from repro.core.thresholds import ChiSquareThreshold, VarianceRatioThreshold
from repro.reliability import stamp_json_file
from repro.serving.artifact import (
    ARTIFACT_FORMAT,
    MANIFEST_NAME,
    SCHEMA_VERSION,
    ModelArtifact,
    load_artifact,
    threshold_from_description,
)


@pytest.fixture()
def artifact(fitted_sspc):
    return fitted_sspc.to_artifact()


class TestResultRoundTrip:
    def test_labels_round_trip(self, fitted_sspc, artifact):
        rebuilt = artifact.to_result()
        np.testing.assert_array_equal(rebuilt.labels(), fitted_sspc.result_.labels())
        np.testing.assert_array_equal(rebuilt.outliers, fitted_sspc.result_.outliers)

    def test_clusters_round_trip(self, fitted_sspc, artifact):
        rebuilt = artifact.to_result()
        original = fitted_sspc.result_
        assert rebuilt.n_clusters == original.n_clusters
        for a, b in zip(rebuilt.clusters, original.clusters):
            np.testing.assert_array_equal(a.members, b.members)
            np.testing.assert_array_equal(a.dimensions, b.dimensions)
            assert a.score == b.score
            np.testing.assert_array_equal(a.representative, b.representative)

    def test_metadata_round_trip(self, fitted_sspc, artifact):
        rebuilt = artifact.to_result()
        original = fitted_sspc.result_
        assert rebuilt.objective == original.objective
        assert rebuilt.n_iterations == original.n_iterations
        assert rebuilt.algorithm == original.algorithm
        assert rebuilt.parameters == original.parameters


class TestCapture:
    def test_statistics_match_member_blocks(self, small_dataset, artifact):
        for cluster in artifact.clusters:
            block = small_dataset.data[cluster.members]
            np.testing.assert_array_equal(cluster.mean, block.mean(axis=0))
            np.testing.assert_array_equal(cluster.median, np.median(block, axis=0))
            np.testing.assert_array_equal(cluster.variance, block.var(axis=0, ddof=1))

    def test_projections_match_member_blocks(self, small_dataset, artifact):
        assert artifact.includes_projections
        for cluster in artifact.clusters:
            expected = small_dataset.data[np.ix_(cluster.members, cluster.dimensions)]
            np.testing.assert_array_equal(cluster.member_projections, expected)

    def test_capture_reuses_the_fit_statistics_cache(self, fitted_sspc):
        passes_before = fitted_sspc.stats_cache_.n_stat_passes
        fitted_sspc.to_artifact()
        assert fitted_sspc.stats_cache_.n_stat_passes == passes_before

    def test_projections_optional(self, fitted_sspc):
        artifact = fitted_sspc.to_artifact(include_projections=False)
        assert not artifact.includes_projections
        assert all(c.member_projections is None for c in artifact.clusters)

    def test_from_result_rebuilds_threshold_from_parameters(self, small_dataset):
        result = ClusteringResult.from_labels(
            np.repeat(np.arange(3), 80),
            small_dataset.n_dimensions,
            parameters={"p": 0.05},
        )
        artifact = ModelArtifact.from_result(result, small_dataset.data)
        assert artifact.threshold_description == {"scheme": "p", "p": 0.05}

    def test_from_result_rejects_mismatched_data(self, small_dataset, fitted_sspc):
        with pytest.raises(ValueError, match="shape"):
            ModelArtifact.from_result(fitted_sspc.result_, small_dataset.data[:, :10])


class TestPersistence:
    def test_save_load_round_trip_is_exact(self, artifact, tmp_path):
        path = artifact.save(tmp_path / "model")
        loaded = load_artifact(path)
        assert loaded.schema_version == SCHEMA_VERSION
        assert loaded.algorithm == artifact.algorithm
        assert loaded.objective == artifact.objective
        assert loaded.n_iterations == artifact.n_iterations
        assert loaded.threshold_description == artifact.threshold_description
        assert loaded.parameters == artifact.parameters
        np.testing.assert_array_equal(loaded.labels, artifact.labels)
        np.testing.assert_array_equal(loaded.global_variance, artifact.global_variance)
        for a, b in zip(loaded.clusters, artifact.clusters):
            np.testing.assert_array_equal(a.dimensions, b.dimensions)
            np.testing.assert_array_equal(a.members, b.members)
            np.testing.assert_array_equal(a.representative, b.representative)
            np.testing.assert_array_equal(a.mean, b.mean)
            np.testing.assert_array_equal(a.median, b.median)
            np.testing.assert_array_equal(a.variance, b.variance)
            np.testing.assert_array_equal(a.member_projections, b.member_projections)
            assert a.score == b.score

    def test_loaded_result_round_trip(self, fitted_sspc, artifact, tmp_path):
        loaded = load_artifact(artifact.save(tmp_path / "model"))
        np.testing.assert_array_equal(
            loaded.to_result().labels(), fitted_sspc.result_.labels()
        )

    def test_manifest_is_self_describing(self, artifact, tmp_path):
        path = artifact.save(tmp_path / "model")
        with (path / MANIFEST_NAME).open() as handle:
            manifest = json.load(handle)
        assert manifest["format"] == ARTIFACT_FORMAT
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert manifest["n_clusters"] == artifact.n_clusters
        assert manifest["threshold"] == artifact.threshold_description

    def test_newer_schema_is_refused(self, artifact, tmp_path):
        path = artifact.save(tmp_path / "model")
        manifest_path = path / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["schema_version"] = SCHEMA_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="newer"):
            load_artifact(path)

    def test_wrong_format_is_refused(self, artifact, tmp_path):
        path = artifact.save(tmp_path / "model")
        manifest_path = path / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["format"] = "something-else"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="format"):
            load_artifact(path)

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_artifact(tmp_path / "nowhere")

    def test_missing_cluster_arrays_raise(self, artifact, tmp_path):
        path = artifact.save(tmp_path / "model")
        manifest_path = path / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["n_clusters"] = artifact.n_clusters + 1
        manifest_path.write_text(json.dumps(manifest))
        stamp_json_file(manifest_path)  # re-stamp: the edit is deliberate
        with pytest.raises(ValueError, match="incomplete"):
            load_artifact(path)


class TestThresholdReconstruction:
    def test_variance_ratio_scheme(self):
        fitted = VarianceRatioThreshold(m=0.3).fit_from_variance(np.asarray([1.0, 4.0]))
        rebuilt = threshold_from_description(fitted.describe(), fitted.global_variance)
        np.testing.assert_array_equal(rebuilt.values(10), fitted.values(10))

    def test_chi_square_scheme(self):
        fitted = ChiSquareThreshold(p=0.05).fit_from_variance(np.asarray([1.0, 4.0]))
        rebuilt = threshold_from_description(fitted.describe(), fitted.global_variance)
        np.testing.assert_array_equal(rebuilt.values(25), fitted.values(25))

    def test_unknown_scheme_raises(self):
        with pytest.raises(ValueError, match="scheme"):
            threshold_from_description({"scheme": "q"}, np.ones(3))

    def test_artifact_threshold_matches_fit(self, fitted_sspc, artifact):
        rebuilt = artifact.threshold()
        np.testing.assert_array_equal(
            rebuilt.values(50), fitted_sspc.threshold_.values(50)
        )


class TestValidation:
    def test_label_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="labels"):
            ModelArtifact(
                clusters=[],
                labels=np.zeros(3, dtype=int),
                n_objects=4,
                n_dimensions=2,
                threshold_description={"scheme": "m", "m": 0.5},
                global_variance=np.ones(2),
            )

    def test_vector_length_mismatch_rejected(self):
        cluster_kwargs = dict(
            dimensions=np.asarray([0]),
            members=np.asarray([0, 1]),
            representative=np.ones(3),
            mean=np.ones(3),
            median=np.ones(3),
            variance=np.ones(3),
        )
        from repro.serving.artifact import ClusterModel

        with pytest.raises(ValueError, match="cluster 0"):
            ModelArtifact(
                clusters=[ClusterModel(**cluster_kwargs)],
                labels=np.zeros(2, dtype=int),
                n_objects=2,
                n_dimensions=2,
                threshold_description={"scheme": "m", "m": 0.5},
                global_variance=np.ones(2),
            )
