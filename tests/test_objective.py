"""Tests for the SSPC objective function (Eq. 1-4)."""

import numpy as np
import pytest

from repro.core.objective import ObjectiveFunction
from repro.core.thresholds import VarianceRatioThreshold


@pytest.fixture()
def simple_objective():
    """A hand-constructed dataset where expected scores are easy to reason about."""
    rng = np.random.default_rng(5)
    # 60 objects, 6 dimensions; objects 0-19 form a tight cluster on dims 0-1.
    data = rng.uniform(0, 100, size=(60, 6))
    data[:20, 0] = rng.normal(30, 1.0, size=20)
    data[:20, 1] = rng.normal(70, 1.0, size=20)
    return ObjectiveFunction(data, VarianceRatioThreshold(m=0.5))


class TestClusterStatistics:
    def test_statistics_match_numpy(self, simple_objective):
        members = np.arange(20)
        stats = simple_objective.cluster_statistics(members)
        block = simple_objective.data[members]
        np.testing.assert_allclose(stats.mean, block.mean(axis=0))
        np.testing.assert_allclose(stats.median, np.median(block, axis=0))
        np.testing.assert_allclose(stats.variance, block.var(axis=0, ddof=1))
        assert stats.size == 20

    def test_empty_members(self, simple_objective):
        stats = simple_objective.cluster_statistics([])
        assert stats.size == 0
        assert np.all(stats.variance == 0)

    def test_singleton_has_zero_variance(self, simple_objective):
        stats = simple_objective.cluster_statistics([3])
        assert stats.size == 1
        assert np.all(stats.variance == 0)

    def test_dispersion_definition(self, simple_objective):
        members = np.arange(10)
        stats = simple_objective.cluster_statistics(members)
        expected = stats.variance + (stats.mean - stats.median) ** 2
        np.testing.assert_allclose(stats.dispersion(), expected)


class TestPhiScores:
    def test_relevant_dimensions_score_positive(self, simple_objective):
        scores = simple_objective.phi_ij_all(np.arange(20))
        assert scores[0] > 0
        assert scores[1] > 0

    def test_irrelevant_dimensions_score_negative(self, simple_objective):
        scores = simple_objective.phi_ij_all(np.arange(20))
        # Dimensions 2-5 carry no signal for this cluster; with m=0.5 their
        # dispersion is around the global variance, i.e. twice the threshold.
        assert np.mean(scores[2:] < 0) >= 0.75

    def test_better_dimension_contributes_more(self, simple_objective):
        # Shrinking the spread of a dimension increases its phi score
        # (design goal #2 of the objective).
        data = simple_objective.data.copy()
        data[:20, 2] = np.random.default_rng(0).normal(50, 0.1, size=20)
        tighter = ObjectiveFunction(data, VarianceRatioThreshold(m=0.5))
        looser_scores = simple_objective.phi_ij_all(np.arange(20))
        tighter_scores = tighter.phi_ij_all(np.arange(20))
        assert tighter_scores[2] > looser_scores[2]

    def test_phi_ij_matches_eq4_formula(self, simple_objective):
        members = np.arange(20)
        stats = simple_objective.cluster_statistics(members)
        thresholds = simple_objective.threshold.values(stats.size)
        expected = (stats.size - 1) * (1.0 - stats.dispersion() / thresholds)
        np.testing.assert_allclose(simple_objective.phi_ij_all(members), expected)

    def test_eq3_with_median_close_to_eq4(self, simple_objective):
        # Eq. 3 and Eq. 4 differ only in how the mean-median offset is
        # weighted (n_i vs n_i - 1); with 20 members they nearly coincide.
        members = np.arange(20)
        eq3 = simple_objective.phi_ij_all_eq3(members)
        eq4 = simple_objective.phi_ij_all(members)
        np.testing.assert_allclose(eq3, eq4, rtol=0.15, atol=0.5)

    def test_eq3_with_custom_center(self, simple_objective):
        members = np.arange(20)
        center = simple_objective.data[0]
        scores = simple_objective.phi_ij_all_eq3(members, center=center)
        assert scores.shape == (simple_objective.n_dimensions,)

    def test_phi_i_sums_selected_dimensions(self, simple_objective):
        members = np.arange(20)
        scores = simple_objective.phi_ij_all(members)
        assert simple_objective.phi_i(members, [0, 1]) == pytest.approx(scores[0] + scores[1])

    def test_phi_i_empty_dimensions_is_zero(self, simple_objective):
        assert simple_objective.phi_i(np.arange(20), []) == 0.0

    def test_phi_normalised_by_n_times_d(self, simple_objective):
        members = np.arange(20)
        phi_i = simple_objective.phi_i(members, [0, 1])
        phi = simple_objective.phi([members], [[0, 1]])
        n, d = simple_objective.n_objects, simple_objective.n_dimensions
        assert phi == pytest.approx(phi_i / (n * d))

    def test_phi_requires_aligned_inputs(self, simple_objective):
        with pytest.raises(ValueError):
            simple_objective.phi([np.arange(5)], [[0], [1]])


class TestAssignmentGains:
    def test_cluster_members_gain_more_than_strangers(self, simple_objective):
        representative = np.median(simple_objective.data[:20], axis=0)
        gains = simple_objective.assignment_gains(representative, [0, 1], cluster_size=20)
        members_gain = gains[:20].mean()
        strangers_gain = gains[20:].mean()
        assert members_gain > strangers_gain
        assert members_gain > 0

    def test_empty_dimensions_give_zero_gain(self, simple_objective):
        representative = simple_objective.data[0]
        gains = simple_objective.assignment_gains(representative, [], cluster_size=10)
        assert np.all(gains == 0)

    def test_gain_formula(self, simple_objective):
        representative = simple_objective.data[0]
        dims = np.asarray([0, 3])
        gains = simple_objective.assignment_gains(representative, dims, cluster_size=10)
        thresholds = simple_objective.threshold.values(10)[dims]
        deltas = simple_objective.data[:, dims] - representative[dims]
        expected = (1.0 - deltas**2 / thresholds).sum(axis=1)
        np.testing.assert_allclose(gains, expected)

    def test_wrong_representative_length_rejected(self, simple_objective):
        with pytest.raises(ValueError):
            simple_objective.assignment_gains(np.zeros(3), [0], cluster_size=5)


class TestConstruction:
    def test_unfitted_threshold_is_fitted_on_data(self):
        data = np.random.default_rng(1).normal(size=(30, 4))
        objective = ObjectiveFunction(data, VarianceRatioThreshold(m=0.5))
        assert objective.threshold.is_fitted

    def test_mismatched_prefitted_threshold_rejected(self):
        rng = np.random.default_rng(2)
        threshold = VarianceRatioThreshold(m=0.5).fit(rng.normal(size=(30, 3)))
        with pytest.raises(ValueError):
            ObjectiveFunction(rng.normal(size=(30, 5)), threshold)
