"""Equivalence and contract tests of the incremental assignment engine.

The engine's whole value proposition is that persistent plans, dirty-only
recomputation and blocked evaluation change *nothing* about the numbers:
every test here drives randomized mutation sequences and asserts the
cached matrix equals a from-scratch
:func:`~repro.core.objective.grouped_assignment_gains` call bit for bit
after every step.
"""

import numpy as np
import pytest

from repro.core.assignment_engine import AssignmentEngine
from repro.core.objective import ObjectiveFunction, grouped_assignment_gains
from repro.core.thresholds import VarianceRatioThreshold
from repro.data.generator import SyntheticDataGenerator
from repro.serving.index import ProjectedClusterIndex
from repro.core.sspc import SSPC


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(21)
    return np.ascontiguousarray(rng.normal(size=(700, 45)))


def _random_specs(rng, k, d, max_count=20):
    dims, centers, thresholds = [], [], []
    for _ in range(k):
        count = int(rng.integers(0, max_count))
        dims.append(np.sort(rng.choice(d, size=count, replace=False)).astype(int))
        centers.append(rng.normal(size=count))
        thresholds.append(rng.uniform(0.1, 2.0, size=count))
    return dims, centers, thresholds


class TestBlockedEvaluation:
    @pytest.mark.parametrize("block_rows", [1, 2, 3, 64, 251, 4096])
    def test_bit_identical_to_reference_across_block_sizes(self, points, block_rows):
        """Row blocking must never change a bit, including counts >= 8
        (where numpy's pairwise-sum grouping is layout-sensitive)."""
        rng = np.random.default_rng(3)
        dims, centers, thresholds = _random_specs(rng, 7, points.shape[1])
        engine = AssignmentEngine(points, block_rows=block_rows)
        engine.set_clusters(dims, centers, thresholds)
        reference = grouped_assignment_gains(points, dims, centers, thresholds)
        assert np.array_equal(engine.gains(), reference)
        assert np.array_equal(engine.compute(points), reference)

    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_tiny_batches(self, points, n):
        rng = np.random.default_rng(4)
        dims, centers, thresholds = _random_specs(rng, 5, points.shape[1])
        engine = AssignmentEngine(block_rows=2)
        engine.set_clusters(dims, centers, thresholds)
        batch = points[:n]
        reference = grouped_assignment_gains(batch, dims, centers, thresholds)
        assert np.array_equal(engine.compute(batch), reference)

    def test_all_empty_dimension_sets_pin_minus_inf(self, points):
        empty = np.empty(0, dtype=int)
        engine = AssignmentEngine(points)
        engine.set_clusters([empty] * 3, [np.empty(0)] * 3, [np.empty(0)] * 3)
        gains = engine.gains()
        assert gains.shape == (points.shape[0], 3)
        assert np.all(np.isneginf(gains))

    def test_workspaces_are_reused_not_regrown(self, points):
        rng = np.random.default_rng(5)
        dims, centers, thresholds = _random_specs(rng, 6, points.shape[1])
        engine = AssignmentEngine(points, block_rows=128)
        engine.set_clusters(dims, centers, thresholds)
        engine.gains()
        workspace = engine.backend._workspace
        for _ in range(5):
            engine.invalidate()
            engine.gains()
            engine.compute(points[:100])
        assert engine.backend._workspace is workspace


class TestDirtyTracking:
    def test_randomized_mutation_sequence_stays_bit_identical(self, points):
        """Interleaved value patches, count moves, adds, removes and
        full invalidations: the cache equals a from-scratch reference
        call after every step."""
        rng = np.random.default_rng(9)
        d = points.shape[1]
        dims, centers, thresholds = _random_specs(rng, 6, d)
        engine = AssignmentEngine(points, block_rows=97)
        engine.set_clusters(dims, centers, thresholds)
        for step in range(60):
            action = rng.choice(["patch", "move", "add", "remove", "invalidate", "noop"])
            k = engine.n_clusters
            if action == "patch" and k:
                index = int(rng.integers(k))
                if dims[index].size:
                    centers[index] = centers[index] + rng.normal(
                        scale=1e-3, size=dims[index].size
                    )
                engine.update_cluster(index, dims[index], centers[index], thresholds[index])
            elif action == "move" and k:
                index = int(rng.integers(k))
                count = int(rng.integers(0, 20))
                dims[index] = np.sort(rng.choice(d, size=count, replace=False)).astype(int)
                centers[index] = rng.normal(size=count)
                thresholds[index] = rng.uniform(0.1, 2.0, size=count)
                engine.update_cluster(index, dims[index], centers[index], thresholds[index])
            elif action == "add":
                count = int(rng.integers(0, 20))
                dims.append(np.sort(rng.choice(d, size=count, replace=False)).astype(int))
                centers.append(rng.normal(size=count))
                thresholds.append(rng.uniform(0.1, 2.0, size=count))
                engine.add_cluster(dims[-1], centers[-1], thresholds[-1])
            elif action == "remove" and k > 1:
                index = int(rng.integers(k))
                del dims[index], centers[index], thresholds[index]
                engine.remove_cluster(index)
            elif action == "invalidate":
                engine.invalidate()
            reference = grouped_assignment_gains(points, dims, centers, thresholds)
            assert np.array_equal(engine.gains(), reference), "step %d (%s)" % (step, action)

    def test_clean_updates_do_not_recompute(self, points):
        rng = np.random.default_rng(11)
        dims, centers, thresholds = _random_specs(rng, 5, points.shape[1], max_count=9)
        engine = AssignmentEngine(points)
        engine.set_clusters(dims, centers, thresholds)
        engine.gains()
        recomputed = engine.n_columns_recomputed
        for index in range(5):
            changed = engine.update_cluster(
                index, dims[index], centers[index], thresholds[index]
            )
            assert not changed
        engine.gains()
        assert engine.n_columns_recomputed == recomputed
        assert engine.n_updates_clean == 5

    def test_only_dirty_columns_recompute(self, points):
        rng = np.random.default_rng(12)
        dims, centers, thresholds = _random_specs(rng, 8, points.shape[1], max_count=9)
        for index in range(8):  # every cluster servable
            if dims[index].size == 0:
                dims[index] = np.asarray([index])
                centers[index] = rng.normal(size=1)
                thresholds[index] = rng.uniform(0.1, 2.0, size=1)
        engine = AssignmentEngine(points)
        engine.set_clusters(dims, centers, thresholds)
        engine.gains()
        baseline = engine.n_columns_recomputed
        centers[3] = centers[3] + 1e-3
        engine.update_cluster(3, dims[3], centers[3], thresholds[3])
        engine.gains()
        assert engine.n_columns_recomputed == baseline + 1
        assert np.array_equal(
            engine.gains(), grouped_assignment_gains(points, dims, centers, thresholds)
        )

    def test_in_place_mutation_of_submitted_arrays_is_detected(self, points):
        """The plan owns copies: mutating a previously submitted array in
        place and resubmitting the same object must still diff as
        changed (storing by reference would compare it to itself)."""
        dims = np.arange(3)
        center = np.zeros(3)
        threshold = np.ones(3)
        engine = AssignmentEngine(points)
        engine.set_clusters([dims], [center], [threshold])
        engine.gains()
        center[:] = 5.0
        assert engine.update_cluster(0, dims, center, threshold)
        assert np.array_equal(
            engine.gains(),
            grouped_assignment_gains(points, [dims], [center], [threshold]),
        )

    def test_force_marks_identical_values_dirty(self, points):
        rng = np.random.default_rng(13)
        dims, centers, thresholds = _random_specs(rng, 4, points.shape[1], max_count=9)
        engine = AssignmentEngine(points)
        engine.set_clusters(dims, centers, thresholds)
        engine.gains()
        changed = engine.update_cluster(
            0, dims[0], centers[0], thresholds[0], force=True
        )
        assert changed
        assert engine.n_dirty == 1

    def test_mark_dirty_validates_indices(self, points):
        engine = AssignmentEngine(points)
        engine.set_clusters([np.asarray([0])], [np.zeros(1)], [np.ones(1)])
        with pytest.raises(IndexError):
            engine.mark_dirty([5])

    def test_gains_requires_bound_points(self):
        engine = AssignmentEngine()
        engine.set_clusters([np.asarray([0])], [np.zeros(1)], [np.ones(1)])
        with pytest.raises(RuntimeError):
            engine.gains()

    def test_misaligned_values_rejected(self, points):
        engine = AssignmentEngine(points)
        with pytest.raises(ValueError):
            engine.set_clusters([np.asarray([0, 1])], [np.zeros(1)], [np.ones(2)])


class TestObjectiveBackend:
    @pytest.fixture(scope="class")
    def objective(self):
        rng = np.random.default_rng(31)
        data = rng.normal(size=(250, 24))
        return ObjectiveFunction(data, VarianceRatioThreshold(m=0.5))

    def _states(self, rng, objective, k):
        reps = [objective.data[int(rng.integers(objective.n_objects))] for _ in range(k)]
        dims = [
            np.sort(rng.choice(objective.n_dimensions, size=int(rng.integers(1, 12)),
                               replace=False)).astype(int)
            for _ in range(k)
        ]
        sizes = [int(rng.integers(2, 80)) for _ in range(k)]
        return reps, dims, sizes

    def test_returns_read_only_view_of_live_cache(self, objective):
        rng = np.random.default_rng(32)
        reps, dims, sizes = self._states(rng, objective, 3)
        gains = objective.assignment_gains_matrix(reps, dims, sizes)
        assert not gains.flags.writeable
        with pytest.raises(ValueError):
            gains[0, 0] = 0.0

    def test_repeated_calls_serve_the_cache(self, objective):
        rng = np.random.default_rng(33)
        reps, dims, sizes = self._states(rng, objective, 4)
        first = objective.assignment_gains_matrix(reps, dims, sizes)
        engine = objective._assignment_engine
        recomputed = engine.n_columns_recomputed
        second = objective.assignment_gains_matrix(reps, dims, sizes)
        assert engine.n_columns_recomputed == recomputed
        assert np.array_equal(first, second)

    def test_dirty_hints_force_recomputation(self, objective):
        rng = np.random.default_rng(34)
        reps, dims, sizes = self._states(rng, objective, 4)
        objective.assignment_gains_matrix(reps, dims, sizes)
        engine = objective._assignment_engine
        recomputed = engine.n_columns_recomputed
        objective.mark_assignment_dirty([1, 2])
        objective.assignment_gains_matrix(reps, dims, sizes)
        assert engine.n_columns_recomputed == recomputed + 2

    def test_cluster_count_change_rebuilds(self, objective):
        rng = np.random.default_rng(35)
        for k in (3, 5, 2):
            reps, dims, sizes = self._states(rng, objective, k)
            gains = objective.assignment_gains_matrix(reps, dims, sizes)
            expected = np.stack(
                [
                    objective.assignment_gains(reps[i], dims[i], max(sizes[i], 2))
                    for i in range(k)
                ],
                axis=1,
            )
            assert np.array_equal(gains, expected)


def _index_reference_gains(index, queries):
    """From-scratch reference: rebuild the kernel inputs from the
    index's public statistics and call the stateless kernel."""
    dims, centers, thresholds = [], [], []
    for position in range(index.n_clusters):
        stats = index.cluster_statistics(position)
        if stats.size > 0 and stats.dimensions.size > 0:
            dims.append(stats.dimensions)
            centers.append(stats.median_selected)
            thresholds.append(index.threshold.values(max(stats.size, 2))[stats.dimensions])
        else:
            dims.append(np.empty(0, dtype=int))
            centers.append(np.empty(0))
            thresholds.append(np.empty(0))
    return grouped_assignment_gains(queries, dims, centers, thresholds)


class TestServingPlanMaintenance:
    @pytest.fixture(scope="class")
    def fitted(self):
        dataset = SyntheticDataGenerator(
            n_objects=420,
            n_dimensions=36,
            n_clusters=4,
            avg_cluster_dimensionality=6,
            outlier_fraction=0.05,
            random_state=2,
        ).generate(2)
        model = SSPC(n_clusters=4, m=0.5, max_iterations=6, random_state=2).fit(dataset.data)
        return model, dataset

    def test_randomized_serving_mutations_stay_bit_identical(self, fitted):
        """Interleaved partial_update / add / remove / reanchor / trim /
        refresh_threshold: the live plan equals a from-scratch kernel
        call and a fully rebuilt index after every step."""
        model, dataset = fitted
        rng = np.random.default_rng(7)
        index = ProjectedClusterIndex(model.to_artifact())
        d = index.n_dimensions
        queries = rng.normal(
            loc=dataset.data.mean(axis=0),
            scale=dataset.data.std(axis=0),
            size=(60, d),
        )
        for step in range(40):
            action = rng.choice(
                ["fold", "add", "remove", "reanchor", "trim", "refresh", "predict"]
            )
            if action == "fold":
                rows = dataset.data[rng.integers(0, dataset.data.shape[0], size=25)]
                index.partial_update(rows + rng.normal(scale=0.01, size=rows.shape))
            elif action == "add" and index.n_clusters < 7:
                count = int(rng.integers(2, 8))
                new_dims = np.sort(rng.choice(d, size=count, replace=False))
                rows = rng.normal(size=(12, d))
                index.add_cluster(new_dims, rows)
            elif action == "remove" and index.n_clusters > 2:
                index.remove_cluster(int(rng.integers(index.n_clusters)))
            elif action == "reanchor":
                position = int(rng.integers(index.n_clusters))
                count = int(rng.integers(2, 8))
                new_dims = np.sort(rng.choice(d, size=count, replace=False))
                index.reanchor_cluster(position, new_dims, rng.normal(size=(15, d)))
            elif action == "trim":
                index.trim_projections(int(rng.integers(index.n_clusters)), 8)
            elif action == "refresh":
                index.refresh_threshold(rng.uniform(0.5, 2.0, size=d))
            gains = index.gains_matrix(queries)
            reference = _index_reference_gains(index, queries)
            assert np.array_equal(gains, reference), "step %d (%s)" % (step, action)

    def test_full_rebuild_fallback_matches_live_plan(self, fitted):
        """An index rebuilt from the exported artifact (a from-scratch
        plan) serves bit-identically to the incrementally patched one."""
        model, dataset = fitted
        rng = np.random.default_rng(8)
        index = ProjectedClusterIndex(model.to_artifact())
        d = index.n_dimensions
        queries = rng.normal(size=(50, d)) + dataset.data.mean(axis=0)
        index.partial_update(dataset.data[:80] + rng.normal(scale=0.01, size=(80, d)))
        index.add_cluster(np.asarray([0, 3, 7]), rng.normal(size=(10, d)))
        index.refresh_threshold(rng.uniform(0.5, 2.0, size=d))
        rebuilt = ProjectedClusterIndex(
            index.export_artifact(), allow_outliers=index.allow_outliers
        )
        assert np.array_equal(index.gains_matrix(queries), rebuilt.gains_matrix(queries))
        assert np.array_equal(index.predict(queries), rebuilt.predict(queries))

    def test_batch_matches_single_after_mutations(self, fitted):
        model, dataset = fitted
        rng = np.random.default_rng(9)
        index = ProjectedClusterIndex(model.to_artifact())
        index.partial_update(dataset.data[:50])
        index.trim_projections(0, 5)
        queries = dataset.data[rng.integers(0, dataset.data.shape[0], size=20)]
        batch = index.gains_matrix(queries)
        for row in range(queries.shape[0]):
            assert np.array_equal(batch[row], index.gains_single(queries[row]))


class TestTrainingLoopIntegration:
    def test_fit_with_engine_reports_dirty_hints_and_stays_identical(self):
        """A full fit equals the unfused naive reference (the engine's
        dirty tracking, fed by SSPC's membership-delta reports, never
        changes the optimisation trajectory)."""
        dataset = SyntheticDataGenerator(
            n_objects=240,
            n_dimensions=24,
            n_clusters=3,
            avg_cluster_dimensionality=5,
            outlier_fraction=0.05,
            random_state=6,
        ).generate(6)
        model = SSPC(n_clusters=3, m=0.5, max_iterations=8, random_state=5).fit(dataset.data)
        # The engine saw fewer column recomputations than a
        # recompute-everything loop would have issued.
        engine = None
        # Re-fit while capturing the engine (fit builds a fresh objective).
        import repro.core.objective as objective_module

        original_init = objective_module.ObjectiveFunction.__init__
        captured = []

        def capturing_init(self, *args, **kwargs):
            original_init(self, *args, **kwargs)
            captured.append(self)

        objective_module.ObjectiveFunction.__init__ = capturing_init
        try:
            refit = SSPC(n_clusters=3, m=0.5, max_iterations=8, random_state=5).fit(
                dataset.data
            )
        finally:
            objective_module.ObjectiveFunction.__init__ = original_init
        assert np.array_equal(model.labels_, refit.labels_)
        engine = captured[0]._assignment_engine
        assert engine is not None
        full_recompute_columns = engine.n_gains_calls * engine.n_clusters
        assert engine.n_columns_recomputed <= full_recompute_columns
