"""The shared histogram primitive: bounds, buckets, quantiles, merging."""

from __future__ import annotations

import math

import pytest

from repro.obs.histogram import LogHistogram, log_bounds, nearest_rank


class TestNearestRank:
    def test_matches_hand_computed_ranks(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert nearest_rank(values, 0.5) == 5.0
        assert nearest_rank(values, 0.9) == 9.0
        assert nearest_rank(values, 0.99) == 10.0
        assert nearest_rank(values, 0.0) == 1.0
        assert nearest_rank(values, 1.0) == 10.0

    def test_single_value(self):
        assert nearest_rank([7.0], 0.5) == 7.0
        assert nearest_rank([7.0], 0.99) == 7.0


class TestLogBounds:
    def test_spans_range_strictly_ascending(self):
        bounds = log_bounds(1e-4, 60.0, per_decade=5)
        assert bounds[0] <= 1e-4
        assert bounds[-1] >= 60.0
        assert all(b < a for b, a in zip(bounds, bounds[1:]))

    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            log_bounds(0.0, 1.0)
        with pytest.raises(ValueError):
            log_bounds(10.0, 1.0)


class TestLogHistogram:
    def test_rejects_unsorted_or_empty_bounds(self):
        with pytest.raises(ValueError):
            LogHistogram([])
        with pytest.raises(ValueError):
            LogHistogram([2.0, 1.0])
        LogHistogram([1.0, 2.0, 3.0])  # ascending is fine

    def test_counts_sum_min_max_exact(self):
        histogram = LogHistogram(log_bounds(0.1, 100.0))
        for value in (0.5, 1.5, 2.5, 50.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(54.5)
        assert histogram.min == 0.5
        assert histogram.max == 50.0

    def test_cumulative_uses_prometheus_le_semantics(self):
        histogram = LogHistogram([1.0, 10.0])
        histogram.observe(1.0)   # on a bound: belongs to the <= 1.0 bucket
        histogram.observe(5.0)
        histogram.observe(100.0)  # beyond the last bound: +Inf bucket
        cumulative = histogram.cumulative()
        assert cumulative == [(1.0, 1), (10.0, 2), (math.inf, 3)]

    def test_cumulative_final_bucket_equals_count(self):
        histogram = LogHistogram(log_bounds(0.001, 10.0))
        for i in range(100):
            histogram.observe(0.01 * (i + 1))
        cumulative = histogram.cumulative()
        assert cumulative[-1] == (math.inf, 100)
        counts = [count for _, count in cumulative]
        assert counts == sorted(counts)

    def test_quantiles_clamped_to_observed_range(self):
        histogram = LogHistogram(log_bounds(0.001, 1000.0))
        for _ in range(50):
            histogram.observe(5.0)
        assert histogram.quantile(0.5) == pytest.approx(5.0)
        assert histogram.quantile(0.99) == pytest.approx(5.0)
        assert histogram.quantile(0.01) == pytest.approx(5.0)

    def test_quantile_ordering(self):
        histogram = LogHistogram(log_bounds(0.1, 1000.0))
        for i in range(1, 1001):
            histogram.observe(float(i))
        p50, p90, p99 = (histogram.quantile(f) for f in (0.5, 0.9, 0.99))
        assert p50 <= p90 <= p99
        # Interpolated estimates land within the right bucket: loose but
        # meaningful bracket around the true percentiles.
        assert 300 <= p50 <= 700
        assert p99 > 800

    def test_merge_is_additive(self):
        bounds = log_bounds(0.1, 100.0)
        left, right = LogHistogram(bounds), LogHistogram(bounds)
        for value in (0.5, 5.0):
            left.observe(value)
        for value in (50.0, 0.2):
            right.observe(value)
        left.merge(right)
        assert left.count == 4
        assert left.sum == pytest.approx(55.7)
        assert left.min == 0.2
        assert left.max == 50.0

    def test_merge_requires_identical_bounds(self):
        with pytest.raises(ValueError):
            LogHistogram([1.0, 2.0]).merge(LogHistogram([1.0, 3.0]))

    def test_snapshot_shape(self):
        histogram = LogHistogram(log_bounds(0.1, 100.0))
        assert histogram.snapshot() == {"count": 0}
        histogram.observe(1.0)
        histogram.observe(3.0)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 2
        assert snapshot["mean"] == pytest.approx(2.0)
        assert snapshot["min"] == 1.0
        assert snapshot["max"] == 3.0
        assert snapshot["p50"] <= snapshot["p90"] <= snapshot["p99"]

    def test_memory_is_fixed_under_load(self):
        histogram = LogHistogram(log_bounds(0.001, 10.0))
        width = len(histogram.bucket_counts)
        for i in range(10_000):
            histogram.observe((i % 100) * 0.01 + 0.001)
        assert len(histogram.bucket_counts) == width
        assert histogram.count == 10_000
