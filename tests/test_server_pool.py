"""Compute backends: in-process, worker pool, ownership and failure paths."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.serving.artifact import load_artifact
from repro.serving.index import ProjectedClusterIndex
from repro.server.pool import (
    BackendError,
    InProcessBackend,
    WorkerPoolBackend,
    build_serving_index,
    make_backend,
)


@pytest.fixture(scope="module")
def artifact_dir(tmp_path_factory):
    from repro.core.sspc import SSPC
    from repro.data.generator import make_projected_clusters

    dataset = make_projected_clusters(
        n_objects=240,
        n_dimensions=40,
        n_clusters=3,
        avg_cluster_dimensionality=6,
        random_state=1234,
    )
    model = SSPC(n_clusters=3, m=0.5, random_state=0).fit(dataset.data)
    path = tmp_path_factory.mktemp("pool") / "model"
    model.to_artifact().save(path)
    return path


@pytest.fixture(scope="module")
def query_points():
    rng = np.random.default_rng(77)
    return rng.normal(size=(25, 40))


@pytest.fixture(scope="module")
def reference_labels(artifact_dir, query_points):
    return ProjectedClusterIndex(load_artifact(artifact_dir)).predict(query_points)


class TestBuildServingIndex:
    def test_mmap_path_is_bit_identical_to_eager(self, artifact_dir, query_points):
        eager = build_serving_index(artifact_dir, mmap_mode=None)
        mapped = build_serving_index(artifact_dir, mmap_mode="r")
        np.testing.assert_array_equal(
            mapped.predict(query_points), eager.predict(query_points)
        )
        np.testing.assert_array_equal(
            mapped.gains_matrix(query_points), eager.gains_matrix(query_points)
        )


class TestInProcessBackend:
    def test_index_requires_start(self, artifact_dir):
        backend = InProcessBackend(artifact_dir)
        with pytest.raises(BackendError):
            backend.index
        assert backend.alive_workers == 0

    def test_lifecycle_and_bit_identity(
        self, artifact_dir, query_points, reference_labels
    ):
        async def drive():
            backend = InProcessBackend(artifact_dir)
            await backend.start()
            try:
                assert backend.alive_workers == 1
                assert backend.parallelism == 1
                assert backend.describe()["workers"] == 0
                labels = await backend.predict(query_points)
                soft_labels, clusters, gains = await backend.predict_soft(
                    query_points, 2
                )
                return labels, soft_labels, clusters, gains
            finally:
                await backend.stop()

        labels, soft_labels, clusters, gains = asyncio.run(drive())
        np.testing.assert_array_equal(labels, reference_labels)
        np.testing.assert_array_equal(soft_labels, reference_labels)
        assert clusters.shape == (query_points.shape[0], 2)
        assert gains.shape == (query_points.shape[0], 2)

    def test_partial_update_persists_a_generation(
        self, artifact_dir, query_points, tmp_path
    ):
        reference = ProjectedClusterIndex(load_artifact(artifact_dir))
        expected_applied = reference.partial_update(query_points)
        gen_dir = tmp_path / "gen-000000"

        async def drive():
            backend = InProcessBackend(artifact_dir)
            await backend.start()
            try:
                return await backend.partial_update(
                    query_points, None, str(gen_dir)
                )
            finally:
                await backend.stop()

        applied, absorbed = asyncio.run(drive())
        np.testing.assert_array_equal(applied, expected_applied)
        assert absorbed >= 0
        # The persisted generation serves exactly what the folded index does.
        folded = ProjectedClusterIndex(load_artifact(gen_dir))
        np.testing.assert_array_equal(
            folded.predict(query_points), reference.predict(query_points)
        )


class TestMakeBackend:
    def test_zero_workers_is_in_process(self, artifact_dir):
        assert isinstance(make_backend(artifact_dir, n_workers=0), InProcessBackend)

    def test_positive_workers_is_a_pool(self, artifact_dir):
        backend = make_backend(artifact_dir, n_workers=2)
        assert isinstance(backend, WorkerPoolBackend)
        assert backend.n_workers == 2

    def test_pool_rejects_zero_workers(self, artifact_dir):
        with pytest.raises(ValueError):
            WorkerPoolBackend(artifact_dir, n_workers=0)


class TestWorkerPoolBackend:
    def test_predict_and_write_path(
        self, artifact_dir, query_points, reference_labels, tmp_path
    ):
        gen_dir = tmp_path / "gen-000000"
        reference = ProjectedClusterIndex(load_artifact(artifact_dir))
        expected_applied = reference.partial_update(query_points)

        async def drive():
            backend = WorkerPoolBackend(artifact_dir, n_workers=2)
            await backend.start()
            try:
                assert backend.alive_workers == 2
                assert backend.parallelism == 2
                # Several predicts so round-robin touches both workers.
                batches = [await backend.predict(query_points) for _ in range(4)]
                soft = await backend.predict_soft(query_points, 3)
                applied, absorbed = await backend.partial_update(
                    query_points, None, str(gen_dir)
                )
                await backend.reload_replicas(str(gen_dir))
                post_reload = await backend.predict(query_points)
                return batches, soft, applied, absorbed, post_reload
            finally:
                await backend.stop()

        batches, soft, applied, absorbed, post_reload = asyncio.run(drive())
        for labels in batches:
            np.testing.assert_array_equal(labels, reference_labels)
        np.testing.assert_array_equal(soft[0], reference_labels)
        np.testing.assert_array_equal(applied, expected_applied)
        assert absorbed >= 0
        # After fold + rebroadcast every worker serves the folded model.
        np.testing.assert_array_equal(post_reload, reference.predict(query_points))
        assert (gen_dir / "MANIFEST.json").exists() or gen_dir.exists()

    def test_dead_owner_is_detected_and_routed_around(
        self, artifact_dir, query_points, reference_labels
    ):
        async def drive():
            backend = WorkerPoolBackend(artifact_dir, n_workers=2)
            await backend.start()
            try:
                backend.owner.process.kill()
                backend.owner.process.join(timeout=5.0)
                # The first call routed to the dead owner poisons it...
                with pytest.raises(BackendError):
                    for _ in range(4):
                        await backend.predict(query_points)
                assert backend.owner.alive is False
                assert backend.alive_workers == 1
                assert backend.parallelism == 1
                # ...after which routing skips it and reads still work...
                labels = await backend.predict(query_points)
                # ...but the write path is gone with the owner.
                with pytest.raises(BackendError):
                    await backend.partial_update(query_points, None, None)
                return labels
            finally:
                await backend.stop()

        np.testing.assert_array_equal(asyncio.run(drive()), reference_labels)

    def test_all_workers_dead_raises(self, artifact_dir, query_points):
        async def drive():
            backend = WorkerPoolBackend(artifact_dir, n_workers=1)
            await backend.start()
            try:
                for handle in backend._handles:
                    handle.alive = False
                with pytest.raises(BackendError, match="no live workers"):
                    await backend.predict(query_points)
            finally:
                for handle in backend._handles:
                    handle.alive = True
                await backend.stop()

        asyncio.run(drive())

    def test_boot_failure_surfaces_as_backend_error(self, tmp_path):
        async def drive():
            backend = WorkerPoolBackend(tmp_path / "missing", n_workers=1)
            try:
                with pytest.raises(BackendError, match="failed to boot"):
                    await backend.start()
            finally:
                await backend.stop()

        asyncio.run(drive())
