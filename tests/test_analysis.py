"""Tests for the knowledge-requirement analysis (Figures 1-2 closed forms)."""

import numpy as np
import pytest

from repro.core.analysis import (
    grid_success_probability_labeled_dimensions,
    grid_success_probability_labeled_objects,
    knowledge_requirement_curve_dimensions,
    knowledge_requirement_curve_objects,
    relevant_dimension_retention_probability,
)
from repro.experiments.knowledge_analysis import run_figure1


class TestRetentionProbability:
    def test_bounds(self):
        value = relevant_dimension_retention_probability(5, p=0.01, variance_ratio=0.15)
        assert 0.0 <= value <= 1.0

    def test_zero_below_two_objects(self):
        assert relevant_dimension_retention_probability(1, p=0.01, variance_ratio=0.15) == 0.0

    def test_monotone_in_input_size(self):
        values = [
            relevant_dimension_retention_probability(n, p=0.01, variance_ratio=0.15)
            for n in (2, 3, 5, 10, 20)
        ]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_smaller_variance_ratio_retains_more(self):
        tight = relevant_dimension_retention_probability(5, p=0.01, variance_ratio=0.05)
        loose = relevant_dimension_retention_probability(5, p=0.01, variance_ratio=0.5)
        assert tight > loose


class TestLabeledObjectsProbability:
    def test_probability_bounds(self):
        for size in (0, 1, 2, 5, 10, 50):
            value = grid_success_probability_labeled_objects(size, relevant_fraction=0.05)
            assert 0.0 <= value <= 1.0

    def test_monotone_in_input_size(self):
        values = [
            grid_success_probability_labeled_objects(size, relevant_fraction=0.05)
            for size in range(0, 21)
        ]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_monotone_in_relevant_fraction(self):
        low = grid_success_probability_labeled_objects(5, relevant_fraction=0.01)
        high = grid_success_probability_labeled_objects(5, relevant_fraction=0.10)
        assert high >= low

    def test_paper_headline_five_inputs_at_five_percent(self):
        """The paper: at di/d = 5%, five labeled objects give ~100% success."""
        value = grid_success_probability_labeled_objects(5, relevant_fraction=0.05)
        assert value > 0.9

    def test_sharp_rise_then_plateau(self):
        """Each curve rises sharply then flattens (Section 4.5)."""
        values = np.asarray(
            [
                grid_success_probability_labeled_objects(size, relevant_fraction=0.05)
                for size in range(0, 21)
            ]
        )
        increments = np.diff(values)
        # The largest increment happens early and the tail is nearly flat.
        assert int(np.argmax(increments)) <= 6
        assert np.all(increments[-5:] < 0.02)

    def test_more_grids_help(self):
        few = grid_success_probability_labeled_objects(4, relevant_fraction=0.02, n_grids=5)
        many = grid_success_probability_labeled_objects(4, relevant_fraction=0.02, n_grids=50)
        assert many >= few

    def test_agrees_with_monte_carlo(self):
        result = run_figure1(
            input_sizes=[5, 10],
            relevant_fractions=[0.05],
            monte_carlo_trials=400,
            random_state=0,
        )
        simulated = result.monte_carlo[0.05]
        closed_form = result.probabilities[0]
        np.testing.assert_allclose(closed_form, simulated, atol=0.12)


class TestLabeledDimensionsProbability:
    def test_zero_when_not_enough_labeled_dimensions(self):
        assert grid_success_probability_labeled_dimensions(2, grid_dimensions=3) == 0.0

    def test_monotone_in_input_size(self):
        values = [
            grid_success_probability_labeled_dimensions(size, relevant_fraction=0.05)
            for size in range(3, 21)
        ]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_labeled_dimensions_better_at_low_dimensionality(self):
        """Figure 2's phenomenon: labeled dimensions work best when di/d is small."""
        low = grid_success_probability_labeled_dimensions(5, relevant_fraction=0.01)
        high = grid_success_probability_labeled_dimensions(5, relevant_fraction=0.10)
        assert low >= high

    def test_complementarity_of_input_kinds_at_one_percent(self):
        """At di/d = 1% labeled dimensions beat labeled objects for small inputs."""
        objects = grid_success_probability_labeled_objects(3, relevant_fraction=0.01)
        dimensions = grid_success_probability_labeled_dimensions(3, relevant_fraction=0.01)
        assert dimensions > objects

    def test_more_clusters_reduce_exclusivity(self):
        few = grid_success_probability_labeled_dimensions(5, relevant_fraction=0.05, n_clusters=2)
        many = grid_success_probability_labeled_dimensions(5, relevant_fraction=0.05, n_clusters=20)
        assert few >= many


class TestCurveHelpers:
    def test_objects_curve_shape(self):
        matrix = knowledge_requirement_curve_objects([0, 5, 10], [0.01, 0.05])
        assert matrix.shape == (2, 3)
        assert np.all((matrix >= 0) & (matrix <= 1))

    def test_dimensions_curve_shape(self):
        matrix = knowledge_requirement_curve_dimensions([3, 5], [0.01, 0.05, 0.10])
        assert matrix.shape == (3, 2)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            grid_success_probability_labeled_objects(5, relevant_fraction=0.0)
        with pytest.raises(ValueError):
            grid_success_probability_labeled_objects(5, p=0.0)
