"""The reliability layer: atomic writes, integrity checks, fault injection.

Covers the durability contract end to end: checksum primitives, the
temp + fsync + rename write path (including kill-at-every-write-syscall
via seeded fault plans), seeded corruption fuzzing over every durable
payload, checkpoint generation rollback, the fault-tolerant process
executor, and the chaos scenario's plumbing.
"""

from __future__ import annotations

import json
import multiprocessing

import numpy as np
import pytest

from repro.reliability import (
    CHECKSUM_KEY,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedFault,
    IntegrityError,
    TEMP_MARKER,
    active,
    array_checksum,
    atomic_write_bytes,
    atomic_write_dir,
    atomic_write_json,
    checksum_arrays,
    read_json,
    remove_stale_temps,
    require_key,
    stamp_checksum,
    verify_array_checksums,
    verify_stamp,
)
from repro.utils.executor import ExecutorTaskError, ProcessExecutor, TaskFault

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


# ---------------------------------------------------------------------------
# integrity primitives
# ---------------------------------------------------------------------------


class TestIntegrity:
    def test_array_checksum_covers_dtype_shape_and_bytes(self):
        base = np.arange(6, dtype=np.float64)
        assert array_checksum(base) == array_checksum(base.copy())
        assert array_checksum(base) != array_checksum(base.astype(np.float32))
        assert array_checksum(base) != array_checksum(base.reshape(2, 3))
        mutated = base.copy()
        mutated[3] += 1e-12
        assert array_checksum(base) != array_checksum(mutated)

    def test_checksum_is_layout_independent(self):
        square = np.arange(9, dtype=np.float64).reshape(3, 3)
        assert array_checksum(square) == array_checksum(np.asfortranarray(square))

    def test_verify_names_the_damaged_array(self):
        arrays = {"good": np.ones(3), "bad": np.zeros(3)}
        checksums = checksum_arrays(arrays)
        arrays["bad"][1] = 7.0
        with pytest.raises(IntegrityError, match="bad") as excinfo:
            verify_array_checksums(arrays, checksums, path="store")
        assert excinfo.value.payload == "bad"
        assert excinfo.value.path == "store"

    def test_verify_flags_recorded_array_gone_missing(self):
        checksums = checksum_arrays({"orphan": np.ones(2)})
        with pytest.raises(IntegrityError, match="orphan"):
            verify_array_checksums({}, checksums, path="store")
        # The reverse — an extra array with no recorded checksum — is a
        # legacy payload and verifies trivially.
        verify_array_checksums({"extra": np.ones(2)}, {}, path="store")

    def test_stamp_round_trip_and_tamper_detection(self):
        payload = stamp_checksum({"a": 1, "nested": {"b": [1, 2]}})
        assert CHECKSUM_KEY in payload
        assert verify_stamp(dict(payload), path="p") is True
        tampered = dict(payload)
        tampered["a"] = 2
        with pytest.raises(IntegrityError):
            verify_stamp(tampered, path="p")

    def test_unstamped_payload_is_legacy_accepted(self):
        assert verify_stamp({"a": 1}, path="p") is False

    def test_require_key_names_path_and_key(self):
        assert require_key({"k": 5}, "k", path="f", kind="field") == 5
        with pytest.raises(IntegrityError, match="missing"):
            require_key({}, "k", path="f", kind="field")


# ---------------------------------------------------------------------------
# atomic write path
# ---------------------------------------------------------------------------


class TestAtomicWrites:
    def test_json_round_trip_strips_the_stamp(self, tmp_path):
        target = tmp_path / "payload.json"
        atomic_write_json(target, {"x": 1})
        on_disk = json.loads(target.read_text())
        assert CHECKSUM_KEY in on_disk
        assert read_json(target) == {"x": 1}

    def test_unparsable_json_raises_integrity_error(self, tmp_path):
        target = tmp_path / "broken.json"
        atomic_write_bytes(target, b"{not json")
        with pytest.raises(IntegrityError):
            read_json(target)

    def test_failed_write_leaves_no_temp_debris(self, tmp_path):
        target = tmp_path / "out.bin"
        plan = FaultPlan(specs=[FaultSpec(op="write", index=0, kind="enospc", after_bytes=2)])
        with active(plan):
            with pytest.raises(OSError):
                atomic_write_bytes(target, b"payload")
        assert not target.exists()
        # ENOSPC is an *orderly* failure: the temp file is cleaned up.
        assert remove_stale_temps(tmp_path) == 0

    def test_injected_crash_leaves_debris_for_recovery_sweep(self, tmp_path):
        target = tmp_path / "out.bin"
        plan = FaultPlan(specs=[FaultSpec(op="write", index=0, kind="torn", after_bytes=3)])
        with active(plan):
            with pytest.raises(InjectedCrash):
                atomic_write_bytes(target, b"payload")
        assert not target.exists()
        debris = [p for p in tmp_path.iterdir() if TEMP_MARKER in p.name]
        assert debris, "a simulated kill must leave the partial temp file behind"
        assert remove_stale_temps(tmp_path) == len(debris)
        assert list(tmp_path.iterdir()) == []

    def test_atomic_write_dir_commits_as_a_unit(self, tmp_path):
        target = tmp_path / "bundle"
        with atomic_write_dir(target) as staging:
            atomic_write_bytes(staging / "a.bin", b"a")
            atomic_write_bytes(staging / "b.bin", b"b")
            assert not target.exists()  # nothing visible before the rename
        assert (target / "a.bin").read_bytes() == b"a"
        assert (target / "b.bin").read_bytes() == b"b"

    def test_atomic_write_dir_replaces_previous_content_atomically(self, tmp_path):
        target = tmp_path / "bundle"
        with atomic_write_dir(target) as staging:
            atomic_write_bytes(staging / "v.bin", b"one")
        with atomic_write_dir(target) as staging:
            atomic_write_bytes(staging / "v.bin", b"two")
        assert (target / "v.bin").read_bytes() == b"two"

    def test_atomic_write_dir_failure_keeps_previous_content(self, tmp_path):
        target = tmp_path / "bundle"
        with atomic_write_dir(target) as staging:
            atomic_write_bytes(staging / "v.bin", b"one")
        with pytest.raises(RuntimeError, match="boom"):
            with atomic_write_dir(target) as staging:
                atomic_write_bytes(staging / "v.bin", b"two")
                raise RuntimeError("boom")
        assert (target / "v.bin").read_bytes() == b"one"


class TestKillAtEveryWriteSyscall:
    """Crash at *each* write-path operation of a save; atomicity must hold."""

    def _probe_trace(self, artifact, tmp_path):
        plan = FaultPlan()
        with active(plan):
            artifact.save(tmp_path / "probe")
        assert plan.operations, "the save path must be observable"
        return plan.operations

    def test_artifact_save_is_atomic_under_crash_at_every_op(self, fitted_sspc, tmp_path):
        from repro.serving.artifact import load_artifact

        artifact = fitted_sspc.to_artifact()
        trace = self._probe_trace(artifact, tmp_path)
        target = tmp_path / "model"
        artifact.save(target)
        baseline = load_artifact(target)
        for position, (op, _) in enumerate(trace):
            occurrence = sum(1 for other, _ in trace[:position] if other == op)
            plan = FaultPlan(specs=[FaultSpec(op=op, index=occurrence, kind="crash")])
            with active(plan):
                with pytest.raises((InjectedFault, OSError)):
                    artifact.save(target)
            assert plan.fired, "op %d (%s) never fired" % (position, op)
            # The committed artifact must load intact after every crash
            # point: either the old or the (fully) new content.
            survivor = load_artifact(target)
            np.testing.assert_array_equal(survivor.labels, baseline.labels)
            assert survivor.n_objects == baseline.n_objects


# ---------------------------------------------------------------------------
# seeded corruption fuzzing over every durable payload
# ---------------------------------------------------------------------------


def _mutate(path, seed):
    """Apply one seeded bit flip or truncation; return a description."""
    rng = np.random.default_rng(seed)
    data = bytearray(path.read_bytes())
    offset = int(rng.integers(len(data)))
    if rng.integers(2) and offset > 0:
        path.write_bytes(bytes(data[:offset]))
        return "truncate@%d" % offset
    bit = int(rng.integers(8))
    data[offset] ^= 1 << bit
    path.write_bytes(bytes(data))
    return "bitflip@%d.%d" % (offset, bit)


class TestCorruptionFuzz:
    """No seeded mutation of a durable payload may alter loaded state silently."""

    @pytest.mark.parametrize("payload", ["manifest.json", "arrays.npz"])
    @pytest.mark.parametrize("seed", range(6))
    def test_artifact_mutations_never_pass_silently(self, fitted_sspc, tmp_path, payload, seed):
        from repro.serving.artifact import load_artifact

        artifact = fitted_sspc.to_artifact()
        target = tmp_path / "model"
        artifact.save(target)
        baseline = load_artifact(target)
        mutation = _mutate(target / payload, seed)
        try:
            survivor = load_artifact(target)
        except ValueError:
            return  # typed detection (IntegrityError is a ValueError)
        # The mutation hit a dead byte (zip padding etc.): loaded state
        # must be bit-identical to the original — anything else is the
        # silent corruption the checksums exist to rule out.
        np.testing.assert_array_equal(
            survivor.labels, baseline.labels, err_msg="silent corruption via %s" % mutation
        )
        for ours, theirs in zip(survivor.clusters, baseline.clusters):
            np.testing.assert_array_equal(ours.mean, theirs.mean)
            np.testing.assert_array_equal(ours.variance, theirs.variance)

    @pytest.mark.parametrize("seed", range(4))
    def test_single_generation_checkpoint_corruption_is_typed(self, fitted_sspc, tmp_path, seed):
        """With no rollback target, corruption must raise, never half-load."""
        from repro.stream.checkpoint import ARRAYS_NAME, STATE_NAME, resolve_checkpoint_dir
        from repro.stream.engine import StreamConfig, StreamingSSPC

        rng = np.random.default_rng(seed)
        engine = StreamingSSPC(fitted_sspc.to_artifact(), config=StreamConfig(seed=7))
        engine.process_batch(rng.normal(size=(40, engine.index.n_dimensions)))
        assert engine.n_batches == 1
        checkpoint = tmp_path / ("ck-%d" % seed)
        engine.checkpoint(checkpoint)
        generation = resolve_checkpoint_dir(checkpoint)
        victim = generation / (STATE_NAME if seed % 2 else ARRAYS_NAME)
        _mutate(victim, seed)
        with pytest.raises((IntegrityError, ValueError)):
            StreamingSSPC.restore(checkpoint)

    @pytest.mark.parametrize("seed", range(4))
    def test_store_record_corruption_is_quarantined_not_skipped(self, tmp_path, seed):
        from repro.bench.scenario import SCHEMA_VERSION, TaskSpec
        from repro.bench.store import RunStore

        store = RunStore(tmp_path / "run")
        task = TaskSpec(name="t0", params={"seed": seed})
        record = {
            "schema_version": SCHEMA_VERSION,
            "scenario_id": "demo",
            "task": "t0",
            "config_hash": task.config_hash("demo"),
            "params": dict(task.params),
            "seconds": 0.1,
            "payload": {"value": 1},
        }
        path = store.write_record(record)
        assert store.load_record("demo", task) is not None
        _mutate(path, seed)
        reloaded = RunStore(tmp_path / "run")
        loaded = reloaded.load_record("demo", task)
        if loaded is not None:
            assert loaded == record  # dead-byte mutation: content intact
            assert reloaded.n_quarantined == 0
        else:
            assert reloaded.n_quarantined == 1
            entry = reloaded.quarantined[0]
            assert entry["payload"] == "demo/t0"
            assert not path.exists()  # moved aside, not silently skipped
            assert entry["quarantined_to"]


# ---------------------------------------------------------------------------
# checkpoint generations: commit point + rollback
# ---------------------------------------------------------------------------


class TestCheckpointRecovery:
    def _engine(self, fitted_sspc, seed=7):
        from repro.stream.engine import StreamConfig, StreamingSSPC

        return StreamingSSPC(fitted_sspc.to_artifact(), config=StreamConfig(seed=seed))

    def test_mid_save_kill_resumes_from_previous_generation(self, fitted_sspc, tmp_path):
        from repro.stream.engine import StreamingSSPC

        rng = np.random.default_rng(0)
        n_dim = fitted_sspc.to_artifact().n_dimensions
        batches = [rng.normal(size=(40, n_dim)) for _ in range(3)]
        engine = self._engine(fitted_sspc)
        checkpoint = tmp_path / "ck"
        engine.process_batch(batches[0])
        engine.checkpoint(checkpoint)
        engine.process_batch(batches[1])
        plan = FaultPlan(specs=[FaultSpec(op="fsync", index=1, kind="crash")])
        with active(plan):
            with pytest.raises(InjectedFault):
                engine.checkpoint(checkpoint)
        assert plan.fired
        restored = StreamingSSPC.restore(checkpoint)
        assert restored.n_batches == 1  # the last *committed* boundary
        # Continuing from the restore is bit-identical to never crashing.
        reference = self._engine(fitted_sspc)
        for batch in batches:
            expected = reference.process_batch(batch)
        for batch in batches[1:]:
            actual = restored.process_batch(batch)
        np.testing.assert_array_equal(actual.labels, expected.labels)

    def test_rollback_when_newest_generation_is_damaged(self, fitted_sspc, tmp_path):
        from repro.stream.checkpoint import ARRAYS_NAME, resolve_checkpoint_dir
        from repro.stream.engine import StreamingSSPC

        rng = np.random.default_rng(1)
        engine = self._engine(fitted_sspc)
        n_dim = engine.index.n_dimensions
        checkpoint = tmp_path / "ck"
        engine.process_batch(rng.normal(size=(40, n_dim)))
        engine.checkpoint(checkpoint)
        engine.process_batch(rng.normal(size=(40, n_dim)))
        engine.checkpoint(checkpoint)
        newest = resolve_checkpoint_dir(checkpoint)
        (newest / ARRAYS_NAME).write_bytes(b"rotten")
        restored = StreamingSSPC.restore(checkpoint)
        assert restored.n_batches == 1  # rolled back one generation

    def test_generations_are_pruned(self, fitted_sspc, tmp_path):
        from repro.stream.checkpoint import GENERATION_PREFIX, RETAIN_GENERATIONS

        rng = np.random.default_rng(2)
        engine = self._engine(fitted_sspc)
        n_dim = engine.index.n_dimensions
        checkpoint = tmp_path / "ck"
        for _ in range(RETAIN_GENERATIONS + 3):
            engine.process_batch(rng.normal(size=(40, n_dim)))
            engine.checkpoint(checkpoint)
        generations = [p for p in checkpoint.iterdir() if p.name.startswith(GENERATION_PREFIX)]
        assert len(generations) == RETAIN_GENERATIONS


# ---------------------------------------------------------------------------
# fault plans
# ---------------------------------------------------------------------------


class TestFaultPlan:
    TRACE = [("write", "a"), ("fsync", "a"), ("rename", "a"), ("write", "b"), ("fsync", "b")]

    def test_seeding_is_deterministic(self):
        first = FaultPlan.seeded(11, self.TRACE, n_faults=2)
        second = FaultPlan.seeded(11, self.TRACE, n_faults=2)
        assert first.specs == second.specs
        assert FaultPlan.seeded(12, self.TRACE, n_faults=2).specs != first.specs

    def test_kinds_are_normalized_per_operation(self):
        for seed in range(40):
            plan = FaultPlan.seeded(seed, self.TRACE, n_faults=3)
            for spec in plan.specs:
                if spec.op == "fsync":
                    assert spec.kind == "crash"
                elif spec.op == "rename":
                    assert spec.kind in ("rename_blocked", "crash")
                else:
                    assert spec.kind in ("torn", "crash", "enospc")

    def test_fires_at_the_exact_occurrence(self):
        plan = FaultPlan(specs=[FaultSpec(op="write", index=1, kind="crash")])
        assert plan._observe("write", "first") is None
        assert plan._observe("fsync", "other") is None
        assert plan._observe("write", "second") is not None
        assert [spec.index for spec in plan.fired] == [1]

    def test_empty_trace_is_refused(self):
        with pytest.raises(ValueError):
            FaultPlan.seeded(1, [])

    def test_task_fault_latch_fires_once(self, tmp_path):
        plan = FaultPlan(specs=[FaultSpec(op="task", index=3, kind="stall", seconds=0.0)])
        assert plan.apply_task_fault(3, tmp_path) is True
        assert plan.apply_task_fault(3, tmp_path) is False  # latched
        assert plan.apply_task_fault(1, tmp_path) is False  # not planned


# ---------------------------------------------------------------------------
# fault-tolerant process executor
# ---------------------------------------------------------------------------


def _raise_value_error(item):
    raise ValueError("task %r is unhappy" % (item,))


def _kill_self_once(item):
    index, latch_dir = item
    plan = FaultPlan(specs=[FaultSpec(op="task", index=0, kind="sigkill")])
    plan.apply_task_fault(index, latch_dir)
    return index + 100


def _kill_if_index_one(item):
    index, latch_dir = item
    plan = FaultPlan(specs=[FaultSpec(op="task", index=1, kind="sigkill")])
    plan.apply_task_fault(index, latch_dir)
    return index + 100


def _sleep_forever(item):
    import time

    time.sleep(60.0)
    return item


@pytest.mark.skipif(not HAS_FORK, reason="needs fork")
class TestProcessExecutorFaults:
    def test_deterministic_error_yields_fault_with_original_exception(self):
        executor = ProcessExecutor(2)
        outcomes = dict(executor.imap_unordered(_raise_value_error, [1, 2]))
        assert all(isinstance(outcome, TaskFault) for outcome in outcomes.values())
        fault = outcomes[0]
        assert fault.kind == "error"
        assert isinstance(fault.error, ValueError)
        assert fault.attempts == 1

    def test_map_reraises_the_original_exception(self):
        with pytest.raises(ValueError, match="unhappy"):
            ProcessExecutor(2).map(_raise_value_error, [1])

    def test_sigkilled_worker_is_retried_and_recovers(self, tmp_path):
        executor = ProcessExecutor(2, max_retries=2, retry_backoff=0.02)
        items = [(index, str(tmp_path)) for index in range(3)]
        results = executor.map(_kill_self_once, items)
        assert results == [100, 101, 102]

    def test_crash_without_retry_budget_is_a_crash_fault(self, tmp_path):
        executor = ProcessExecutor(2, max_retries=0)
        items = [(0, str(tmp_path))]
        with pytest.raises(ExecutorTaskError, match="crash"):
            executor.map(_kill_self_once, items)

    def test_timeout_kills_and_reports(self):
        executor = ProcessExecutor(1, task_timeout=0.3, max_retries=0)
        outcomes = dict(executor.imap_unordered(_sleep_forever, ["stuck"]))
        fault = outcomes[0]
        assert isinstance(fault, TaskFault)
        assert fault.kind == "timeout"

    def test_healthy_tasks_unaffected_by_a_faulty_sibling(self, tmp_path):
        """With no retry budget, only the faulty task fails — crash isolation."""
        executor = ProcessExecutor(3, max_retries=0)
        items = [(index, str(tmp_path)) for index in range(4)]
        outcomes = dict(executor.imap_unordered(_kill_if_index_one, items))
        assert isinstance(outcomes[1], TaskFault)
        assert outcomes[1].kind == "crash"
        for index in (0, 2, 3):
            assert outcomes[index] == index + 100

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ProcessExecutor(1, task_timeout=0.0)
        with pytest.raises(ValueError):
            ProcessExecutor(1, max_retries=-1)
        with pytest.raises(ValueError):
            ProcessExecutor(1, retry_backoff=-0.5)


# ---------------------------------------------------------------------------
# durability lint + chaos plumbing
# ---------------------------------------------------------------------------


class TestDurabilityLint:
    def test_durability_paths_are_clean(self):
        import importlib.util
        from pathlib import Path

        tool = Path(__file__).resolve().parents[1] / "tools" / "check_durability.py"
        spec = importlib.util.spec_from_file_location("check_durability", tool)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.run() == 0

    def test_lint_catches_a_bare_write(self, tmp_path):
        import importlib.util
        from pathlib import Path

        tool = Path(__file__).resolve().parents[1] / "tools" / "check_durability.py"
        spec = importlib.util.spec_from_file_location("check_durability_2", tool)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        bad = tmp_path / "bad.py"
        bad.write_text(
            "def save(path, data):\n"
            "    with open(path, 'w') as handle:\n"
            "        handle.write(data)\n"
            "    path.write_bytes(b'x')\n"
        )
        violations = list(module.scan_file(bad))
        assert len(violations) == 2


class TestChaosScenario:
    def test_single_seed_durability_arms_pass(self, tmp_path):
        """A miniature chaos task: recovery + corruption arms, gated hard."""
        from repro.bench.chaos import chaos_aggregate, chaos_execute

        params = {
            "n_dimensions": 16,
            "n_clusters": 3,
            "cluster_dim": 4,
            "batch_size": 50,
            "n_batches": 4,
            "warmup": 240,
            "fit_iterations": 5,
            "n_write_faults": 1,
            "n_corruptions": 2,
            "executor_arm": False,  # covered directly above, keeps this fast
            "seed": 1234,
        }
        payload = chaos_execute(params)
        outcome = chaos_aggregate([payload])
        metrics = outcome["metrics"]
        assert metrics["recovered_bit_identical"] == 1.0
        assert metrics["silent_corruptions"] == 0.0
        assert metrics["corruption_detection_rate"] == 1.0
        assert payload["write_faults"][0]["fired"], "the planned fault must fire"

    def test_plan_is_deterministic_and_json_safe(self):
        from repro.bench import registry

        scenario = registry.get("chaos")
        first = scenario.build_tasks("smoke")
        second = scenario.build_tasks("smoke")
        assert [t.config_hash("chaos") for t in first] == [
            t.config_hash("chaos") for t in second
        ]
        for task in first:
            json.dumps(dict(task.params))
