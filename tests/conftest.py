"""Shared fixtures for the test suite.

Fixtures generate small synthetic datasets (tens to a few hundred
objects) so the full suite runs in seconds while still exercising the
projected-cluster structure the algorithms are built for.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.objective import ObjectiveFunction
from repro.core.thresholds import VarianceRatioThreshold
from repro.data.generator import make_projected_clusters


@pytest.fixture(scope="session")
def small_dataset():
    """A small, easy projected-cluster dataset (3 clusters, 40 dims)."""
    return make_projected_clusters(
        n_objects=240,
        n_dimensions=40,
        n_clusters=3,
        avg_cluster_dimensionality=6,
        random_state=1234,
    )


@pytest.fixture(scope="session")
def tiny_dataset():
    """A very small dataset for fast unit tests of core components."""
    return make_projected_clusters(
        n_objects=90,
        n_dimensions=20,
        n_clusters=3,
        avg_cluster_dimensionality=4,
        random_state=7,
    )


@pytest.fixture(scope="session")
def low_dim_dataset():
    """Extremely low-dimensionality dataset (relevant dims = 2% of d)."""
    return make_projected_clusters(
        n_objects=150,
        n_dimensions=500,
        n_clusters=5,
        avg_cluster_dimensionality=10,
        random_state=42,
    )


@pytest.fixture(scope="session")
def outlier_dataset():
    """Dataset with 15% generated outliers."""
    return make_projected_clusters(
        n_objects=300,
        n_dimensions=40,
        n_clusters=3,
        avg_cluster_dimensionality=8,
        outlier_fraction=0.15,
        random_state=99,
    )


@pytest.fixture(scope="session")
def fitted_sspc(small_dataset):
    """An SSPC estimator fitted on the small dataset (for serving tests)."""
    from repro.core.sspc import SSPC

    return SSPC(n_clusters=3, m=0.5, random_state=0).fit(small_dataset.data)


@pytest.fixture(scope="session")
def artifact_on_disk(fitted_sspc, tmp_path_factory):
    """The fitted model saved as an artifact directory (for daemon tests)."""
    path = tmp_path_factory.mktemp("server-artifact") / "model"
    fitted_sspc.to_artifact().save(path)
    return path


@pytest.fixture()
def objective_small(small_dataset):
    """An ObjectiveFunction fitted on the small dataset with m = 0.5."""
    return ObjectiveFunction(small_dataset.data, VarianceRatioThreshold(m=0.5))


@pytest.fixture()
def rng():
    """A deterministic numpy Generator for per-test randomness."""
    return np.random.default_rng(2024)
