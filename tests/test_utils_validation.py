"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_array_2d,
    check_cluster_count,
    check_fraction,
    check_index_sequence,
    check_membership_labels,
    check_positive_int,
    check_probability,
    check_random_partition_sizes,
)


class TestCheckArray2d:
    def test_list_of_lists_converted(self):
        array = check_array_2d([[1, 2], [3, 4]])
        assert array.shape == (2, 2)
        assert array.dtype == float

    def test_1d_promoted_to_row(self):
        assert check_array_2d([1.0, 2.0, 3.0]).shape == (1, 3)

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            check_array_2d(np.zeros((2, 2, 2)))

    def test_min_rows_enforced(self):
        with pytest.raises(ValueError):
            check_array_2d([[1, 2]], min_rows=2)

    def test_min_cols_enforced(self):
        with pytest.raises(ValueError):
            check_array_2d([[1], [2]], min_cols=2)

    def test_nan_rejected_by_default(self):
        with pytest.raises(ValueError):
            check_array_2d([[1.0, np.nan]])

    def test_nan_allowed_when_requested(self):
        array = check_array_2d([[1.0, np.nan]], allow_nan=True)
        assert np.isnan(array[0, 1])

    def test_output_contiguous(self):
        array = check_array_2d(np.asfortranarray(np.ones((4, 3))))
        assert array.flags["C_CONTIGUOUS"]


class TestScalarChecks:
    def test_positive_int_accepts_valid(self):
        assert check_positive_int(3, name="x") == 3

    def test_positive_int_rejects_zero_with_default_minimum(self):
        with pytest.raises(ValueError):
            check_positive_int(0, name="x")

    def test_positive_int_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, name="x")

    def test_positive_int_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.5, name="x")

    def test_cluster_count_cannot_exceed_objects(self):
        with pytest.raises(ValueError):
            check_cluster_count(11, 10)

    def test_cluster_count_ok(self):
        assert check_cluster_count(3, 10) == 3

    def test_fraction_bounds_inclusive(self):
        assert check_fraction(0.0, name="f") == 0.0
        assert check_fraction(1.0, name="f") == 1.0

    def test_fraction_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_fraction(0.0, name="f", inclusive_low=False)
        with pytest.raises(ValueError):
            check_fraction(1.0, name="f", inclusive_high=False)

    def test_probability_strictly_inside_unit_interval(self):
        assert check_probability(0.05, name="p") == 0.05
        with pytest.raises(ValueError):
            check_probability(0.0, name="p")
        with pytest.raises(ValueError):
            check_probability(1.0, name="p")


class TestLabelAndIndexChecks:
    def test_membership_labels_accept_outliers(self):
        labels = check_membership_labels([0, 1, -1, 2], 4)
        np.testing.assert_array_equal(labels, [0, 1, -1, 2])

    def test_membership_labels_length_mismatch(self):
        with pytest.raises(ValueError):
            check_membership_labels([0, 1], 3)

    def test_membership_labels_reject_below_minus_one(self):
        with pytest.raises(ValueError):
            check_membership_labels([0, -2], 2)

    def test_membership_labels_reject_non_integer(self):
        with pytest.raises(ValueError):
            check_membership_labels([0.5, 1.0], 2)

    def test_membership_labels_accept_integer_valued_floats(self):
        labels = check_membership_labels(np.asarray([0.0, 1.0]), 2)
        assert labels.dtype.kind == "i"

    def test_index_sequence_bounds(self):
        with pytest.raises(ValueError):
            check_index_sequence([0, 5], 5)

    def test_index_sequence_duplicates_rejected(self):
        with pytest.raises(ValueError):
            check_index_sequence([1, 1], 5)

    def test_index_sequence_duplicates_allowed_when_disabled(self):
        result = check_index_sequence([1, 1], 5, unique=False)
        assert list(result) == [1, 1]

    def test_index_sequence_empty_handling(self):
        assert check_index_sequence([], 5).size == 0
        with pytest.raises(ValueError):
            check_index_sequence([], 5, allow_empty=False)

    def test_partition_sizes_positive(self):
        with pytest.raises(ValueError):
            check_random_partition_sizes([3, 0, 2])

    def test_partition_sizes_total(self):
        with pytest.raises(ValueError):
            check_random_partition_sizes([3, 3], total=7)
        np.testing.assert_array_equal(check_random_partition_sizes([3, 4], total=7), [3, 4])
