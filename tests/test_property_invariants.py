"""Cross-module property-based tests on core invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dimension_selection import select_dimensions
from repro.core.model import ClusteringResult
from repro.core.objective import ObjectiveFunction
from repro.core.sspc import SSPC
from repro.core.thresholds import ChiSquareThreshold, VarianceRatioThreshold
from repro.data.generator import make_projected_clusters
from repro.evaluation import adjusted_rand_index


class TestObjectiveInvariants:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 5000), m=st.floats(0.2, 0.95))
    def test_phi_of_selected_dimensions_is_non_negative(self, seed, m):
        """phi_ij > 0 for every selected dimension (threshold exceeds dispersion)."""
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(50, 6)) * rng.uniform(0.5, 2.0, size=6)
        objective = ObjectiveFunction(data, VarianceRatioThreshold(m=m))
        members = rng.choice(50, size=int(rng.integers(3, 25)), replace=False)
        selected = select_dimensions(objective, members)
        if selected.size:
            scores = objective.phi_ij_all(members)
            assert np.all(scores[selected] > 0)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_phi_scale_invariance_of_selection(self, seed):
        """Scaling every column by a constant leaves SelectDim unchanged."""
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(40, 5))
        members = rng.choice(40, size=10, replace=False)
        base = select_dimensions(ObjectiveFunction(data, VarianceRatioThreshold(m=0.5)), members)
        scaled = select_dimensions(
            ObjectiveFunction(data * 37.5, VarianceRatioThreshold(m=0.5)), members
        )
        np.testing.assert_array_equal(base, scaled)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 5000), p=st.floats(0.005, 0.3))
    def test_chi_square_threshold_below_global_variance(self, seed, p):
        """The p-scheme threshold never exceeds the global variance for p < 0.5."""
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(60, 4)) * rng.uniform(0.1, 5.0, size=4)
        threshold = ChiSquareThreshold(p=p).fit(data)
        for size in (3, 10, 50):
            assert np.all(threshold.values(size) <= threshold.global_variance + 1e-12)


class TestResultInvariants:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2000), k=st.integers(2, 4))
    def test_sspc_output_is_valid_partition(self, seed, k):
        dataset = make_projected_clusters(
            n_objects=80,
            n_dimensions=16,
            n_clusters=k,
            avg_cluster_dimensionality=3,
            random_state=seed,
        )
        model = SSPC(n_clusters=k, m=0.5, max_iterations=6, patience=2, random_state=seed)
        model.fit(dataset.data)
        labels = model.labels_
        # Valid label range.
        assert labels.min() >= -1 and labels.max() < k
        # Clusters in the result object partition the non-outlier objects.
        result = model.result_
        member_union = np.concatenate([c.members for c in result.clusters]) if result.clusters else np.empty(0)
        assert len(set(member_union.tolist())) == member_union.size
        np.testing.assert_array_equal(result.labels(), labels)
        # Selected dimensions are valid indices.
        for dims in model.selected_dimensions_:
            if dims.size:
                assert dims.min() >= 0 and dims.max() < dataset.n_dimensions

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 5000), n=st.integers(4, 30))
    def test_without_objects_never_increases_cluster_sizes(self, seed, n):
        rng = np.random.default_rng(seed)
        labels = rng.integers(-1, 3, size=n)
        result = ClusteringResult.from_labels(labels.tolist(), n_dimensions=4, n_clusters=3)
        drop = rng.choice(n, size=min(3, n), replace=False)
        stripped = result.without_objects(drop.tolist())
        for before, after in zip(result.clusters, stripped.clusters):
            assert after.size <= before.size


class TestAriInvariant:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_merging_true_clusters_lowers_ari(self, seed):
        """Collapsing two real clusters into one cannot raise the ARI above 1."""
        true = np.repeat(np.arange(3), 10)
        merged = true.copy()
        merged[merged == 2] = 1
        assert adjusted_rand_index(true, merged) < 1.0
        assert adjusted_rand_index(true, true) == pytest.approx(1.0)
