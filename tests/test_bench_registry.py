"""Registry completeness and scenario-declaration invariants."""

import json
from pathlib import Path

import pytest

from repro.bench import registry
from repro.bench.config import SCALES
from repro.bench.scenario import MetricSpec, TaskSpec

BENCHMARKS_DIR = Path(__file__).resolve().parents[1] / "benchmarks"


class TestCompleteness:
    def test_every_benchmark_script_has_a_registered_scenario(self):
        """Each benchmarks/bench_*.py figure maps to a scenario id."""
        if not BENCHMARKS_DIR.is_dir():
            pytest.skip("benchmarks/ not present in this checkout")
        expected = {
            path.stem[len("bench_"):]
            for path in BENCHMARKS_DIR.glob("bench_*.py")
        }
        assert expected, "no benchmark scripts found"
        missing = expected - set(registry.ids())
        assert not missing, "benchmark scripts without a registered scenario: %s" % sorted(missing)

    def test_all_scenarios_registered(self):
        assert len(registry.ids()) >= 14

    def test_groups_cover_the_ci_matrix(self):
        assert registry.groups() == [
            "accuracy",
            "chaos",
            "knowledge",
            "perf",
            "robustness",
            "serving_load",
            "stream",
        ]


class TestScenarioDeclarations:
    @pytest.fixture(params=sorted(registry.ids()))
    def scenario(self, request):
        return registry.get(request.param)

    def test_declares_every_scale(self, scenario):
        for scale in SCALES:
            assert scenario.config_for(scale) is not None

    def test_plans_nonempty_unique_json_safe_tasks(self, scenario):
        for scale in SCALES:
            tasks = scenario.build_tasks(scale)
            assert tasks, "scenario %s plans no tasks at %s" % (scenario.scenario_id, scale)
            names = [task.name for task in tasks]
            assert len(set(names)) == len(names)
            for task in tasks:
                json.dumps(dict(task.params))  # must be JSON-serializable

    def test_planning_is_deterministic(self, scenario):
        first = scenario.build_tasks("smoke")
        second = scenario.build_tasks("smoke")
        assert [t.config_hash(scenario.scenario_id) for t in first] == [
            t.config_hash(scenario.scenario_id) for t in second
        ]

    def test_declares_metric_specs(self, scenario):
        assert scenario.metrics, "scenario %s declares no metrics" % scenario.scenario_id
        for spec in scenario.metrics:
            assert isinstance(spec, MetricSpec)


class TestConfigHash:
    def test_hash_changes_with_params(self):
        base = TaskSpec(name="t", params={"a": 1, "seed": 3})
        changed = TaskSpec(name="t", params={"a": 2, "seed": 3})
        assert base.config_hash("s") != changed.config_hash("s")

    def test_hash_stable_under_key_order(self):
        first = TaskSpec(name="t", params={"a": 1, "b": 2})
        second = TaskSpec(name="t", params={"b": 2, "a": 1})
        assert first.config_hash("s") == second.config_hash("s")

    def test_hash_depends_on_scenario_and_task_name(self):
        task = TaskSpec(name="t", params={"a": 1})
        other = TaskSpec(name="u", params={"a": 1})
        assert task.config_hash("s1") != task.config_hash("s2")
        assert task.config_hash("s1") != other.config_hash("s1")

    def test_metric_spec_validation(self):
        with pytest.raises(ValueError):
            MetricSpec("x", kind="nope")
        with pytest.raises(ValueError):
            MetricSpec("x", direction="sideways")
