"""Tests for the k-means / k-medoids substrates."""

import numpy as np
import pytest

from repro.baselines import KMeans, KMedoids
from repro.evaluation import adjusted_rand_index


@pytest.fixture(scope="module")
def blobs():
    """Three well-separated full-space Gaussian blobs."""
    rng = np.random.default_rng(8)
    centers = np.asarray([[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]])
    data = np.vstack([rng.normal(center, 0.8, size=(40, 2)) for center in centers])
    labels = np.repeat(np.arange(3), 40)
    return data, labels


class TestKMeans:
    def test_recovers_blobs(self, blobs):
        data, labels = blobs
        model = KMeans(n_clusters=3, random_state=0).fit(data)
        assert adjusted_rand_index(labels, model.labels_) > 0.95

    def test_inertia_decreases_with_more_clusters(self, blobs):
        data, _ = blobs
        one = KMeans(n_clusters=1, random_state=0).fit(data).inertia_
        three = KMeans(n_clusters=3, random_state=0).fit(data).inertia_
        assert three < one

    def test_result_object(self, blobs):
        data, _ = blobs
        model = KMeans(n_clusters=3, random_state=1).fit(data)
        assert model.result_.algorithm == "KMeans"
        assert model.result_.n_clusters == 3
        np.testing.assert_array_equal(model.result_.labels(), model.labels_)

    def test_centers_shape(self, blobs):
        data, _ = blobs
        model = KMeans(n_clusters=3, random_state=2).fit(data)
        assert model.centers_.shape == (3, data.shape[1])

    def test_reproducible(self, blobs):
        data, _ = blobs
        first = KMeans(n_clusters=3, random_state=5).fit_predict(data)
        second = KMeans(n_clusters=3, random_state=5).fit_predict(data)
        np.testing.assert_array_equal(first, second)

    def test_k_exceeding_n_rejected(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=10).fit(np.zeros((5, 2)) + np.arange(5)[:, None])

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=2, tolerance=-1.0)


class TestKMedoids:
    def test_recovers_blobs(self, blobs):
        data, labels = blobs
        model = KMedoids(n_clusters=3, random_state=0).fit(data)
        assert adjusted_rand_index(labels, model.labels_) > 0.9

    def test_medoids_are_data_points(self, blobs):
        data, _ = blobs
        model = KMedoids(n_clusters=3, random_state=1).fit(data)
        assert model.medoid_indices_.shape == (3,)
        assert np.all((model.medoid_indices_ >= 0) & (model.medoid_indices_ < data.shape[0]))

    def test_projected_subspace_mode(self, small_dataset):
        """Restricting distances to a cluster's true subspace finds that cluster."""
        dims = small_dataset.relevant_dimensions[0]
        model = KMedoids(n_clusters=3, dimensions=dims, random_state=0).fit(small_dataset.data)
        # The cluster whose relevant dims were used should be recovered well:
        # at least one produced cluster overlaps it strongly.
        true_members = set(np.flatnonzero(small_dataset.labels == 0).tolist())
        overlaps = []
        for cluster in range(3):
            produced = set(np.flatnonzero(model.labels_ == cluster).tolist())
            if produced:
                overlaps.append(len(true_members & produced) / len(true_members))
        assert max(overlaps) > 0.7

    def test_cost_positive(self, blobs):
        data, _ = blobs
        model = KMedoids(n_clusters=2, random_state=3).fit(data)
        assert model.cost_ > 0

    def test_reproducible(self, blobs):
        data, _ = blobs
        first = KMedoids(n_clusters=3, random_state=9).fit_predict(data)
        second = KMedoids(n_clusters=3, random_state=9).fit_predict(data)
        np.testing.assert_array_equal(first, second)
