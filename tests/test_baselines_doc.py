"""Tests for the DOC / FastDOC baselines."""

import numpy as np
import pytest

from repro.baselines import DOC, FastDOC
from repro.evaluation import adjusted_rand_index


@pytest.fixture(scope="module")
def hypercube_dataset():
    """Clusters that really are hyper-boxes — DOC's favourable case."""
    rng = np.random.default_rng(77)
    n_per = 60
    data = rng.uniform(0, 100, size=(3 * n_per + 30, 12))
    for index, dims in enumerate(([0, 1, 2], [3, 4, 5], [6, 7, 8])):
        rows = slice(index * n_per, (index + 1) * n_per)
        center = rng.uniform(20, 80, size=3)
        data[rows, dims] = center + rng.uniform(-4, 4, size=(n_per, 3))
    labels = np.concatenate([np.repeat(np.arange(3), n_per), np.full(30, -1)])
    return data, labels


class TestDoc:
    def test_finds_hypercube_clusters(self, hypercube_dataset):
        data, labels = hypercube_dataset
        model = DOC(n_clusters=3, width=8.0, random_state=0, n_outer_trials=15).fit(data)
        assert adjusted_rand_index(labels, model.labels_) > 0.5

    def test_relevant_dimensions_found(self, hypercube_dataset):
        data, labels = hypercube_dataset
        model = DOC(n_clusters=3, width=8.0, random_state=1, n_outer_trials=15).fit(data)
        true_dim_sets = [{0, 1, 2}, {3, 4, 5}, {6, 7, 8}]
        hits = 0
        for dims in model.dimensions_:
            found = set(int(j) for j in dims)
            if any(len(found & truth) >= 2 for truth in true_dim_sets):
                hits += 1
        assert hits >= 2

    def test_default_width_derived_from_data(self, hypercube_dataset):
        data, _ = hypercube_dataset
        model = DOC(n_clusters=2, random_state=2)
        assert model._effective_width(data) > 0

    def test_quality_function_prefers_more_dimensions(self):
        model = DOC(n_clusters=1, beta=0.25)
        assert model._quality(20, 4) > model._quality(20, 2)

    def test_quality_function_trades_size_for_dimensions(self):
        # With beta = 0.25 one extra dimension is worth a 4x larger cluster.
        model = DOC(n_clusters=1, beta=0.25)
        assert model._quality(5, 3) == pytest.approx(model._quality(20, 2))

    def test_unfound_clusters_leave_outliers(self):
        rng = np.random.default_rng(3)
        data = rng.uniform(0, 100, size=(40, 5))
        model = DOC(n_clusters=3, width=1.0, random_state=3, min_cluster_fraction=0.4).fit(data)
        assert np.count_nonzero(model.labels_ == -1) > 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DOC(n_clusters=2, width=-1.0)
        with pytest.raises(ValueError):
            DOC(n_clusters=2, beta=0.0)


class TestFastDoc:
    def test_finds_hypercube_clusters(self, hypercube_dataset):
        data, labels = hypercube_dataset
        model = FastDOC(n_clusters=3, width=8.0, random_state=4, n_outer_trials=15).fit(data)
        assert adjusted_rand_index(labels, model.labels_) > 0.4

    def test_result_algorithm_name(self, hypercube_dataset):
        data, _ = hypercube_dataset
        model = FastDOC(n_clusters=2, width=8.0, random_state=5).fit(data)
        assert model.result_.algorithm == "FastDOC"

    def test_reproducible(self, hypercube_dataset):
        data, _ = hypercube_dataset
        first = FastDOC(n_clusters=3, width=8.0, random_state=6).fit_predict(data)
        second = FastDOC(n_clusters=3, width=8.0, random_state=6).fit_predict(data)
        np.testing.assert_array_equal(first, second)
