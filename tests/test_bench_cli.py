"""End-to-end CLI behaviour of ``repro-bench`` (list / run / compare / report)."""

import json

import pytest

from repro.bench.cli import main

FAST_SCENARIO = "figure1_knowledge_analysis"


@pytest.fixture
def completed_run(tmp_path):
    run_dir = tmp_path / "run"
    code = main(
        [
            "run",
            "--suite",
            "smoke",
            "--scenario",
            FAST_SCENARIO,
            "--run-dir",
            str(run_dir),
            "--write-baseline",
            str(tmp_path / "BENCH_test.json"),
        ]
    )
    assert code == 0
    return run_dir, tmp_path / "BENCH_test.json"


class TestList:
    def test_lists_all_scenarios(self, capsys):
        assert main(["list", "--suite", "smoke"]) == 0
        out = capsys.readouterr().out
        assert FAST_SCENARIO in out
        assert "serving" in out

    def test_group_filter(self, capsys):
        assert main(["list", "--suite", "smoke", "--group", "perf"]) == 0
        out = capsys.readouterr().out
        assert "hotpath" in out
        assert FAST_SCENARIO not in out

    def test_unknown_group_raises(self):
        with pytest.raises(KeyError):
            main(["list", "--group", "nope"])


class TestRun:
    def test_run_writes_store_and_baseline(self, completed_run):
        run_dir, baseline_path = completed_run
        assert (run_dir / "manifest.json").is_file()
        assert (run_dir / "summary.json").is_file()
        records = list((run_dir / FAST_SCENARIO).glob("*.json"))
        assert len(records) == 2  # one per relevant fraction
        baseline = json.loads(baseline_path.read_text())
        assert FAST_SCENARIO in baseline["scenarios"]

    def test_rerun_is_fully_cached(self, completed_run, capsys):
        run_dir, _ = completed_run
        assert (
            main(["run", "--suite", "smoke", "--scenario", FAST_SCENARIO,
                  "--run-dir", str(run_dir)])
            == 0
        )
        assert ", 0 to run," in capsys.readouterr().out


class TestCompare:
    def test_self_compare_passes(self, completed_run):
        run_dir, baseline_path = completed_run
        assert (
            main(["compare", "--run-dir", str(run_dir), "--baseline", str(baseline_path)]) == 0
        )

    def test_injected_regression_fails(self, completed_run):
        run_dir, baseline_path = completed_run
        doc = json.loads(baseline_path.read_text())
        metrics = doc["scenarios"][FAST_SCENARIO]["metrics"]
        metrics["prob_size5_frac5"] = metrics["prob_size5_frac5"] + 10.0
        inflated = baseline_path.with_name("BENCH_inflated.json")
        inflated.write_text(json.dumps(doc))
        assert (
            main(["compare", "--run-dir", str(run_dir), "--baseline", str(inflated)]) == 1
        )

    def test_missing_summary_is_usage_error(self, tmp_path):
        assert (
            main(["compare", "--run-dir", str(tmp_path / "empty"),
                  "--baseline", str(tmp_path / "nope.json")])
            == 2
        )


class TestReport:
    def test_report_prints_and_writes_tables(self, completed_run, capsys, tmp_path):
        run_dir, _ = completed_run
        out_dir = tmp_path / "tables"
        assert main(["report", "--run-dir", str(run_dir), "--output", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert FAST_SCENARIO in out
        assert (out_dir / ("%s.md" % FAST_SCENARIO)).is_file()
        assert (out_dir / "README.md").is_file()

    def test_report_without_summary_is_usage_error(self, tmp_path):
        assert main(["report", "--run-dir", str(tmp_path / "empty")]) == 2
