"""Tests for dataset persistence and example-dataset builders."""

import numpy as np
import pytest

from repro.data.loaders import (
    load_csv_dataset,
    make_expression_like_dataset,
    save_csv_dataset,
)


class TestCsvRoundTrip:
    def test_round_trip_with_labels(self, tmp_path, rng):
        data = rng.normal(size=(20, 5))
        labels = rng.integers(-1, 3, size=20)
        path = tmp_path / "dataset.csv"
        save_csv_dataset(path, data, labels)
        loaded_data, loaded_labels = load_csv_dataset(path)
        np.testing.assert_allclose(loaded_data, data, rtol=1e-4, atol=1e-4)
        np.testing.assert_array_equal(loaded_labels, labels)

    def test_round_trip_without_labels(self, tmp_path, rng):
        data = rng.uniform(size=(10, 3))
        path = tmp_path / "plain.csv"
        save_csv_dataset(path, data)
        loaded_data, loaded_labels = load_csv_dataset(path)
        assert loaded_labels is None
        assert loaded_data.shape == (10, 3)

    def test_creates_parent_directories(self, tmp_path, rng):
        path = tmp_path / "nested" / "deeper" / "data.csv"
        save_csv_dataset(path, rng.normal(size=(4, 2)))
        assert path.exists()

    def test_custom_delimiter(self, tmp_path, rng):
        data = rng.normal(size=(5, 2))
        path = tmp_path / "semi.csv"
        save_csv_dataset(path, data, delimiter=";")
        loaded, _ = load_csv_dataset(path, delimiter=";")
        assert loaded.shape == (5, 2)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            load_csv_dataset(path)

    def test_header_only_rejected(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("dim_0,dim_1\n")
        with pytest.raises(ValueError):
            load_csv_dataset(path)


class TestExpressionLikeDataset:
    def test_shape_matches_paper_configuration(self):
        dataset = make_expression_like_dataset(
            n_samples=60, n_genes=200, n_sample_classes=3, n_marker_genes=5, random_state=0
        )
        assert dataset.data.shape == (60, 200)
        assert dataset.n_clusters == 3
        assert all(dims.size == 5 for dims in dataset.relevant_dimensions)

    def test_marker_genes_are_tight_within_class(self):
        dataset = make_expression_like_dataset(
            n_samples=90, n_genes=100, n_sample_classes=3, n_marker_genes=4, random_state=1
        )
        low, high = dataset.parameters["value_range"]
        population_variance = (high - low) ** 2 / 12.0
        for label, dims in enumerate(dataset.relevant_dimensions):
            members = dataset.cluster_members(label)
            local = dataset.data[members][:, dims].var(axis=0, ddof=1)
            assert np.all(local < 0.25 * population_variance)
