"""Instrumented layers emit the right spans/metrics — and stay bit-identical.

Covers the tentpole's four subsystems (fit, assignment engine, stream,
serving; the executor has its own module) plus the per-fit stats-cache
counter satellite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core.sspc import SSPC
from repro.core.stats_cache import ClusterStatsCache
from repro.data.generator import SyntheticDataGenerator
from repro.serving.index import ProjectedClusterIndex
from repro.stream import StreamConfig, StreamingSSPC


@pytest.fixture(autouse=True)
def _obs_off():
    obs.disable()
    yield
    obs.disable()


@pytest.fixture(scope="module")
def dataset():
    return SyntheticDataGenerator(
        n_objects=120,
        n_dimensions=12,
        n_clusters=3,
        avg_cluster_dimensionality=4,
        random_state=5,
    ).generate()


def fit_model(data, **overrides):
    params = dict(n_clusters=3, m=0.5, max_iterations=6, random_state=11)
    params.update(overrides)
    return SSPC(**params).fit(data)


def span_names(recorder):
    return {s["name"] for s in recorder.spans}


class TestFitInstrumentation:
    def test_fit_emits_per_phase_spans(self, dataset):
        with obs.recording() as rec:
            fit_model(dataset.data)
        names = span_names(rec)
        assert {"fit", "fit.seed_groups", "fit.iteration", "fit.assign",
                "fit.select_dim", "fit.phi"} <= names
        fit_span = next(s for s in rec.spans if s["name"] == "fit")
        assert fit_span["cat"] == "fit"
        assert fit_span["args"]["n_objects"] == 120
        assert fit_span["args"]["iterations"] >= 1
        # phases are parented under their iteration, iterations under fit
        iteration = next(s for s in rec.spans if s["name"] == "fit.iteration")
        assign = next(s for s in rec.spans if s["name"] == "fit.assign")
        assert assign["parent"] == iteration["id"]
        assert iteration["parent"] == fit_span["id"]
        # per-iteration membership deltas land in a histogram
        assert len(rec.histograms["fit.changed_clusters"]) >= 1

    def test_fit_records_engine_metrics(self, dataset):
        with obs.recording() as rec:
            fit_model(dataset.data)
        assert rec.counters["engine.gains_calls"] >= 1
        assert rec.counters["engine.columns_recomputed"] >= 3  # first call: all k
        assert 0.0 <= min(rec.histograms["engine.dirty_fraction"])
        assert max(rec.histograms["engine.dirty_fraction"]) <= 1.0

    def test_fit_bit_identical_with_obs_enabled(self, dataset):
        plain = fit_model(dataset.data)
        with obs.recording():
            traced = fit_model(dataset.data)
        np.testing.assert_array_equal(plain.labels_, traced.labels_)
        assert plain.objective_ == traced.objective_
        for a, b in zip(plain.selected_dimensions_, traced.selected_dimensions_):
            np.testing.assert_array_equal(a, b)


class TestStatsCacheCountersPerFit:
    def test_default_estimator_snapshot_matches_cache(self, dataset):
        model = fit_model(dataset.data)
        assert model.stats_cache_counters_ == model.stats_cache_.counters()
        assert model.stats_cache_counters_["misses"] > 0

    def test_shared_cache_counters_reset_between_fits(self, dataset):
        """Regression: counters used to accumulate across fits on a shared cache."""
        shared = {}

        class SharedCacheSSPC(SSPC):
            @staticmethod
            def _stats_cache_factory(data, **kwargs):
                key = data.shape  # one cache per dataset, shared across fits
                if key not in shared:
                    shared[key] = ClusterStatsCache(data, **kwargs)
                return shared[key]

        first = SharedCacheSSPC(n_clusters=3, max_iterations=6, random_state=11)
        first.fit(dataset.data)
        counters_first = dict(first.stats_cache_counters_)

        second = SharedCacheSSPC(n_clusters=3, max_iterations=6, random_state=11)
        second.fit(dataset.data)
        counters_second = dict(second.stats_cache_counters_)

        # identical trajectory on a warm cache: far fewer misses, and —
        # the regression — definitely not the cumulative totals.
        assert counters_second["misses"] < counters_first["misses"]
        # the snapshot is exactly what the cache reports right after fit
        assert counters_second == second.stats_cache_.counters()
        # warm entries survived the counter reset
        assert second.stats_cache_.n_entries > 0

    def test_reset_counters_keeps_entries(self, dataset):
        cache = ClusterStatsCache(dataset.data)
        members = np.arange(10, dtype=np.int64)
        cache.statistics(members)
        cache.statistics(members)
        assert cache.hits == 1 and cache.misses == 1
        entries = cache.n_entries
        cache.reset_counters()
        assert cache.hits == cache.misses == cache.evictions == 0
        assert cache.n_entries == entries
        cache.statistics(members)
        assert cache.hits == 1 and cache.misses == 0  # still warm

    def test_obs_counters_reflect_one_fit(self, dataset):
        with obs.recording() as rec:
            model = fit_model(dataset.data)
        assert rec.counters["stats_cache.misses"] == model.stats_cache_counters_["misses"]
        assert rec.gauges["stats_cache.hit_rate"] == pytest.approx(
            model.stats_cache_counters_["hit_rate"]
        )


class TestStreamAndServeInstrumentation:
    def test_stream_batches_record_spans_histograms_events(self, dataset):
        model = fit_model(dataset.data)
        rng = np.random.default_rng(3)
        engine = StreamingSSPC(
            model.to_artifact(),
            config=StreamConfig(seed=1, drift_check_every=0, lifecycle_every=0),
        )
        with obs.recording() as rec:
            for _ in range(4):
                batch = rng.normal(size=(50, dataset.data.shape[1]))
                engine.process_batch(batch)
        batch_spans = [s for s in rec.spans if s["name"] == "stream.batch"]
        assert len(batch_spans) == 4
        assert all(s["cat"] == "stream" for s in batch_spans)
        assert rec.histograms["stream.batch_size"] == [50.0] * 4
        assert len(rec.histograms["stream.outlier_rate"]) == 4
        assert rec.counters["stream.points"] == 200.0
        assert rec.gauges["stream.clusters"] == engine.index.n_clusters

    def test_stream_lifecycle_events_mirrored(self, dataset):
        model = fit_model(dataset.data)
        engine = StreamingSSPC(
            model.to_artifact(),
            config=StreamConfig(
                seed=1, spawn_min_points=15, lifecycle_every=1, drift_check_every=0
            ),
        )
        rng = np.random.default_rng(9)
        # far-away dense blob: rejected as outliers, then spawned
        blob = rng.normal(loc=40.0, scale=0.05, size=(60, dataset.data.shape[1]))
        with obs.recording() as rec:
            for start in range(0, 60, 20):
                engine.process_batch(blob[start:start + 20])
        # starved original clusters retire and/or the blob spawns: either
        # way the engine adapted, and every adaptation must be mirrored
        # one-for-one into the obs event log.
        assert engine.events, "expected lifecycle adaptations from the outlier blob"
        assert [e["kind"] for e in rec.events] == [e.kind for e in engine.events]
        for mirrored, original in zip(rec.events, engine.events):
            assert mirrored["details"]["cluster_id"] == int(original.cluster_id)
            assert mirrored["details"]["batch_index"] == int(original.batch_index)

    def test_serve_predict_and_partial_update_spans(self, dataset):
        model = fit_model(dataset.data)
        index = ProjectedClusterIndex(model.to_artifact())
        with obs.recording() as rec:
            labels = index.predict(dataset.data[:40])
            index.partial_update(dataset.data[40:80])
        names = span_names(rec)
        assert {"serve.predict", "serve.partial_update", "engine.compute"} <= names
        assert rec.counters["serve.points_scored"] >= 40.0
        assert rec.counters["engine.compute_calls"] >= 1
        predict_span = next(s for s in rec.spans if s["name"] == "serve.predict")
        assert predict_span["args"]["rows"] == 40
        assert labels.shape == (40,)

    def test_stream_results_identical_with_obs_enabled(self, dataset):
        model = fit_model(dataset.data)
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        plain = StreamingSSPC(model.to_artifact(), config=StreamConfig(seed=1))
        traced = StreamingSSPC(model.to_artifact(), config=StreamConfig(seed=1))
        for _ in range(3):
            batch = rng_a.normal(size=(40, dataset.data.shape[1]))
            result_plain = plain.process_batch(batch)
            with obs.recording():
                result_traced = traced.process_batch(rng_b.normal(size=(40, dataset.data.shape[1])))
            np.testing.assert_array_equal(result_plain.labels, result_traced.labels)
