"""--trace/--metrics-out plumbing through the CLIs, plus ``repro-obs report``.

Each front-end (bench, stream, serve) must emit a Perfetto-loadable
Chrome trace and a checksummed metrics snapshot when asked — and stay
completely untraced when not.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.cli import main as obs_main
from repro.obs.export import load_chrome_trace
from repro.reliability import read_json


@pytest.fixture(autouse=True)
def _obs_off():
    obs.disable()
    yield
    obs.disable()


def trace_categories(trace):
    return {
        event.get("cat")
        for event in trace["traceEvents"]
        if event.get("ph") == "X"
    }


class TestBenchRunTracing:
    # fits, serves and partially updates a model: four instrumented
    # subsystems in one fast scenario (the acceptance bar for --trace)
    SCENARIO = "serving"

    def test_run_emits_trace_and_metrics(self, tmp_path, capsys):
        from repro.bench.cli import main as bench_main

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        code = bench_main([
            "run", "--suite", "smoke", "--scenario", self.SCENARIO,
            "--run-dir", str(tmp_path / "run"),
            "--trace", str(trace_path),
            "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace written to" in out and "metrics snapshot written to" in out

        trace = load_chrome_trace(trace_path)
        categories = trace_categories(trace)
        # spans from at least four instrumented subsystems in one run
        assert {"fit", "engine", "serve", "executor"} <= categories
        snapshot = read_json(metrics_path, verify=True)
        assert snapshot["counters"]["serve.points_scored"] >= 1
        assert "executor" in snapshot["spans"]["by_category"]
        assert snapshot["spans"]["count"] >= 4
        # recorder is torn down after the session
        assert not obs.enabled()

    def test_run_without_flags_stays_untraced(self, tmp_path):
        from repro.bench.cli import main as bench_main

        code = bench_main([
            "run", "--suite", "smoke", "--scenario", self.SCENARIO,
            "--run-dir", str(tmp_path / "run"),
        ])
        assert code == 0
        assert not obs.enabled()
        assert not list(tmp_path.glob("*.json"))


class TestStreamRunTracing:
    RUN_ARGS = [
        "run",
        "--n-batches", "4",
        "--batch-size", "80",
        "--n-dimensions", "16",
        "--n-clusters", "3",
        "--cluster-dim", "4",
        "--drift", "none",
        "--warmup", "300",
        "--fit-iterations", "4",
        "--seed", "5",
        "--quiet",
    ]

    def test_stream_run_emits_trace_and_metrics(self, tmp_path):
        from repro.stream.cli import main as stream_main

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        code = stream_main(self.RUN_ARGS + [
            "--trace", str(trace_path), "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        categories = trace_categories(load_chrome_trace(trace_path))
        # warmup fit + the streaming batches, both instrumented
        assert {"fit", "engine", "stream"} <= categories
        snapshot = read_json(metrics_path, verify=True)
        assert snapshot["counters"]["stream.points"] == 4 * 80
        assert snapshot["histograms"]["stream.batch_size"]["count"] == 4
        assert snapshot["histograms"]["stream.batch_size"]["max"] == 80.0


class TestServeTracing:
    def test_fit_and_predict_emit_traces(self, tmp_path):
        import numpy as np

        from repro.serving.cli import main as serve_main

        artifact = tmp_path / "model"
        fit_trace = tmp_path / "fit-trace.json"
        code = serve_main([
            "fit", "--synthetic", "120x20x2", "--artifact", str(artifact),
            "--random-state", "0", "--trace", str(fit_trace),
        ])
        assert code == 0
        assert {"fit", "engine"} <= trace_categories(load_chrome_trace(fit_trace))

        points = tmp_path / "points.npy"
        np.save(points, np.random.default_rng(0).normal(size=(30, 20)))
        predict_trace = tmp_path / "predict-trace.json"
        predict_metrics = tmp_path / "predict-metrics.json"
        code = serve_main([
            "predict", "--artifact", str(artifact), "--input", str(points),
            "--output", str(tmp_path / "assign.csv"),
            "--trace", str(predict_trace), "--metrics-out", str(predict_metrics),
        ])
        assert code == 0
        assert "serve" in trace_categories(load_chrome_trace(predict_trace))
        snapshot = read_json(predict_metrics, verify=True)
        assert snapshot["counters"]["serve.points_scored"] == 30


class TestObsReportCli:
    @pytest.fixture()
    def artifacts(self, tmp_path):
        from repro.obs.export import write_chrome_trace, write_metrics

        with obs.recording() as recorder:
            with obs.span("demo", category="fit"):
                obs.incr("demo.counter", 3)
                obs.observe("demo.hist", 1.0)
                obs.event("drift", cluster_id=2)
        trace_path = write_chrome_trace(tmp_path / "trace.json", recorder)
        metrics_path = write_metrics(tmp_path / "metrics.json", recorder)
        return trace_path, metrics_path

    def test_report_renders_metrics(self, artifacts, capsys):
        _, metrics_path = artifacts
        assert obs_main(["report", "--metrics", str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert "demo.counter" in out
        assert "drift" in out

    def test_report_renders_trace(self, artifacts, capsys):
        trace_path, _ = artifacts
        assert obs_main(["report", "--trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "demo" in out
        assert "perfetto" in out.lower()

    def test_report_requires_an_input(self):
        with pytest.raises(SystemExit):
            obs_main(["report"])

    def test_report_missing_file_is_io_error(self, tmp_path):
        assert obs_main(["report", "--metrics", str(tmp_path / "nope.json")]) == 2


class TestObsLint:
    @pytest.fixture()
    def lint(self):
        import importlib.util
        from pathlib import Path

        tool = Path(__file__).resolve().parents[1] / "tools" / "check_obs.py"
        spec = importlib.util.spec_from_file_location("check_obs", tool)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_library_code_is_clean(self, lint):
        assert lint.run() == 0

    def test_lint_catches_print_and_wall_clock(self, lint, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import time\n"
            "def report(x):\n"
            "    print('progress', x)\n"
            "    return time.time()\n"
        )
        violations = list(lint.scan_file(bad))
        assert len(violations) == 2
        assert any("print" in message for _, message in violations)
        assert any("wall_time" in message for _, message in violations)

    def test_lint_ignores_strings_and_comments(self, lint, tmp_path):
        fine = tmp_path / "fine.py"
        fine.write_text(
            "# print('not a call') and time.time() in a comment\n"
            "MESSAGE = \"print('nope'); time.time()\"\n"
            "def wall():\n"
            "    from repro import obs\n"
            "    return obs.wall_time()\n"
        )
        assert list(lint.scan_file(fine)) == []

    def test_cli_and_obs_modules_are_exempt(self, lint):
        assert lint.is_exempt("src/repro/obs/core.py")
        assert lint.is_exempt("src/repro/bench/cli.py")
        assert lint.is_exempt("src/repro/bench/perf_obs.py")
        assert lint.is_exempt("src/repro/bench/chaos.py")
        assert not lint.is_exempt("src/repro/core/sspc.py")
        assert not lint.is_exempt("src/repro/bench/store.py")


class TestObsLiveServerCli:
    """`repro-obs report --url` and `repro-obs tail` against a fake daemon."""

    METRICS = {
        "generation": 3,
        "telemetry": {
            "requests_total": {"predict": {"2xx": 5}},
            "latency_seconds": {
                "predict": {
                    "2xx": {
                        "count": 5,
                        "sum": 0.05,
                        "mean": 0.01,
                        "min": 0.005,
                        "max": 0.02,
                        "p50": 0.01,
                        "p90": 0.018,
                        "p99": 0.02,
                        "buckets": {"le": [0.1, "+Inf"], "cumulative": [5, 5]},
                    }
                }
            },
            "slo": {
                "objectives": {
                    "availability_target": 0.999,
                    "latency_budget_ms": 250.0,
                    "latency_target": 0.99,
                    "fast_burn_threshold": 14.4,
                },
                "windows": {
                    "1m": {
                        "requests": 5,
                        "errors": 0,
                        "slow": 0,
                        "availability": 1.0,
                        "latency_ok": 1.0,
                        "availability_burn": 0.0,
                        "latency_burn": 0.0,
                        "seconds": 60,
                    }
                },
                "fast_burn": False,
                "status": "ok",
            },
            "tail": {"captured_slow": 2, "captured_errors": 0},
        },
    }
    TAIL = {
        "traceEvents": [
            {
                "name": "server.request",
                "cat": "server",
                "ph": "X",
                "ts": 0.0,
                "dur": 1000.0,
                "pid": 1,
                "tid": 1,
                "args": {"request_id": "req-1", "span_id": 1, "parent_id": None},
            }
        ],
        "displayTimeUnit": "ms",
    }

    @pytest.fixture
    def fake_daemon(self, monkeypatch):
        import repro.obs.cli as cli_module

        def fetch(url, timeout=15.0):
            if url.endswith("/metrics"):
                return json.loads(json.dumps(self.METRICS))
            if url.endswith("/debug/tail_trace"):
                return json.loads(json.dumps(self.TAIL))
            raise AssertionError("unexpected fetch: %s" % url)

        monkeypatch.setattr(cli_module, "_fetch_json", fetch)

    def test_report_url_renders_live_telemetry(self, fake_daemon, capsys):
        assert obs_main(["report", "--url", "http://localhost:1"]) == 0
        output = capsys.readouterr().out
        assert "predict" in output
        assert "availability" in output
        assert "ok" in output

    def test_tail_summarizes_and_saves(self, fake_daemon, capsys, tmp_path):
        out = tmp_path / "tail.json"
        assert obs_main(["tail", "--url", "http://localhost:1", "--out", str(out)]) == 0
        saved = json.loads(out.read_text())
        assert saved["traceEvents"][0]["name"] == "server.request"
        output = capsys.readouterr().out
        assert "server" in output

    def test_report_still_requires_an_input(self):
        with pytest.raises(SystemExit):
            obs_main(["report"])


def test_trace_is_valid_json_perfetto_shape(tmp_path):
    """The emitted file is plain JSON with the documented top-level shape."""
    from repro.obs.export import write_chrome_trace

    with obs.recording() as recorder:
        with obs.span("root", category="fit"):
            pass
    path = write_chrome_trace(tmp_path / "trace.json", recorder)
    document = json.loads(path.read_text())
    assert isinstance(document["traceEvents"], list)
    assert document["displayTimeUnit"] == "ms"
    assert any(event["ph"] == "M" for event in document["traceEvents"])
