"""Resumable result store: manifest, record keying, atomicity, summaries."""

import json

import pytest

from repro.bench.scenario import SCHEMA_VERSION, ScenarioSummary, TaskSpec
from repro.bench.store import RunStore, StoreError


@pytest.fixture
def store(tmp_path):
    return RunStore(tmp_path / "run")


def _record(scenario_id, task, payload=None, seconds=0.01):
    return {
        "schema_version": SCHEMA_VERSION,
        "scenario_id": scenario_id,
        "task": task.name,
        "config_hash": task.config_hash(scenario_id),
        "params": dict(task.params),
        "seconds": seconds,
        "payload": payload or {"value": 1.0},
    }


class TestManifest:
    def test_write_and_load(self, store):
        task = TaskSpec(name="t0", params={"seed": 1})
        manifest = store.write_manifest(scale="smoke", scenarios={"demo": [task]})
        loaded = store.load_manifest()
        assert loaded == manifest
        assert loaded["scale"] == "smoke"
        assert loaded["scenarios"]["demo"]["tasks"]["t0"] == task.config_hash("demo")

    def test_refresh_preserves_run_identity(self, store):
        first = store.write_manifest(scale="smoke", scenarios={})
        second = store.write_manifest(scale="smoke", scenarios={})
        assert second["run_id"] == first["run_id"]
        assert second["created_at"] == first["created_at"]

    def test_scale_mismatch_refused(self, store):
        store.write_manifest(scale="smoke", scenarios={})
        with pytest.raises(StoreError):
            store.write_manifest(scale="reduced", scenarios={})


class TestRecords:
    def test_round_trip(self, store):
        task = TaskSpec(name="t0", params={"seed": 1})
        store.write_record(_record("demo", task))
        loaded = store.load_record("demo", task)
        assert loaded is not None
        assert loaded["payload"] == {"value": 1.0}

    def test_missing_record_is_none(self, store):
        assert store.load_record("demo", TaskSpec(name="t0", params={})) is None

    def test_config_change_invalidates(self, store):
        task = TaskSpec(name="t0", params={"seed": 1})
        store.write_record(_record("demo", task))
        changed = TaskSpec(name="t0", params={"seed": 2})
        assert store.load_record("demo", changed) is None
        # The original key still resolves.
        assert store.load_record("demo", task) is not None

    def test_schema_bump_invalidates(self, store):
        task = TaskSpec(name="t0", params={"seed": 1})
        record = _record("demo", task)
        record["schema_version"] = SCHEMA_VERSION + 1
        store.write_record(record)
        assert store.load_record("demo", task) is None

    def test_truncated_record_treated_as_absent(self, store):
        task = TaskSpec(name="t0", params={"seed": 1})
        path = store.write_record(_record("demo", task))
        path.write_text('{"schema_version": 1, "trunca')  # simulated hard kill
        assert store.load_record("demo", task) is None


class TestSummary:
    def test_write_merges_and_loads(self, store):
        store.write_manifest(scale="smoke", scenarios={})
        summary_a = ScenarioSummary(scenario_id="a", scale="smoke", metrics={"m": 1.0})
        store.write_summary(scale="smoke", summaries={"a": summary_a})
        summary_b = ScenarioSummary(scenario_id="b", scale="smoke", metrics={"m": 2.0})
        doc = store.write_summary(scale="smoke", summaries={"b": summary_b})
        assert set(doc["scenarios"]) == {"a", "b"}
        loaded = store.load_summary()
        assert loaded["scenarios"]["a"]["metrics"]["m"] == 1.0
        assert loaded["schema_version"] == SCHEMA_VERSION

    def test_other_scenarios_failures_survive_selective_runs(self, store):
        """A later selective run must not wash out another scenario's failure."""
        store.write_summary(scale="smoke", summaries={}, failures={"a/task-0": "boom"})
        summary_b = ScenarioSummary(scenario_id="b", scale="smoke", metrics={"m": 2.0})
        doc = store.write_summary(scale="smoke", summaries={"b": summary_b})
        assert doc["failures"] == {"a/task-0": "boom"}

    def test_failures_cleared_once_scenario_summarizes(self, store):
        store.write_summary(scale="smoke", summaries={}, failures={"a/task-0": "boom"})
        summary_a = ScenarioSummary(scenario_id="a", scale="smoke", metrics={"m": 1.0})
        doc = store.write_summary(scale="smoke", summaries={"a": summary_a})
        assert doc["failures"] == {}

    def test_summary_is_valid_json_on_disk(self, store):
        store.write_summary(scale="smoke", summaries={})
        with open(store.summary_path) as handle:
            assert json.load(handle)["scenarios"] == {}
