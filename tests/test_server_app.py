"""End-to-end tests of PredictServer over real HTTP connections."""

from __future__ import annotations

import asyncio
import contextlib
import json

import numpy as np
import pytest

from repro.serving.artifact import load_artifact
from repro.serving.index import ProjectedClusterIndex
from repro.server.app import PredictServer, ServerConfig


@pytest.fixture(scope="module")
def query_points():
    rng = np.random.default_rng(42)
    return rng.normal(size=(20, 40))


@contextlib.asynccontextmanager
async def running_server(artifact_path, **config_kwargs):
    config_kwargs.setdefault("port", 0)
    server = PredictServer(artifact_path, ServerConfig(**config_kwargs))
    host, port = await server.start()
    try:
        yield server, host, port
    finally:
        await server.stop()


async def request_on(reader, writer, method, path, payload=None):
    """One HTTP round trip on an already-open connection."""
    body = b"" if payload is None else json.dumps(payload).encode()
    head = "%s %s HTTP/1.1\r\nHost: test\r\n" % (method, path)
    if body:
        head += "Content-Type: application/json\r\nContent-Length: %d\r\n" % len(body)
    writer.write(head.encode() + b"\r\n" + body)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"", b"\n"):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    raw = await reader.readexactly(int(headers["content-length"]))
    return status, json.loads(raw)


async def request(host, port, method, path, payload=None):
    """One HTTP round trip on a fresh connection."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        return await request_on(reader, writer, method, path, payload)
    finally:
        writer.close()
        with contextlib.suppress(ConnectionError):
            await writer.wait_closed()


def test_healthz_reports_shape(artifact_on_disk):
    async def drive():
        async with running_server(artifact_on_disk) as (server, host, port):
            return await request(host, port, "GET", "/healthz")

    status, body = asyncio.run(drive())
    assert status == 200
    assert body["status"] == "ok"
    assert body["generation"] == 0
    assert body["n_dimensions"] == 40
    assert body["uptime_s"] >= 0.0


def test_predict_single_and_batch_bit_identical(artifact_on_disk, query_points):
    reference = ProjectedClusterIndex(load_artifact(artifact_on_disk)).predict(
        query_points
    )

    async def drive():
        async with running_server(artifact_on_disk) as (server, host, port):
            singles = []
            for row in query_points:
                status, body = await request(
                    host, port, "POST", "/predict", {"point": list(row)}
                )
                assert status == 200
                singles.append(body["label"])
            status, body = await request(
                host, port, "POST", "/predict", {"points": query_points.tolist()}
            )
            assert status == 200
            return singles, body["labels"]

    singles, batch = asyncio.run(drive())
    np.testing.assert_array_equal(np.array(singles), reference)
    np.testing.assert_array_equal(np.array(batch), reference)


def test_predict_soft_single_and_batch(artifact_on_disk, query_points):
    index = ProjectedClusterIndex(load_artifact(artifact_on_disk))
    labels, clusters, gains = index.top_assignments(query_points, 2)

    async def drive():
        async with running_server(artifact_on_disk) as (server, host, port):
            status, batch = await request(
                host,
                port,
                "POST",
                "/predict_soft",
                {"points": query_points.tolist(), "top_m": 2},
            )
            assert status == 200
            status, single = await request(
                host,
                port,
                "POST",
                "/predict_soft",
                {"point": list(query_points[0]), "top_m": 2},
            )
            assert status == 200
            return batch, single

    batch, single = asyncio.run(drive())
    np.testing.assert_array_equal(np.array(batch["labels"]), labels)
    np.testing.assert_array_equal(np.array(batch["clusters"]), clusters)
    np.testing.assert_allclose(np.array(batch["gains"]), gains)
    assert single["label"] == int(labels[0])
    assert "labels" not in single
    assert len(single["clusters"]) == 2


def test_concurrent_singles_coalesce(artifact_on_disk, query_points):
    reference = ProjectedClusterIndex(load_artifact(artifact_on_disk)).predict(
        query_points
    )

    async def drive():
        async with running_server(artifact_on_disk) as (server, host, port):
            results = await asyncio.gather(
                *(
                    request(host, port, "POST", "/predict", {"point": list(row)})
                    for row in query_points
                )
            )
            return results, server.batcher.stats.snapshot()

    results, stats = asyncio.run(drive())
    labels = np.array([body["label"] for _, body in results])
    np.testing.assert_array_equal(labels, reference)
    # 20 concurrent singles must NOT mean 20 kernel calls.
    assert stats["n_flushes"] < query_points.shape[0]
    assert stats["max_batch_size"] >= 2


def test_error_routes(artifact_on_disk):
    async def drive():
        async with running_server(artifact_on_disk) as (server, host, port):
            missing = await request(host, port, "GET", "/nope")
            wrong_method = await request(host, port, "GET", "/predict")
            bad_body = await request(host, port, "POST", "/predict", {"nope": 1})
            both_keys = await request(
                host, port, "POST", "/predict", {"point": [0.0], "points": [[0.0]]}
            )
            wrong_dims = await request(
                host, port, "POST", "/predict", {"point": [1.0, 2.0]}
            )
            return missing, wrong_method, bad_body, both_keys, wrong_dims

    missing, wrong_method, bad_body, both_keys, wrong_dims = asyncio.run(drive())
    assert missing[0] == 404
    assert wrong_method[0] == 405
    assert bad_body[0] == 400
    assert both_keys[0] == 400
    assert wrong_dims[0] == 400
    assert "40" in wrong_dims[1]["error"]


def test_metrics_counts_requests_and_errors(artifact_on_disk, query_points):
    async def drive():
        async with running_server(artifact_on_disk) as (server, host, port):
            await request(
                host, port, "POST", "/predict", {"point": list(query_points[0])}
            )
            await request(host, port, "GET", "/nope")
            return await request(host, port, "GET", "/metrics")

    status, body = asyncio.run(drive())
    assert status == 200
    assert body["requests"]["POST /predict"] == 1
    assert body["errors"]["404"] == 1
    assert body["batcher"]["n_submitted"] == 1
    assert body["generation"] == 0
    assert body["batcher_depth"] == 0


def test_partial_update_bumps_generation_and_persists(
    artifact_on_disk, query_points, tmp_path
):
    reference = ProjectedClusterIndex(load_artifact(artifact_on_disk))
    expected_applied = reference.partial_update(query_points)
    expected_post = reference.predict(query_points)
    state_dir = tmp_path / "state"

    async def drive():
        async with running_server(
            artifact_on_disk, state_dir=str(state_dir)
        ) as (server, host, port):
            status, update = await request(
                host,
                port,
                "POST",
                "/partial_update",
                {"points": query_points.tolist()},
            )
            assert status == 200
            status, predict = await request(
                host, port, "POST", "/predict", {"points": query_points.tolist()}
            )
            assert status == 200
            return update, predict

    update, predict = asyncio.run(drive())
    assert update["generation"] == 1
    np.testing.assert_array_equal(np.array(update["applied_labels"]), expected_applied)
    # Predictions after the fold come from the folded state.
    np.testing.assert_array_equal(np.array(predict["labels"]), expected_post)
    assert predict["generation"] == 1
    # The generation is durable: dir on disk, CURRENT pointer flipped.
    assert (state_dir / "CURRENT").read_text() == "gen-000001"
    folded = ProjectedClusterIndex(load_artifact(state_dir / "gen-000001"))
    np.testing.assert_array_equal(folded.predict(query_points), expected_post)


def test_partial_update_label_length_mismatch_is_400(artifact_on_disk, query_points):
    async def drive():
        async with running_server(artifact_on_disk) as (server, host, port):
            return await request(
                host,
                port,
                "POST",
                "/partial_update",
                {"points": query_points.tolist(), "labels": [0]},
            )

    status, body = asyncio.run(drive())
    assert status == 400
    assert "labels" in body["error"]


def test_keep_alive_serves_many_requests_per_connection(
    artifact_on_disk, query_points
):
    async def drive():
        async with running_server(artifact_on_disk) as (server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            try:
                statuses = []
                for row in query_points[:5]:
                    status, body = await request_on(
                        reader, writer, "POST", "/predict", {"point": list(row)}
                    )
                    statuses.append(status)
                return statuses
            finally:
                writer.close()
                with contextlib.suppress(ConnectionError):
                    await writer.wait_closed()

    assert asyncio.run(drive()) == [200] * 5


def test_worker_pool_end_to_end(artifact_on_disk, query_points, tmp_path):
    reference = ProjectedClusterIndex(load_artifact(artifact_on_disk))
    expected_labels = reference.predict(query_points)
    expected_applied = reference.partial_update(query_points)
    expected_post = reference.predict(query_points)

    async def drive():
        async with running_server(
            artifact_on_disk, workers=2, state_dir=str(tmp_path / "state")
        ) as (server, host, port):
            status, health = await request(host, port, "GET", "/healthz")
            assert status == 200
            assert health["alive_workers"] == 2
            results = await asyncio.gather(
                *(
                    request(host, port, "POST", "/predict", {"point": list(row)})
                    for row in query_points
                )
            )
            labels = [body["label"] for _, body in results]
            status, update = await request(
                host,
                port,
                "POST",
                "/partial_update",
                {"points": query_points.tolist()},
            )
            assert status == 200
            # After the owner folds and replicas reload, every worker
            # serves the folded state — hammer both via the batch path.
            post = [
                (
                    await request(
                        host,
                        port,
                        "POST",
                        "/predict",
                        {"points": query_points.tolist()},
                    )
                )[1]["labels"]
                for _ in range(4)
            ]
            return labels, update, post

    labels, update, post = asyncio.run(drive())
    np.testing.assert_array_equal(np.array(labels), expected_labels)
    np.testing.assert_array_equal(np.array(update["applied_labels"]), expected_applied)
    assert update["generation"] == 1
    for batch in post:
        np.testing.assert_array_equal(np.array(batch), expected_post)
