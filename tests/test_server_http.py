"""The hand-rolled HTTP/1.1 layer: parsing, rendering, error mapping."""

import asyncio
import json

import pytest

from repro.server.http import (
    HTTPError,
    HTTPRequest,
    json_response,
    read_request,
    render_response,
)


def parse(raw: bytes, *, max_body_bytes: int = 1024 * 1024):
    async def drive():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, max_body_bytes=max_body_bytes)

    return asyncio.run(drive())


class TestReadRequest:
    def test_post_with_body(self):
        body = b'{"point": [1.0, 2.0]}'
        raw = (
            b"POST /predict?debug=1 HTTP/1.1\r\n"
            b"Host: unit\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: %d\r\n\r\n" % len(body) + body
        )
        request = parse(raw)
        assert request.method == "POST"
        assert request.path == "/predict"
        assert request.query == "debug=1"
        assert request.headers["host"] == "unit"
        assert request.body == body
        assert request.keep_alive is True
        assert request.json() == {"point": [1.0, 2.0]}

    def test_get_without_body(self):
        request = parse(b"GET /healthz HTTP/1.1\r\nHost: unit\r\n\r\n")
        assert request.method == "GET"
        assert request.body == b""
        with pytest.raises(HTTPError) as excinfo:
            request.json()
        assert excinfo.value.status == 400

    def test_connection_close_clears_keep_alive(self):
        request = parse(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert request.keep_alive is False

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_truncated_request_is_400(self):
        with pytest.raises(HTTPError) as excinfo:
            parse(b"GET /healthz HTTP/1.1\r\nHost: unit")
        assert excinfo.value.status == 400

    def test_malformed_request_line_is_400(self):
        with pytest.raises(HTTPError) as excinfo:
            parse(b"NONSENSE\r\n\r\n")
        assert excinfo.value.status == 400

    def test_http2_is_rejected(self):
        with pytest.raises(HTTPError) as excinfo:
            parse(b"GET / HTTP/2.0\r\n\r\n")
        assert excinfo.value.status == 400

    def test_oversized_body_is_413(self):
        with pytest.raises(HTTPError) as excinfo:
            parse(
                b"POST /predict HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"x" * 100,
                max_body_bytes=10,
            )
        assert excinfo.value.status == 413

    def test_negative_content_length_is_400(self):
        with pytest.raises(HTTPError) as excinfo:
            parse(b"POST /predict HTTP/1.1\r\nContent-Length: -5\r\n\r\n")
        assert excinfo.value.status == 400

    def test_chunked_body_is_rejected(self):
        with pytest.raises(HTTPError) as excinfo:
            parse(b"POST /predict HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        assert excinfo.value.status == 400

    def test_invalid_json_body_maps_to_400(self):
        request = parse(
            b"POST /predict HTTP/1.1\r\nContent-Length: 4\r\n\r\nnope"
        )
        with pytest.raises(HTTPError) as excinfo:
            request.json()
        assert excinfo.value.status == 400

    def test_two_requests_on_one_connection(self):
        raw = (
            b"GET /healthz HTTP/1.1\r\n\r\n"
            b"GET /metrics HTTP/1.1\r\n\r\n"
        )

        async def drive():
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            reader.feed_eof()
            first = await read_request(reader, max_body_bytes=1024)
            second = await read_request(reader, max_body_bytes=1024)
            third = await read_request(reader, max_body_bytes=1024)
            return first, second, third

        first, second, third = asyncio.run(drive())
        assert first.path == "/healthz"
        assert second.path == "/metrics"
        assert third is None


class TestRenderResponse:
    def _parse_head(self, rendered: bytes):
        head, _, body = rendered.partition(b"\r\n\r\n")
        lines = head.split(b"\r\n")
        headers = {}
        for line in lines[1:]:
            name, _, value = line.decode().partition(":")
            headers[name.strip().lower()] = value.strip()
        return lines[0], headers, body

    def test_fast_path_matches_generic_shape(self):
        body = b'{"label":3}'
        fast = render_response(200, body)
        status_line, headers, rendered_body = self._parse_head(fast)
        assert status_line == b"HTTP/1.1 200 OK"
        assert headers["content-type"] == "application/json"
        assert headers["content-length"] == str(len(body))
        assert headers["connection"] == "keep-alive"
        assert rendered_body == body

    def test_non_200_uses_phrase_table(self):
        status_line, headers, _ = self._parse_head(
            render_response(404, b"{}", keep_alive=False)
        )
        assert status_line == b"HTTP/1.1 404 Not Found"
        assert headers["connection"] == "close"

    def test_extra_headers_are_appended(self):
        _, headers, _ = self._parse_head(
            render_response(200, b"{}", extra_headers=(("X-Generation", "7"),))
        )
        assert headers["x-generation"] == "7"

    def test_json_response_round_trips(self):
        rendered = json_response({"labels": [1, -1], "ok": True})
        _, _, body = rendered.partition(b"\r\n\r\n")
        assert json.loads(body) == {"labels": [1, -1], "ok": True}

    def test_json_response_emits_nonfinite_tokens(self):
        rendered = json_response({"gain": float("-inf")})
        _, _, body = rendered.partition(b"\r\n\r\n")
        assert b"-Infinity" in body

    def test_keep_alive_flag_in_dataclass_default(self):
        assert HTTPRequest(method="GET", path="/", query="").keep_alive is True
