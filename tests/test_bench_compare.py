"""Regression-gate semantics of ``repro-bench compare``."""

import json

import pytest

from repro.bench import registry
from repro.bench.compare import baseline_from_summary, compare_run, load_baseline
from repro.bench.scenario import MetricSpec, Scenario, TaskSpec


def _noop_plan(config):
    return [TaskSpec(name="all", params=dict(config))]


def _noop_execute(params):
    return {}


def _noop_aggregate(payloads):
    return {"metrics": {}, "table": "", "details": {}}


@pytest.fixture
def gate_scenario():
    scenario = Scenario(
        scenario_id="demo_gate",
        figure="test",
        title="compare-gate scenario",
        group="robustness",
        scale_configs={scale: {} for scale in ("smoke", "reduced", "paper")},
        plan=_noop_plan,
        execute=_noop_execute,
        aggregate=_noop_aggregate,
        metrics=(
            MetricSpec("ari", "accuracy", "higher", 0.1),
            MetricSpec("drop", "accuracy", "lower", 0.1),
            MetricSpec("drift", "accuracy", "match", 0.1),
            MetricSpec("speedup", "throughput", "higher", 0.2),
            MetricSpec("seconds", "timing"),
        ),
    )
    registry.register(scenario)
    yield scenario
    registry.unregister("demo_gate")


def _summary(metrics, failures=None):
    return {
        "scale": "smoke",
        "scenarios": {"demo_gate": {"metrics": metrics}},
        "failures": failures or {},
    }


BASE = {"ari": 0.9, "drop": 0.2, "drift": 0.5, "speedup": 3.0, "seconds": 4.0}


class TestGating:
    def test_identical_run_passes(self, gate_scenario):
        report = compare_run(_summary(dict(BASE)), _summary(dict(BASE)),
                             scenario_ids=["demo_gate"])
        assert report.ok
        assert {v.status for v in report.verdicts} == {"ok", "info"}

    def test_within_tolerance_passes(self, gate_scenario):
        current = dict(BASE, ari=0.85, drop=0.25, drift=0.55, speedup=2.6)
        report = compare_run(_summary(current), _summary(dict(BASE)),
                             scenario_ids=["demo_gate"])
        assert report.ok

    def test_improvements_never_fail(self, gate_scenario):
        current = dict(BASE, ari=1.0, drop=0.0, speedup=9.0)
        report = compare_run(_summary(current), _summary(dict(BASE)),
                             scenario_ids=["demo_gate"])
        assert report.ok
        assert any(v.status == "improved" for v in report.verdicts)

    def test_accuracy_regression_fails(self, gate_scenario):
        report = compare_run(_summary(dict(BASE, ari=0.7)), _summary(dict(BASE)),
                             scenario_ids=["demo_gate"])
        assert not report.ok
        assert [v.metric for v in report.failures] == ["ari"]

    def test_lower_direction_regression_fails(self, gate_scenario):
        report = compare_run(_summary(dict(BASE, drop=0.5)), _summary(dict(BASE)),
                             scenario_ids=["demo_gate"])
        assert [v.metric for v in report.failures] == ["drop"]

    def test_match_direction_fails_both_ways(self, gate_scenario):
        for drift in (0.3, 0.7):
            report = compare_run(_summary(dict(BASE, drift=drift)), _summary(dict(BASE)),
                                 scenario_ids=["demo_gate"])
            assert [v.metric for v in report.failures] == ["drift"]

    def test_throughput_tolerance_is_relative(self, gate_scenario):
        # 20% of 3.0 = 0.6 allowed: 2.5 passes, 2.3 fails.
        ok = compare_run(_summary(dict(BASE, speedup=2.5)), _summary(dict(BASE)),
                         scenario_ids=["demo_gate"])
        assert ok.ok
        bad = compare_run(_summary(dict(BASE, speedup=2.3)), _summary(dict(BASE)),
                          scenario_ids=["demo_gate"])
        assert [v.metric for v in bad.failures] == ["speedup"]

    def test_timing_metrics_never_gate(self, gate_scenario):
        report = compare_run(_summary(dict(BASE, seconds=400.0)), _summary(dict(BASE)),
                             scenario_ids=["demo_gate"])
        assert report.ok

    def test_nan_metric_fails(self, gate_scenario):
        report = compare_run(_summary(dict(BASE, ari=float("nan"))), _summary(dict(BASE)),
                             scenario_ids=["demo_gate"])
        assert [v.metric for v in report.failures] == ["ari"]
        assert "NaN" in report.failures[0].note

    def test_missing_metric_fails(self, gate_scenario):
        current = {k: v for k, v in BASE.items() if k != "ari"}
        report = compare_run(_summary(current), _summary(dict(BASE)),
                             scenario_ids=["demo_gate"])
        assert [v.metric for v in report.failures] == ["ari"]
        assert report.failures[0].status == "missing"

    def test_missing_scenario_is_an_error(self, gate_scenario):
        summary = {"scale": "smoke", "scenarios": {}, "failures": {}}
        report = compare_run(summary, _summary(dict(BASE)), scenario_ids=["demo_gate"])
        assert not report.ok
        assert report.errors

    def test_run_failures_are_errors(self, gate_scenario):
        summary = _summary(dict(BASE), failures={"demo_gate/all": "boom"})
        report = compare_run(summary, _summary(dict(BASE)), scenario_ids=["demo_gate"])
        assert not report.ok

    def test_scenario_without_baseline_is_skipped(self, gate_scenario):
        baseline = {"scale": "smoke", "scenarios": {}, "failures": {}}
        report = compare_run(_summary(dict(BASE)), baseline, scenario_ids=["demo_gate"])
        assert report.ok and not report.verdicts


class TestExactMode:
    def test_exact_requires_identical_accuracy_values(self, gate_scenario):
        report = compare_run(
            _summary(dict(BASE, ari=BASE["ari"] + 1e-9)),
            _summary(dict(BASE)),
            scenario_ids=["demo_gate"],
            exact=True,
        )
        assert [v.metric for v in report.failures] == ["ari"]

    def test_exact_exempts_throughput_and_timing(self, gate_scenario):
        report = compare_run(
            _summary(dict(BASE, speedup=1.0, seconds=99.0)),
            _summary(dict(BASE)),
            scenario_ids=["demo_gate"],
            exact=True,
        )
        assert report.ok


class TestBaselineFiles:
    def test_round_trip_through_disk(self, gate_scenario, tmp_path):
        baseline = baseline_from_summary(_summary(dict(BASE)))
        path = tmp_path / "BENCH_demo.json"
        path.write_text(json.dumps(baseline))
        loaded = load_baseline(path)
        report = compare_run(_summary(dict(BASE)), loaded, scenario_ids=["demo_gate"])
        assert report.ok

    def test_run_summary_accepted_as_baseline(self, gate_scenario, tmp_path):
        path = tmp_path / "summary.json"
        doc = dict(_summary(dict(BASE)), schema_version=1)
        path.write_text(json.dumps(doc))
        assert load_baseline(path)["scenarios"]["demo_gate"]["metrics"] == BASE

    def test_non_baseline_file_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"speedup": 3.0}))
        with pytest.raises(ValueError):
            load_baseline(path)
