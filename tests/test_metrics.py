"""Tests for the auxiliary evaluation metrics."""

import numpy as np
import pytest

from repro.evaluation.metrics import (
    clustering_report,
    confusion_matrix,
    dimension_selection_scores,
    normalized_mutual_information,
    outlier_detection_scores,
    purity,
)


class TestConfusionMatrix:
    def test_counts(self):
        matrix, true_ids, pred_ids = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        assert matrix.sum() == 4
        assert matrix[list(true_ids).index(0), list(pred_ids).index(0)] == 1
        assert matrix[list(true_ids).index(1), list(pred_ids).index(1)] == 2

    def test_outlier_row_last(self):
        _, true_ids, pred_ids = confusion_matrix([0, -1], [0, 0])
        assert true_ids[-1] == -1
        assert -1 not in pred_ids

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix([0, 1], [0])


class TestPurityAndNmi:
    def test_perfect_purity(self):
        assert purity([0, 0, 1, 1], [1, 1, 0, 0]) == pytest.approx(1.0)

    def test_mixed_cluster_purity(self):
        assert purity([0, 0, 1, 1], [0, 0, 0, 0]) == pytest.approx(0.5)

    def test_purity_outliers_are_singletons(self):
        assert purity([0, 1], [-1, -1]) == pytest.approx(1.0)

    def test_nmi_identical_partitions(self):
        assert normalized_mutual_information([0, 0, 1, 1], [1, 1, 0, 0]) == pytest.approx(1.0)

    def test_nmi_independent_partitions_low(self):
        rng = np.random.default_rng(3)
        true = np.repeat(np.arange(4), 100)
        pred = rng.integers(0, 4, size=400)
        assert normalized_mutual_information(true, pred) < 0.1

    def test_nmi_bounds(self):
        rng = np.random.default_rng(5)
        true = rng.integers(0, 3, size=60)
        pred = rng.integers(-1, 3, size=60)
        value = normalized_mutual_information(true, pred)
        assert -1e-9 <= value <= 1.0 + 1e-9


class TestDimensionSelectionScores:
    def test_perfect_recovery(self):
        truth = [[0, 1, 2], [3, 4]]
        scores = dimension_selection_scores(truth, truth)
        assert scores.precision == pytest.approx(1.0)
        assert scores.recall == pytest.approx(1.0)
        assert scores.f1 == pytest.approx(1.0)

    def test_partial_recovery(self):
        truth = [[0, 1, 2, 3]]
        predicted = [[0, 1, 9]]
        scores = dimension_selection_scores(truth, predicted)
        assert scores.precision == pytest.approx(2 / 3)
        assert scores.recall == pytest.approx(0.5)

    def test_matching_by_jaccard_handles_permuted_clusters(self):
        truth = [[0, 1], [5, 6]]
        predicted = [[5, 6], [0, 1]]  # clusters reported in the other order
        scores = dimension_selection_scores(truth, predicted)
        assert scores.f1 == pytest.approx(1.0)

    def test_explicit_matching(self):
        truth = [[0, 1], [5, 6]]
        predicted = [[0, 1], [5, 6]]
        scores = dimension_selection_scores(truth, predicted, matching=[1, 0])
        assert scores.recall < 1.0

    def test_empty_prediction(self):
        scores = dimension_selection_scores([[0, 1]], [[]])
        assert scores.recall == 0.0
        assert scores.f1 == 0.0

    def test_wrong_matching_length_rejected(self):
        with pytest.raises(ValueError):
            dimension_selection_scores([[0]], [[0]], matching=[0, 1])


class TestOutlierScores:
    def test_perfect_detection(self):
        true = [0, 0, -1, 1, -1]
        scores = outlier_detection_scores(true, true)
        assert scores.precision == pytest.approx(1.0)
        assert scores.recall == pytest.approx(1.0)
        assert scores.n_true_outliers == 2

    def test_no_outliers_anywhere(self):
        scores = outlier_detection_scores([0, 1], [1, 0])
        assert scores.precision == pytest.approx(1.0)
        assert scores.recall == pytest.approx(1.0)

    def test_false_positives_lower_precision(self):
        scores = outlier_detection_scores([0, 0, 0, 0], [0, 0, -1, -1])
        assert scores.precision == pytest.approx(0.0)

    def test_missed_outliers_lower_recall(self):
        scores = outlier_detection_scores([-1, -1, 0, 0], [-1, 0, 0, 0])
        assert scores.recall == pytest.approx(0.5)


class TestClusteringReport:
    def test_contains_expected_keys(self):
        report = clustering_report(
            [0, 0, 1, 1],
            [0, 0, 1, -1],
            true_dimensions=[[0], [1]],
            predicted_dimensions=[[0], [1, 2]],
        )
        for key in ("ari", "purity", "nmi", "outlier_precision", "dimension_f1"):
            assert key in report

    def test_dimension_scores_omitted_without_inputs(self):
        report = clustering_report([0, 1], [0, 1])
        assert "dimension_f1" not in report
