"""Tests of the serving index's streaming-maintenance API.

``add_cluster`` / ``remove_cluster`` / ``reanchor_cluster`` /
``trim_projections`` / ``refresh_threshold`` / ``export_artifact`` are
the serving-layer primitives the streaming engine is built on; they must
compose with the existing scoring and persistence contracts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.artifact import load_artifact
from repro.serving.index import ProjectedClusterIndex


@pytest.fixture()
def artifact(fitted_sspc):
    return fitted_sspc.to_artifact()


@pytest.fixture()
def index(artifact):
    return ProjectedClusterIndex(artifact)


def make_new_cluster_rows(rng, n_dimensions, dims, center, spread=0.5, n_rows=40):
    rows = rng.uniform(0.0, 100.0, size=(n_rows, n_dimensions))
    rows[:, dims] = center + rng.normal(scale=spread, size=(n_rows, len(dims)))
    return rows


class TestAddCluster:
    def test_statistics_come_from_the_rows(self, index, rng):
        dims = np.asarray([1, 4, 7])
        rows = make_new_cluster_rows(rng, index.n_dimensions, dims, center=-40.0)
        position = index.add_cluster(dims, rows)
        assert position == index.n_clusters - 1
        stats = index.cluster_statistics(position)
        assert stats.size == rows.shape[0]
        np.testing.assert_array_equal(stats.dimensions, dims)
        np.testing.assert_allclose(stats.mean, rows.mean(axis=0))
        np.testing.assert_allclose(stats.variance, rows.var(axis=0, ddof=1))
        np.testing.assert_allclose(stats.median_selected, np.median(rows[:, dims], axis=0))

    def test_new_cluster_wins_its_own_traffic(self, index, rng):
        dims = np.asarray([1, 4, 7])
        rows = make_new_cluster_rows(rng, index.n_dimensions, dims, center=-40.0)
        before = index.predict(rows)
        assert np.all(before == -1)  # far from every fitted cluster
        position = index.add_cluster(dims, rows)
        after = index.predict(rows + 0.01)
        assert np.count_nonzero(after == position) > 0.9 * rows.shape[0]

    def test_batch_single_equivalence_still_holds(self, index, rng):
        dims = np.asarray([0, 2])
        rows = make_new_cluster_rows(rng, index.n_dimensions, dims, center=-25.0)
        index.add_cluster(dims, rows)
        queries = rng.uniform(-50, 150, size=(30, index.n_dimensions))
        batch = index.gains_matrix(queries)
        single = np.stack([index.gains_single(query) for query in queries])
        assert np.array_equal(batch, single)

    def test_rejects_bad_dimensions(self, index, rng):
        rows = rng.uniform(size=(5, index.n_dimensions))
        with pytest.raises(ValueError):
            index.add_cluster(np.asarray([index.n_dimensions]), rows)


class TestRemoveCluster:
    def test_removal_shifts_positions(self, index, rng):
        k = index.n_clusters
        index.remove_cluster(0)
        assert index.n_clusters == k - 1
        queries = rng.uniform(0, 100, size=(20, index.n_dimensions))
        assert index.gains_matrix(queries).shape == (20, k - 1)

    def test_out_of_range_rejected(self, index):
        with pytest.raises(IndexError):
            index.remove_cluster(index.n_clusters)


class TestReanchorCluster:
    def test_reanchor_replaces_subspace_and_statistics(self, index, rng):
        dims = np.asarray([3, 9, 12])
        rows = make_new_cluster_rows(rng, index.n_dimensions, dims, center=70.0)
        old_score = index._clusters[1].score
        index.reanchor_cluster(1, dims, rows)
        stats = index.cluster_statistics(1)
        np.testing.assert_array_equal(stats.dimensions, dims)
        assert stats.size == rows.shape[0]
        np.testing.assert_allclose(stats.median_selected, np.median(rows[:, dims], axis=0))
        assert index._clusters[1].score == old_score  # score survives the re-anchor


class TestTrimProjections:
    def test_trim_bounds_the_buffer_and_windows_the_median(self, index, rng):
        position = 0
        dims = index.cluster_statistics(position).dimensions
        rows = make_new_cluster_rows(
            rng, index.n_dimensions, dims,
            center=index._clusters[position].center_selected, spread=0.2, n_rows=50,
        )
        index.partial_update(rows, labels=np.full(rows.shape[0], position))
        index.trim_projections(position, keep_last=30)
        cluster = index._clusters[position]
        assert cluster.projections.shape[0] == 30
        np.testing.assert_allclose(
            cluster.median_selected, np.median(cluster.projections, axis=0)
        )

    def test_trim_requires_positive_window(self, index):
        with pytest.raises(ValueError):
            index.trim_projections(0, keep_last=0)

    def test_projection_window_bounds_folds_with_one_median_pass(self, artifact, rng):
        windowed = ProjectedClusterIndex(artifact, projection_window=20)
        position = 0
        dims = windowed.cluster_statistics(position).dimensions
        rows = make_new_cluster_rows(
            rng, windowed.n_dimensions, dims,
            center=windowed._clusters[position].center_selected, spread=0.2, n_rows=35,
        )
        windowed.partial_update(rows, labels=np.full(rows.shape[0], position))
        cluster = windowed._clusters[position]
        assert cluster.projections.shape[0] == 20
        np.testing.assert_array_equal(
            cluster.median_selected, np.median(cluster.projections, axis=0)
        )
        # The window also bounds clusters built from rows directly.
        added = windowed.add_cluster(np.asarray([1, 2]), rng.uniform(size=(40, windowed.n_dimensions)))
        assert windowed._clusters[added].projections.shape[0] == 20


class TestRefreshThreshold:
    def test_refresh_changes_gains_consistently(self, index, rng):
        queries = rng.uniform(0, 100, size=(15, index.n_dimensions))
        before = index.gains_matrix(queries)
        index.refresh_threshold(np.full(index.n_dimensions, 1e6))
        after = index.gains_matrix(queries)
        # Huge global variances -> huge thresholds -> every deviation
        # penalised less -> gains cannot decrease.
        finite = np.isfinite(before)
        assert np.all(after[finite] >= before[finite])
        assert index.threshold_description == {"scheme": "m", "m": 0.5}


class TestExportArtifact:
    def test_export_round_trips_bit_identically(self, index, rng, tmp_path):
        dims = np.asarray([1, 4, 7])
        rows = make_new_cluster_rows(rng, index.n_dimensions, dims, center=-40.0)
        index.add_cluster(dims, rows)
        index.remove_cluster(0)
        exported = index.export_artifact(metadata={"origin": "test"})
        exported.save(tmp_path / "exported")
        rebuilt = ProjectedClusterIndex(load_artifact(tmp_path / "exported"))
        queries = rng.uniform(-60, 160, size=(40, index.n_dimensions))
        assert np.array_equal(index.gains_matrix(queries), rebuilt.gains_matrix(queries))
        np.testing.assert_array_equal(index.predict(queries), rebuilt.predict(queries))
        assert rebuilt.cluster_sizes().tolist() == index.cluster_sizes().tolist()

    def test_fold_into_refuses_structural_change_but_export_works(self, artifact, rng):
        index = ProjectedClusterIndex(artifact)
        dims = np.asarray([2, 5])
        rows = make_new_cluster_rows(rng, index.n_dimensions, dims, center=-30.0)
        index.add_cluster(dims, rows)
        with pytest.raises(ValueError):
            index.fold_into(artifact)
        exported = index.export_artifact()
        assert exported.n_clusters == index.n_clusters

    def test_export_keeps_threshold_refresh(self, index, rng, tmp_path):
        new_variance = np.full(index.n_dimensions, 123.0)
        index.refresh_threshold(new_variance)
        exported = index.export_artifact()
        exported.save(tmp_path / "refreshed")
        rebuilt = ProjectedClusterIndex(load_artifact(tmp_path / "refreshed"))
        np.testing.assert_allclose(rebuilt.global_variance, new_variance)
