"""Tests for repro.utils.timing."""

import pytest

from repro.utils.timing import Stopwatch


class TestStopwatch:
    def test_measure_records_duration(self):
        watch = Stopwatch()
        with watch.measure("task"):
            sum(range(1000))
        assert watch.count("task") == 1
        assert watch.total("task") >= 0.0

    def test_multiple_measurements_accumulate(self):
        watch = Stopwatch()
        for _ in range(3):
            with watch.measure("task"):
                pass
        assert watch.count("task") == 3
        assert watch.total("task") == pytest.approx(sum(watch.records["task"]))

    def test_add_external_duration(self):
        watch = Stopwatch()
        watch.add("external", 1.5)
        watch.add("external", 0.5)
        assert watch.total("external") == pytest.approx(2.0)
        assert watch.mean("external") == pytest.approx(1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Stopwatch().add("x", -0.1)

    def test_unknown_label_total_is_zero(self):
        assert Stopwatch().total("missing") == 0.0

    def test_unknown_label_mean_raises(self):
        with pytest.raises(KeyError):
            Stopwatch().mean("missing")

    def test_labels_sorted(self):
        watch = Stopwatch()
        watch.add("b", 0.1)
        watch.add("a", 0.1)
        assert watch.labels() == ["a", "b"]
