"""The micro-batcher: flush policy, self-clocking, error propagation."""

import asyncio

import numpy as np
import pytest

from repro.server.batcher import FLUSH_REASONS, BatcherStats, MicroBatcher


class RecordingFlush:
    """A flush_fn that records every batch it receives."""

    def __init__(self, gate: "asyncio.Event | None" = None):
        self.batches = []
        self.gate = gate

    async def __call__(self, points: np.ndarray):
        self.batches.append(np.array(points))
        if self.gate is not None:
            await self.gate.wait()
        # Echo each row's first coordinate as its "label".
        return [float(row[0]) for row in points]


def test_rejects_bad_parameters():
    flush = RecordingFlush()
    with pytest.raises(ValueError):
        MicroBatcher(flush, max_batch=0)
    with pytest.raises(ValueError):
        MicroBatcher(flush, max_wait_us=-1.0)
    with pytest.raises(ValueError):
        MicroBatcher(flush, max_concurrency=0)


def test_single_submit_flushes_on_quiesce_without_timer():
    flush = RecordingFlush()
    # A wait long enough that hitting the deadline would hang the test:
    # the quiesce check must fire long before it.
    batcher = MicroBatcher(flush, max_batch=64, max_wait_us=30_000_000.0)

    async def drive():
        return await asyncio.wait_for(
            batcher.submit(np.array([7.0, 0.0])), timeout=5.0
        )

    assert asyncio.run(drive()) == 7.0
    assert batcher.stats.flush_reasons["quiesce"] == 1
    assert [batch.shape for batch in flush.batches] == [(1, 2)]


def test_concurrent_submits_coalesce_into_one_flush():
    flush = RecordingFlush()
    batcher = MicroBatcher(flush, max_batch=64, max_wait_us=50_000.0)

    async def drive():
        return await asyncio.gather(
            *(batcher.submit(np.array([float(i), 0.0])) for i in range(10))
        )

    results = asyncio.run(drive())
    assert results == [float(i) for i in range(10)]
    assert len(flush.batches) == 1
    assert flush.batches[0].shape == (10, 2)
    assert batcher.stats.n_submitted == 10
    assert batcher.stats.n_flushes == 1


def test_full_batch_flushes_immediately():
    flush = RecordingFlush()
    batcher = MicroBatcher(flush, max_batch=4, max_wait_us=30_000_000.0)

    async def drive():
        return await asyncio.gather(
            *(batcher.submit(np.array([float(i)])) for i in range(8))
        )

    results = asyncio.run(drive())
    assert results == [float(i) for i in range(8)]
    assert batcher.stats.flush_reasons["full"] >= 1
    assert all(batch.shape[0] <= 4 for batch in flush.batches)


def test_busy_gate_chains_stragglers_into_one_batch():
    flush = RecordingFlush()
    batcher = MicroBatcher(flush, max_batch=64, max_wait_us=50_000.0)

    async def drive():
        release = asyncio.Event()
        flush.gate = release
        first = asyncio.ensure_future(batcher.submit(np.array([0.0])))
        # Let the first submission flush (its flush_fn now blocks on the
        # gate), then pile stragglers up behind the busy kernel.
        while not flush.batches:
            await asyncio.sleep(0.001)
        stragglers = [
            asyncio.ensure_future(batcher.submit(np.array([float(i)])))
            for i in range(1, 6)
        ]
        await asyncio.sleep(0.01)  # past max_wait: the gate must hold them
        assert batcher.depth == 5, "busy gate should hold pending submissions"
        release.set()
        return await asyncio.gather(first, *stragglers)

    results = asyncio.run(drive())
    assert results == [float(i) for i in range(6)]
    # One singleton flush, then every straggler in a single chained batch.
    assert [batch.shape[0] for batch in flush.batches] == [1, 5]
    assert batcher.stats.flush_reasons["chained"] == 1


def test_non_adaptive_waits_for_the_deadline():
    flush = RecordingFlush()
    batcher = MicroBatcher(flush, max_batch=64, max_wait_us=20_000.0, adaptive=False)

    async def drive():
        task = asyncio.ensure_future(batcher.submit(np.array([1.0])))
        await asyncio.sleep(0.005)
        assert not task.done(), "fixed-wait batcher must hold until the deadline"
        return await asyncio.wait_for(task, timeout=5.0)

    assert asyncio.run(drive()) == 1.0
    assert batcher.stats.flush_reasons["timeout"] == 1
    assert batcher.stats.flush_reasons["quiesce"] == 0


def test_flush_error_propagates_to_every_waiter():
    async def failing(points):
        raise RuntimeError("kernel exploded")

    batcher = MicroBatcher(failing, max_batch=64, max_wait_us=10_000.0)

    async def drive():
        results = await asyncio.gather(
            *(batcher.submit(np.array([float(i)])) for i in range(3)),
            return_exceptions=True,
        )
        return results

    results = asyncio.run(drive())
    assert len(results) == 3
    assert all(isinstance(r, RuntimeError) for r in results)


def test_result_count_mismatch_is_an_error():
    async def short(points):
        return [0.0]  # always one result, regardless of batch size

    batcher = MicroBatcher(short, max_batch=64, max_wait_us=10_000.0)

    async def drive():
        return await asyncio.gather(
            batcher.submit(np.array([1.0])),
            batcher.submit(np.array([2.0])),
            return_exceptions=True,
        )

    results = asyncio.run(drive())
    assert all(isinstance(r, RuntimeError) for r in results)


def test_drain_flushes_pending_and_closes():
    flush = RecordingFlush()
    batcher = MicroBatcher(flush, max_batch=64, max_wait_us=30_000_000.0, adaptive=False)

    async def drive():
        task = asyncio.ensure_future(batcher.submit(np.array([5.0])))
        await asyncio.sleep(0)  # let submit enqueue
        await batcher.drain()
        result = await task
        with pytest.raises(RuntimeError):
            await batcher.submit(np.array([6.0]))
        return result

    assert asyncio.run(drive()) == 5.0
    assert batcher.stats.flush_reasons["drain"] == 1


def test_stats_snapshot_shape():
    stats = BatcherStats()
    stats.record_flush("quiesce", 4, [100.0, 200.0, 300.0, 400.0])
    stats.record_flush("full", 8, [50.0] * 8)
    snapshot = stats.snapshot()
    assert snapshot["n_flushes"] == 2
    assert set(snapshot["flush_reasons"]) >= set(FLUSH_REASONS)
    assert snapshot["mean_batch_size"] == pytest.approx(6.0)
    assert snapshot["max_batch_size"] == 8
    assert snapshot["p99_queue_wait_us"] >= snapshot["p50_queue_wait_us"]


def test_stats_memory_is_bounded():
    # The histograms hold a fixed bucket array no matter how many
    # flushes are recorded (the old implementation kept sample rings).
    stats = BatcherStats()
    for _ in range(5000):
        stats.record_flush("quiesce", 1, [10.0])
    assert len(stats.batch_size.bucket_counts) == len(stats.batch_size.bounds) + 1
    assert stats.batch_size.count == 5000
    assert stats.queue_wait_us.count == 5000
    assert stats.n_flushes == 5000
    snapshot = stats.snapshot()
    assert snapshot["n_batched"] == 5000
    assert snapshot["mean_batch_size"] == pytest.approx(1.0)
