"""Equivalence suite: cached/fused hot paths versus the naive reference.

The optimised SSPC hot loop (shared statistics workspace + fused
assignment kernel + gain-matrix reuse) must be **bit-identical** to the
naive reference — per-cluster gain passes and a fresh statistics pass at
every consumer — for the same ``random_state``.  These tests pin that
invariant end to end (labels, selected dimensions, ``phi``) and at the
individual kernel level.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.assignment as assignment_module
from repro.core.assignment import ClusterState, assign_objects, compute_gains_matrix
from repro.core.objective import ObjectiveFunction
from repro.core.sspc import SSPC
from repro.core.stats_cache import ClusterStatsCache
from repro.core.thresholds import ChiSquareThreshold, VarianceRatioThreshold
from repro.data.generator import SyntheticDataGenerator
from repro.semisupervision.constraints import PairwiseConstraints
from repro.semisupervision.knowledge import (
    Knowledge,
    LabeledDimensions,
    LabeledObjects,
)


class NaiveSSPC(SSPC):
    """SSPC with the statistics cache disabled (naive reference arm)."""

    _stats_cache_factory = staticmethod(
        lambda data: ClusterStatsCache(data, max_entries=0)
    )


@pytest.fixture(scope="module")
def dataset():
    return SyntheticDataGenerator(
        n_objects=300,
        n_dimensions=40,
        n_clusters=3,
        avg_cluster_dimensionality=6,
        outlier_fraction=0.05,
        random_state=11,
    ).generate(11)


def _random_states(objective, rng, n_clusters, *, equal_dim_counts=False):
    states = []
    for index in range(n_clusters):
        if equal_dim_counts:
            n_dims = 5
        else:
            n_dims = int(rng.integers(0, 9))  # includes empty dimension sets
        dims = np.sort(rng.choice(objective.n_dimensions, size=n_dims, replace=False))
        states.append(
            ClusterState(
                representative=objective.data[int(rng.integers(objective.n_objects))].copy(),
                dimensions=dims.astype(int),
                members=np.empty(0, dtype=int),
                size_hint=int(rng.integers(2, 60)),
            )
        )
    return states


@pytest.mark.parametrize("scheme", ["m", "p"])
@pytest.mark.parametrize("equal_dim_counts", [False, True])
def test_fused_gains_matrix_bit_identical(dataset, scheme, equal_dim_counts):
    threshold = VarianceRatioThreshold(m=0.4) if scheme == "m" else ChiSquareThreshold(p=0.05)
    objective = ObjectiveFunction(dataset.data, threshold)
    rng = np.random.default_rng(5)
    for trial in range(5):
        states = _random_states(objective, rng, n_clusters=4, equal_dim_counts=equal_dim_counts)
        fused = compute_gains_matrix(objective, states, fused=True)
        naive = compute_gains_matrix(objective, states, fused=False)
        assert np.array_equal(fused, naive), "trial %d diverged" % trial


def test_fused_kernel_handles_all_empty_dimension_sets(dataset):
    objective = ObjectiveFunction(dataset.data, VarianceRatioThreshold(m=0.5))
    states = [
        ClusterState(
            representative=dataset.data[i].copy(),
            dimensions=np.empty(0, dtype=int),
            members=np.empty(0, dtype=int),
            size_hint=2,
        )
        for i in range(3)
    ]
    gains = compute_gains_matrix(objective, states)
    assert gains.shape == (dataset.data.shape[0], 3)
    assert np.all(np.isneginf(gains))


def test_assign_objects_return_gains_consistency(dataset):
    objective = ObjectiveFunction(dataset.data, VarianceRatioThreshold(m=0.5))
    states = _random_states(objective, np.random.default_rng(3), n_clusters=3)
    labels_only = assign_objects(objective, states)
    labels, gains = assign_objects(objective, states, return_gains=True)
    assert np.array_equal(labels_only, labels)
    assert gains.shape == (objective.n_objects, 3)
    # The labels follow from the returned matrix.
    assigned = labels >= 0
    assert np.array_equal(
        labels[assigned], np.argmax(gains, axis=1)[assigned]
    )


def test_force_assign_reuse_matches_recompute(dataset):
    """Gain-matrix reuse in ``_force_assign`` equals the per-cluster recompute."""
    objective = ObjectiveFunction(dataset.data, VarianceRatioThreshold(m=0.3))
    states = _random_states(objective, np.random.default_rng(9), n_clusters=4)
    labels, gains = assign_objects(objective, states, return_gains=True)
    outliers = np.flatnonzero(labels == -1)
    if outliers.size == 0:
        pytest.skip("no outliers produced by this configuration")

    model = SSPC(n_clusters=4)
    fast = model._force_assign(labels, gains)

    # Seed implementation: recompute every cluster's gains from scratch.
    reference = labels.copy()
    redone = np.full((outliers.size, len(states)), -np.inf)
    for index, state in enumerate(states):
        if state.dimensions.size == 0:
            continue
        redone[:, index] = objective.assignment_gains(
            state.representative, state.dimensions, max(state.size_hint, 2)
        )[outliers]
    reference[outliers] = np.argmax(redone, axis=1)

    assert np.array_equal(fast, reference)
    assert np.all(fast >= 0)


def _knowledge_for(dataset):
    labels = dataset.labels
    object_pairs = [(int(i), int(labels[i])) for i in np.flatnonzero(labels >= 0)[:15]]
    dimension_pairs = [
        (int(dim), cluster)
        for cluster in range(2)
        for dim in dataset.relevant_dimensions[cluster][:3]
    ]
    return Knowledge(
        objects=LabeledObjects.from_pairs(object_pairs),
        dimensions=LabeledDimensions.from_pairs(dimension_pairs),
    )


def _constraints_for(dataset):
    labels = dataset.labels
    rng = np.random.default_rng(2)
    members = np.flatnonzero(labels >= 0)
    must, cannot = [], []
    for _ in range(12):
        a, b = rng.choice(members, size=2, replace=False)
        if labels[a] == labels[b]:
            must.append((int(a), int(b)))
        else:
            cannot.append((int(a), int(b)))
    return PairwiseConstraints.from_pairs(must, cannot)


def _fit_pair(dataset, monkeypatch, *, knowledge=None, constraints=None, **params):
    """Fit the optimised and the naive arm with identical seeds."""
    fast = SSPC(n_clusters=3, random_state=7, **params).fit(
        dataset.data, knowledge, constraints=constraints
    )

    # Naive arm: no statistics cache and the unfused per-cluster gain loop.
    original = compute_gains_matrix
    monkeypatch.setattr(
        assignment_module,
        "compute_gains_matrix",
        lambda objective, states, fused=True: original(objective, states, fused=False),
    )
    naive = NaiveSSPC(n_clusters=3, random_state=7, **params).fit(
        dataset.data, knowledge, constraints=constraints
    )
    monkeypatch.undo()
    return fast, naive


@pytest.mark.parametrize(
    "case",
    ["plain", "p_scheme", "no_outliers", "knowledge", "constraints"],
)
def test_full_fit_byte_identical_to_naive_reference(dataset, monkeypatch, case):
    params = {}
    knowledge = None
    constraints = None
    if case == "p_scheme":
        params["p"] = 0.05
    elif case == "no_outliers":
        params["allow_outliers"] = False
    elif case == "knowledge":
        knowledge = _knowledge_for(dataset)
    elif case == "constraints":
        constraints = _constraints_for(dataset)

    fast, naive = _fit_pair(
        dataset, monkeypatch, knowledge=knowledge, constraints=constraints, **params
    )

    assert np.array_equal(fast.labels_, naive.labels_)
    assert len(fast.selected_dimensions_) == len(naive.selected_dimensions_)
    for fast_dims, naive_dims in zip(fast.selected_dimensions_, naive.selected_dimensions_):
        assert np.array_equal(fast_dims, naive_dims)
    assert fast.objective_ == naive.objective_
    assert fast.n_iterations_ == naive.n_iterations_
    # The optimised arm actually used the cache; the naive arm never did.
    assert fast.stats_cache_.hits > 0
    assert naive.stats_cache_.hits == 0


def test_fit_records_fewer_statistics_passes(dataset):
    fast = SSPC(n_clusters=3, random_state=7).fit(dataset.data)
    naive = NaiveSSPC(n_clusters=3, random_state=7).fit(dataset.data)
    assert fast.stats_cache_.n_stat_passes * 2 <= naive.stats_cache_.n_stat_passes


def test_threshold_values_memoized():
    data = np.random.default_rng(1).normal(size=(50, 8))
    for threshold in (VarianceRatioThreshold(m=0.5), ChiSquareThreshold(p=0.05)):
        threshold.fit(data)
        first = threshold.values(10)
        second = threshold.values(10)
        assert first is second  # memoized, not recomputed
        assert not first.flags.writeable
        # ChiSquare keys on degrees of freedom; size-independent schemes
        # share one entry for every size.
        if isinstance(threshold, ChiSquareThreshold):
            assert threshold.values(11) is not first
            assert np.array_equal(threshold.values(10), first)
        else:
            assert threshold.values(37) is first
        # Refitting invalidates the memo.
        threshold.fit(data * 2.0)
        refreshed = threshold.values(10)
        assert refreshed is not first
        assert not np.array_equal(refreshed, first)


def test_allowed_clusters_with_partner_maps_identical(dataset):
    constraints = _constraints_for(dataset)
    maps = constraints.partner_maps()
    rng = np.random.default_rng(4)
    labels = rng.integers(-1, 3, size=dataset.data.shape[0])
    involved = sorted({i for pair in constraints.must_links + constraints.cannot_links for i in pair})
    for object_index in involved:
        with_maps = constraints.allowed_clusters(object_index, labels, 3, partner_maps=maps)
        without = constraints.allowed_clusters(object_index, labels, 3)
        assert np.array_equal(with_maps, without)


def test_grid_build_matches_per_row_reference(dataset):
    """The vectorised cell grouping reproduces the per-row dict build."""
    from repro.core.grid import Grid

    rng = np.random.default_rng(8)
    for trial in range(3):
        dims = np.sort(rng.choice(dataset.data.shape[1], size=3, replace=False))
        restrict = np.sort(
            rng.choice(dataset.data.shape[0], size=150, replace=False)
        )
        grid = Grid(dataset.data, dims, bins_per_dimension=4, restrict_to=restrict)

        # Reference: the seed implementation's row-order dictionary build.
        values = dataset.data[np.ix_(restrict, dims)]
        lows, highs = values.min(axis=0), values.max(axis=0)
        spans = np.where(highs > lows, highs - lows, 1.0)
        scaled = (values - lows) / spans * 4
        bins = np.minimum(scaled.astype(int), 3)
        reference = {}
        for row, obj in enumerate(restrict):
            key = tuple(int(b) for b in bins[row])
            reference.setdefault(key, []).append(int(obj))

        assert list(grid._cells.keys()) == list(reference.keys())  # insertion order
        for cell, members in reference.items():
            assert grid.cell_members(cell).tolist() == members


def test_grid_build_supports_many_building_dimensions(dataset):
    """No dense cell-id encoding: bins ** c may exceed the int64 range."""
    from repro.core.grid import Grid

    dims = np.arange(min(30, dataset.data.shape[1]))  # 8 ** 30 >> 2 ** 63
    grid = Grid(dataset.data, dims, bins_per_dimension=8)
    assert grid.n_cells >= 1
    total = sum(grid.cell_density(cell) for cell in grid._cells)
    assert total == dataset.data.shape[0]


def test_density_profile_matches_scalar_helper(dataset):
    from repro.core.grid import one_dimensional_density, one_dimensional_density_profile

    rng = np.random.default_rng(6)
    anchor = dataset.data[int(rng.integers(dataset.data.shape[0]))]
    restrict = np.sort(rng.choice(dataset.data.shape[0], size=120, replace=False))
    profile = one_dimensional_density_profile(
        dataset.data, anchor, bins=9, restrict_to=restrict
    )
    for dim in range(dataset.data.shape[1]):
        scalar = one_dimensional_density(
            dataset.data, dim, anchor[dim], bins=9, restrict_to=restrict
        )
        assert profile[dim] == scalar


def test_partner_maps_cover_every_link():
    constraints = PairwiseConstraints.from_pairs(
        must_links=[(0, 1), (1, 2)], cannot_links=[(0, 3), (4, 5)]
    )
    must, cannot = constraints.partner_maps()
    assert sorted(must[1]) == [0, 2]
    assert must[0] == [1] and must[2] == [1]
    assert cannot[0] == [3] and cannot[3] == [0]
    assert cannot[4] == [5] and cannot[5] == [4]
