"""The observability overhead gate: bounded cost, bit identity, coverage."""

from __future__ import annotations

import argparse

import pytest

from repro import obs
from repro.bench.perf_obs import (
    MIN_SUBSYSTEM_CATEGORIES,
    measure_disabled_hook_seconds,
    run_benchmark,
    run_workload,
)


@pytest.fixture(autouse=True)
def _obs_off():
    obs.disable()
    yield
    obs.disable()


def tiny_args(**overrides):
    params = dict(
        n_objects=240,
        n_dimensions=16,
        n_clusters=3,
        fit_iterations=3,
        stream_batches=2,
        batch_size=60,
        telemetry_requests=50,
        repeats=1,
        seed=23,
        smoke=True,
    )
    params.update(overrides)
    return argparse.Namespace(**params)


class TestOverheadGate:
    def test_report_passes_all_three_gates(self):
        report = run_benchmark(tiny_args())
        assert report["overhead_disabled_ok"]
        assert report["enabled_bit_identical"]
        assert report["subsystem_coverage_ok"]
        assert len(report["categories"]) >= MIN_SUBSYSTEM_CATEGORIES
        assert report["n_hook_calls"] > 0
        assert report["overhead_disabled_pct"] >= 0.0

    def test_workload_fingerprint_deterministic(self):
        assert run_workload(tiny_args()) == run_workload(tiny_args())

    def test_workload_fingerprint_tracks_config(self):
        assert run_workload(tiny_args()) != run_workload(tiny_args(seed=24))

    def test_disabled_hook_cost_is_sub_microsecond(self):
        # the "provably cheap" premise: one global load + None test
        assert measure_disabled_hook_seconds() < 1e-6

    def test_benchmark_leaves_obs_disabled(self):
        run_benchmark(tiny_args())
        assert not obs.enabled()

    def test_workload_unperturbed_by_outer_recorder(self):
        plain = run_workload(tiny_args())
        with obs.recording():
            traced = run_workload(tiny_args())
        assert plain == traced

    def test_telemetry_leg_is_deterministic_and_priced(self):
        from repro.bench.perf_obs import run_telemetry_workload

        assert run_telemetry_workload(tiny_args()) == run_telemetry_workload(tiny_args())
        assert run_telemetry_workload(tiny_args()) != run_telemetry_workload(
            tiny_args(telemetry_requests=51)
        )
        report = run_benchmark(tiny_args())
        assert report["n_telemetry_requests"] == 50
        assert report["per_telemetry_record_ns"] > 0
        assert report["telemetry_overhead_pct"] >= 0.0
        # the gated bound includes the telemetry term
        assert report["overhead_disabled_pct"] >= report["telemetry_overhead_pct"]
