"""Tests for must-link / cannot-link constraints (extension)."""

import numpy as np
import pytest

from repro.semisupervision.constraints import PairwiseConstraints


class TestConstruction:
    def test_from_pairs(self):
        constraints = PairwiseConstraints.from_pairs(
            must_links=[(0, 1)], cannot_links=[(2, 3)]
        )
        assert constraints.must_links == [(0, 1)]
        assert constraints.cannot_links == [(2, 3)]
        assert not constraints.is_empty()

    def test_pairs_stored_sorted(self):
        constraints = PairwiseConstraints.from_pairs(must_links=[(5, 2)])
        assert constraints.must_links == [(2, 5)]

    def test_self_link_rejected(self):
        with pytest.raises(ValueError):
            PairwiseConstraints.from_pairs(must_links=[(1, 1)])

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            PairwiseConstraints.from_pairs(cannot_links=[(-1, 2)])

    def test_inconsistent_constraints_detected(self):
        with pytest.raises(ValueError):
            PairwiseConstraints.from_pairs(
                must_links=[(0, 1), (1, 2)], cannot_links=[(0, 2)]
            )

    def test_empty(self):
        assert PairwiseConstraints().is_empty()


class TestComponents:
    def test_transitive_closure(self):
        constraints = PairwiseConstraints.from_pairs(must_links=[(0, 1), (1, 2), (5, 6)])
        components = constraints.must_link_components()
        component_sets = sorted(tuple(sorted(c)) for c in components)
        assert component_sets == [(0, 1, 2), (5, 6)]


class TestViolations:
    def test_no_violations(self):
        constraints = PairwiseConstraints.from_pairs(
            must_links=[(0, 1)], cannot_links=[(0, 2)]
        )
        labels = np.asarray([0, 0, 1])
        assert constraints.violations(labels) == 0

    def test_must_link_violation(self):
        constraints = PairwiseConstraints.from_pairs(must_links=[(0, 1)])
        assert constraints.violations(np.asarray([0, 1])) == 1

    def test_must_link_with_outlier_counts_as_violation(self):
        constraints = PairwiseConstraints.from_pairs(must_links=[(0, 1)])
        assert constraints.violations(np.asarray([0, -1])) == 1

    def test_cannot_link_violation(self):
        constraints = PairwiseConstraints.from_pairs(cannot_links=[(0, 1)])
        assert constraints.violations(np.asarray([2, 2])) == 1

    def test_cannot_link_outliers_never_violate(self):
        constraints = PairwiseConstraints.from_pairs(cannot_links=[(0, 1)])
        assert constraints.violations(np.asarray([-1, -1])) == 0


class TestAllowedClusters:
    def test_must_link_forces_partner_cluster(self):
        constraints = PairwiseConstraints.from_pairs(must_links=[(0, 1)])
        labels = np.asarray([-1, 2, 0])
        np.testing.assert_array_equal(constraints.allowed_clusters(0, labels, 3), [2])

    def test_cannot_link_excludes_partner_cluster(self):
        constraints = PairwiseConstraints.from_pairs(cannot_links=[(0, 1)])
        labels = np.asarray([-1, 1, 0])
        allowed = constraints.allowed_clusters(0, labels, 3)
        assert 1 not in allowed
        assert set(allowed.tolist()) == {0, 2}

    def test_unconstrained_object_gets_all_clusters(self):
        constraints = PairwiseConstraints.from_pairs(cannot_links=[(5, 6)])
        allowed = constraints.allowed_clusters(0, np.asarray([-1] * 7), 4)
        np.testing.assert_array_equal(allowed, [0, 1, 2, 3])

    def test_unsatisfiable_falls_back_to_all(self):
        constraints = PairwiseConstraints.from_pairs(cannot_links=[(0, 1), (0, 2)])
        labels = np.asarray([-1, 0, 1])
        allowed = constraints.allowed_clusters(0, labels, 2)
        # Both clusters excluded -> fall back to the full range.
        np.testing.assert_array_equal(allowed, [0, 1])
