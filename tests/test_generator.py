"""Tests for the synthetic data generator (Section 3 data model)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.generator import SyntheticDataGenerator, make_projected_clusters


class TestBasicShape:
    def test_shapes_and_labels(self):
        dataset = make_projected_clusters(
            n_objects=120, n_dimensions=30, n_clusters=4, avg_cluster_dimensionality=5, random_state=0
        )
        assert dataset.data.shape == (120, 30)
        assert dataset.labels.shape == (120,)
        assert dataset.n_clusters == 4
        assert len(dataset.relevant_dimensions) == 4

    def test_balanced_cluster_sizes(self):
        dataset = make_projected_clusters(
            n_objects=100, n_dimensions=20, n_clusters=4, avg_cluster_dimensionality=4, random_state=1
        )
        sizes = [dataset.cluster_members(label).size for label in range(4)]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 100

    def test_unbalanced_sizes_cover_all_objects(self):
        generator = SyntheticDataGenerator(
            n_objects=200,
            n_dimensions=20,
            n_clusters=5,
            avg_cluster_dimensionality=4,
            balanced=False,
        )
        dataset = generator.generate(random_state=3)
        sizes = [dataset.cluster_members(label).size for label in range(5)]
        assert sum(sizes) == 200
        assert min(sizes) >= 2

    def test_average_dimensionality_exact_without_spread(self):
        dataset = make_projected_clusters(
            n_objects=100, n_dimensions=50, n_clusters=5, avg_cluster_dimensionality=7, random_state=2
        )
        assert all(dims.size == 7 for dims in dataset.relevant_dimensions)
        assert dataset.average_dimensionality() == pytest.approx(7.0)

    def test_dimensionality_spread(self):
        generator = SyntheticDataGenerator(
            n_objects=100,
            n_dimensions=50,
            n_clusters=5,
            avg_cluster_dimensionality=8,
            dimensionality_spread=3,
        )
        dataset = generator.generate(random_state=4)
        sizes = [dims.size for dims in dataset.relevant_dimensions]
        assert all(5 <= s <= 11 for s in sizes)

    def test_reproducibility(self):
        first = make_projected_clusters(n_objects=60, n_dimensions=10, n_clusters=3,
                                        avg_cluster_dimensionality=3, random_state=9)
        second = make_projected_clusters(n_objects=60, n_dimensions=10, n_clusters=3,
                                         avg_cluster_dimensionality=3, random_state=9)
        np.testing.assert_allclose(first.data, second.data)
        np.testing.assert_array_equal(first.labels, second.labels)


class TestDataModelProperties:
    def test_relevant_dimensions_have_reduced_variance(self):
        """Core property of the model: local variance << global population variance.

        The comparison baseline is the *global population* variance of the
        uniform distribution (span^2 / 12) rather than the sample column
        variance, because a dimension relevant to several clusters has a
        reduced column variance without violating the model.
        """
        dataset = make_projected_clusters(
            n_objects=300, n_dimensions=40, n_clusters=3, avg_cluster_dimensionality=8, random_state=5
        )
        low, high = dataset.parameters["value_range"]
        population_variance = (high - low) ** 2 / 12.0
        for label, dims in enumerate(dataset.relevant_dimensions):
            members = dataset.cluster_members(label)
            local_variance = dataset.data[members][:, dims].var(axis=0, ddof=1)
            # Local std is at most 10% of the range, i.e. variance <= 12% of
            # the population variance; allow slack for sampling noise.
            assert np.all(local_variance < 0.25 * population_variance)

    def test_irrelevant_dimensions_keep_global_spread(self):
        dataset = make_projected_clusters(
            n_objects=300, n_dimensions=40, n_clusters=3, avg_cluster_dimensionality=5, random_state=6
        )
        global_variance = dataset.data.var(axis=0, ddof=1)
        for label in range(3):
            members = dataset.cluster_members(label)
            irrelevant = np.setdiff1d(np.arange(40), dataset.relevant_dimensions[label])
            local_variance = dataset.data[members][:, irrelevant].var(axis=0, ddof=1)
            # On average the irrelevant variance is comparable to the global one.
            assert np.median(local_variance / global_variance[irrelevant]) > 0.5

    def test_values_within_declared_range(self):
        dataset = make_projected_clusters(
            n_objects=100, n_dimensions=20, n_clusters=3, avg_cluster_dimensionality=4,
            value_range=(-10.0, 10.0), random_state=7,
        )
        # Local Gaussians may slightly exceed the range but the bulk must stay inside.
        inside = np.mean((dataset.data >= -12) & (dataset.data <= 12))
        assert inside > 0.999

    def test_gaussian_global_distribution(self):
        dataset = make_projected_clusters(
            n_objects=400, n_dimensions=10, n_clusters=2, avg_cluster_dimensionality=2,
            global_distribution="gaussian", random_state=8,
        )
        assert dataset.parameters["global_distribution"] == "gaussian"
        # A Gaussian column has kurtosis near 3 (uniform would be 1.8).
        irrelevant = np.setdiff1d(
            np.arange(10),
            np.concatenate(dataset.relevant_dimensions),
        )
        column = dataset.data[:, irrelevant[0]]
        standardized = (column - column.mean()) / column.std()
        kurtosis = np.mean(standardized**4)
        assert kurtosis > 2.3

    def test_outliers_generated(self):
        dataset = make_projected_clusters(
            n_objects=200, n_dimensions=20, n_clusters=3, avg_cluster_dimensionality=4,
            outlier_fraction=0.2, random_state=9,
        )
        assert dataset.n_outliers == pytest.approx(40, abs=1)
        assert dataset.parameters["n_outliers"] == dataset.n_outliers

    def test_local_population_metadata_consistent(self):
        dataset = make_projected_clusters(
            n_objects=200, n_dimensions=30, n_clusters=3, avg_cluster_dimensionality=5, random_state=10
        )
        for label, dims in enumerate(dataset.relevant_dimensions):
            members = dataset.cluster_members(label)
            for dim in dims:
                mean = dataset.local_means[label][int(dim)]
                std = dataset.local_stds[label][int(dim)]
                sample_mean = dataset.data[members, dim].mean()
                assert abs(sample_mean - mean) < 4 * std

    def test_shared_dimension_probability(self):
        generator = SyntheticDataGenerator(
            n_objects=100,
            n_dimensions=30,
            n_clusters=4,
            avg_cluster_dimensionality=6,
            shared_dimension_probability=1.0,
        )
        dataset = generator.generate(random_state=11)
        first = set(dataset.relevant_dimensions[0].tolist())
        second = set(dataset.relevant_dimensions[1].tolist())
        assert first & second


class TestValidation:
    def test_dimensionality_cannot_exceed_d(self):
        with pytest.raises(ValueError):
            SyntheticDataGenerator(n_objects=50, n_dimensions=10, n_clusters=2,
                                   avg_cluster_dimensionality=20)

    def test_too_many_outliers_rejected(self):
        with pytest.raises(ValueError):
            SyntheticDataGenerator(n_objects=20, n_dimensions=10, n_clusters=5,
                                   avg_cluster_dimensionality=2, outlier_fraction=0.9)

    def test_bad_value_range(self):
        with pytest.raises(ValueError):
            SyntheticDataGenerator(n_objects=50, n_dimensions=10, n_clusters=2,
                                   avg_cluster_dimensionality=2, value_range=(5.0, 5.0))

    def test_bad_distribution_name(self):
        with pytest.raises(ValueError):
            SyntheticDataGenerator(n_objects=50, n_dimensions=10, n_clusters=2,
                                   avg_cluster_dimensionality=2, global_distribution="poisson")


class TestGeneratorProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        n_objects=st.integers(30, 120),
        n_dimensions=st.integers(5, 30),
        n_clusters=st.integers(2, 4),
        seed=st.integers(0, 1000),
    )
    def test_labels_partition_objects(self, n_objects, n_dimensions, n_clusters, seed):
        dimensionality = min(3, n_dimensions)
        dataset = make_projected_clusters(
            n_objects=n_objects,
            n_dimensions=n_dimensions,
            n_clusters=n_clusters,
            avg_cluster_dimensionality=dimensionality,
            random_state=seed,
        )
        assert dataset.labels.min() >= -1
        assert dataset.labels.max() == n_clusters - 1
        sizes = np.bincount(dataset.labels[dataset.labels >= 0], minlength=n_clusters)
        assert sizes.sum() + dataset.n_outliers == n_objects
        for dims in dataset.relevant_dimensions:
            assert np.all((dims >= 0) & (dims < n_dimensions))
            assert len(set(dims.tolist())) == dims.size
