"""Tests for repro.core.model (ProjectedCluster / ClusteringResult)."""

import numpy as np
import pytest

from repro.core.model import OUTLIER_LABEL, ClusteringResult, ProjectedCluster


class TestProjectedCluster:
    def test_members_and_dimensions_sorted_and_deduplicated(self):
        cluster = ProjectedCluster(members=[3, 1, 3], dimensions=[5, 2, 5])
        np.testing.assert_array_equal(cluster.members, [1, 3])
        np.testing.assert_array_equal(cluster.dimensions, [2, 5])

    def test_size_and_dimensionality(self):
        cluster = ProjectedCluster(members=[0, 1, 2], dimensions=[4])
        assert cluster.size == 3
        assert cluster.dimensionality == 1

    def test_contains(self):
        cluster = ProjectedCluster(members=[0, 2], dimensions=[1])
        assert cluster.contains(2)
        assert not cluster.contains(1)

    def test_projection_shape(self):
        data = np.arange(20, dtype=float).reshape(4, 5)
        cluster = ProjectedCluster(members=[1, 3], dimensions=[0, 2, 4])
        projection = cluster.projection(data)
        assert projection.shape == (2, 3)
        np.testing.assert_array_equal(projection[0], data[1, [0, 2, 4]])

    def test_sets(self):
        cluster = ProjectedCluster(members=[2, 0], dimensions=[3])
        assert cluster.member_set() == frozenset({0, 2})
        assert cluster.dimension_set() == frozenset({3})


class TestClusteringResult:
    def _make(self):
        clusters = [
            ProjectedCluster(members=[0, 1], dimensions=[0, 1]),
            ProjectedCluster(members=[2, 3], dimensions=[2]),
        ]
        return ClusteringResult(clusters=clusters, n_objects=6, n_dimensions=4, algorithm="test")

    def test_labels_with_outliers(self):
        result = self._make()
        np.testing.assert_array_equal(result.labels(), [0, 0, 1, 1, -1, -1])
        assert result.n_outliers == 2
        np.testing.assert_array_equal(result.outliers, [4, 5])

    def test_cluster_sizes_and_average_dimensionality(self):
        result = self._make()
        np.testing.assert_array_equal(result.cluster_sizes(), [2, 2])
        assert result.average_dimensionality() == pytest.approx(1.5)

    def test_duplicate_membership_rejected(self):
        clusters = [
            ProjectedCluster(members=[0, 1], dimensions=[0]),
            ProjectedCluster(members=[1, 2], dimensions=[1]),
        ]
        with pytest.raises(ValueError):
            ClusteringResult(clusters=clusters, n_objects=5, n_dimensions=3)

    def test_out_of_range_members_rejected(self):
        clusters = [ProjectedCluster(members=[10], dimensions=[0])]
        with pytest.raises(ValueError):
            ClusteringResult(clusters=clusters, n_objects=5, n_dimensions=3)

    def test_out_of_range_dimensions_rejected(self):
        clusters = [ProjectedCluster(members=[0], dimensions=[7])]
        with pytest.raises(ValueError):
            ClusteringResult(clusters=clusters, n_objects=5, n_dimensions=3)

    def test_without_objects_moves_to_outliers(self):
        result = self._make()
        stripped = result.without_objects([0, 2])
        np.testing.assert_array_equal(stripped.labels(), [-1, 0, -1, 1, -1, -1])
        # Original result untouched.
        np.testing.assert_array_equal(result.labels(), [0, 0, 1, 1, -1, -1])

    def test_summary_mentions_clusters(self):
        text = self._make().summary()
        assert "cluster 0" in text and "cluster 1" in text

    def test_from_labels_round_trip(self):
        labels = [0, 1, 1, -1, 0]
        result = ClusteringResult.from_labels(labels, n_dimensions=3, algorithm="x")
        np.testing.assert_array_equal(result.labels(), labels)
        assert result.n_clusters == 2
        # Default: every cluster uses all dimensions (non-projected).
        assert all(cluster.dimensionality == 3 for cluster in result.clusters)

    def test_from_labels_with_dimensions(self):
        result = ClusteringResult.from_labels(
            [0, 1], n_dimensions=4, dimensions=[[0, 1], [2]], n_clusters=2
        )
        assert result.clusters[0].dimension_set() == frozenset({0, 1})
        assert result.clusters[1].dimension_set() == frozenset({2})

    def test_from_labels_keeps_empty_clusters(self):
        result = ClusteringResult.from_labels([0, 0], n_dimensions=2, n_clusters=3)
        assert result.n_clusters == 3
        assert result.clusters[2].size == 0

    def test_outlier_label_constant(self):
        assert OUTLIER_LABEL == -1


class TestFromLabelsSerializationRoundTrip:
    """from_labels ∘ labels must be exact — the artifact format relies on it."""

    def _rich_result(self):
        rng = np.random.default_rng(17)
        clusters = [
            ProjectedCluster(
                members=[0, 2, 5],
                dimensions=[1, 3],
                score=2.5,
                representative=rng.normal(size=6),
            ),
            ProjectedCluster(members=[], dimensions=[0], score=float("nan")),
            ProjectedCluster(
                members=[1, 7],
                dimensions=[2, 4, 5],
                score=-0.75,
                representative=rng.normal(size=6),
            ),
        ]
        return ClusteringResult(
            clusters=clusters,
            n_objects=9,
            n_dimensions=6,
            objective=0.125,
            n_iterations=11,
            algorithm="SSPC",
            parameters={"n_clusters": 3, "m": 0.5},
        )

    def _round_trip(self, result):
        return ClusteringResult.from_labels(
            result.labels(),
            result.n_dimensions,
            dimensions=[c.dimensions for c in result.clusters],
            scores=[c.score for c in result.clusters],
            representatives=[c.representative for c in result.clusters],
            objective=result.objective,
            n_iterations=result.n_iterations,
            algorithm=result.algorithm,
            parameters=result.parameters,
            n_clusters=result.n_clusters,
        )

    def test_round_trip_with_outliers_present(self):
        result = self._rich_result()
        # Objects 3, 4, 6, 8 are on the outlier list.
        np.testing.assert_array_equal(result.outliers, [3, 4, 6, 8])
        rebuilt = self._round_trip(result)
        np.testing.assert_array_equal(rebuilt.labels(), result.labels())
        np.testing.assert_array_equal(rebuilt.outliers, result.outliers)
        assert rebuilt.n_outliers == result.n_outliers

    def test_round_trip_preserves_clusters(self):
        result = self._rich_result()
        rebuilt = self._round_trip(result)
        assert rebuilt.n_clusters == result.n_clusters
        for a, b in zip(rebuilt.clusters, result.clusters):
            np.testing.assert_array_equal(a.members, b.members)
            np.testing.assert_array_equal(a.dimensions, b.dimensions)
            assert a.score == b.score or (np.isnan(a.score) and np.isnan(b.score))
            if b.representative is None:
                assert a.representative is None
            else:
                np.testing.assert_array_equal(a.representative, b.representative)

    def test_round_trip_preserves_metadata(self):
        result = self._rich_result()
        rebuilt = self._round_trip(result)
        assert rebuilt.objective == result.objective
        assert rebuilt.n_iterations == result.n_iterations
        assert rebuilt.algorithm == result.algorithm
        assert rebuilt.parameters == result.parameters

    def test_double_round_trip_is_stable(self):
        once = self._round_trip(self._rich_result())
        twice = self._round_trip(once)
        np.testing.assert_array_equal(twice.labels(), once.labels())
