"""Cross-backend equivalence suite for the assignment-kernel backends.

The contract under test: every float64 backend (reference, threaded,
compiled) is *bit-identical* to the reference kernel through arbitrary
mutation sequences, and the opt-in float32 backend stays inside its
declared tolerance band.  These are the tests CI's numba leg runs with
``-m backend``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import backends
from repro.core.assignment_engine import AssignmentEngine
from repro.core.backends import (
    BACKEND_NAMES,
    ENV_VAR,
    available_backends,
    get_backend,
    resolve_backend,
)
from repro.core.backends.compiled import compiled_available, grouping_probe_ok
from repro.core.backends.lowp import Float32Backend
from repro.core.backends.reference import ReferenceBackend
from repro.core.backends.threaded import MIN_CHUNK_ROWS, ThreadedBackend
from repro.core.sspc import SSPC
from repro.serving.index import ProjectedClusterIndex

pytestmark = pytest.mark.backend


def _float64_backends():
    """Instances of every float64 backend runnable in this environment."""
    instances = [ReferenceBackend(), ThreadedBackend()]
    ok, _ = compiled_available()
    if ok:
        from repro.core.backends.compiled import CompiledBackend

        instances.append(CompiledBackend())
    return instances


def _random_plan(rng, n_dimensions, k):
    """Per-cluster (dims, centers, thresholds) with mixed dim counts."""
    dims, centers, thresholds = [], [], []
    for _ in range(k):
        count = int(rng.integers(1, n_dimensions + 1))
        d = np.sort(rng.choice(n_dimensions, size=count, replace=False))
        dims.append(d)
        centers.append(rng.normal(size=count))
        thresholds.append(rng.uniform(0.5, 3.0, size=count))
    return dims, centers, thresholds


def _fresh_engine(points, backend, plan):
    engine = AssignmentEngine(points, backend=backend)
    engine.set_clusters(*[list(part) for part in plan])
    return engine


class TestRegistry:
    def test_available_backends_names_and_reference_always_on(self):
        table = available_backends()
        assert set(table) == set(BACKEND_NAMES)
        ok, detail = table["reference"]
        assert ok and detail
        assert table["threaded"][0]
        assert table["float32"][0]

    def test_get_backend_by_name_and_default(self):
        assert get_backend("reference").name == "reference"
        assert get_backend("threaded").name == "threaded"
        assert get_backend("float32").name == "float32"
        assert get_backend(None).name == backends.DEFAULT_BACKEND

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "threaded")
        assert get_backend().name == "threaded"
        engine = AssignmentEngine()
        assert engine.backend_name == "threaded"

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown"):
            get_backend("simd")

    def test_resolve_backend_passes_instances_through(self):
        instance = ThreadedBackend(workers=2)
        assert resolve_backend(instance) is instance
        with pytest.raises(TypeError):
            resolve_backend(object())

    def test_compiled_requests_never_fail(self):
        # With numba present this is the compiled backend; without it the
        # registry degrades loudly to threaded — never an ImportError.
        backend = get_backend("compiled")
        assert backend.name in ("compiled", "threaded")
        ok, _ = compiled_available()
        assert backend.name == ("compiled" if ok else "threaded")

    def test_sspc_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            SSPC(n_clusters=2, backend="simd")


class TestGroupingProbe:
    def test_strided_reduce_is_sequential_accumulation(self):
        """The numpy property the compiled kernel's bit-identity rests on.

        A plain scalar accumulation loop must match the reference
        backend's strided ``sum`` reduction bit for bit; when a future
        numpy changes its reduction order, this test (and the runtime
        probe gating the compiled backend) flags it.
        """
        rng = np.random.default_rng(20050405)
        reference = ReferenceBackend()
        for count in (3, 8, 16, 150):
            n, g = 9, 2
            points = rng.normal(size=(n, count + 5))
            dims = np.stack(
                [np.sort(rng.choice(count + 5, size=count, replace=False)) for _ in range(g)]
            )
            centers = rng.normal(size=(g, count))
            thresholds = rng.uniform(0.5, 3.0, size=(g, count))
            out = np.full((n, g), -np.inf)
            reference.evaluate_columns(
                points, np.arange(g), dims, centers, thresholds, out, block_rows=4
            )
            expected = np.empty((n, g))
            for i in range(n):
                for a in range(g):
                    acc = 0.0
                    for b in range(count):
                        delta = points[i, dims[a, b]] - centers[a, b]
                        acc += 1.0 - (delta * delta) / thresholds[a, b]
                    expected[i, a] = acc
            assert np.array_equal(out, expected), count

    def test_probe_agrees_with_compiled_availability(self):
        ok, reason = compiled_available()
        if "numba" in reason and not ok:
            assert grouping_probe_ok()  # probe itself passes on this numpy
        else:
            assert ok == grouping_probe_ok()


class TestFloat64BitIdentity:
    def test_full_compute_bit_identical(self):
        rng = np.random.default_rng(7)
        points = rng.normal(size=(400, 24))
        plan = _random_plan(rng, 24, 9)
        expected = _fresh_engine(points, "reference", plan).gains()
        for backend in _float64_backends():
            got = _fresh_engine(points, backend, plan).gains()
            assert np.array_equal(got, expected), backend.name

    def test_randomized_mutation_sequences_stay_bit_identical(self):
        rng = np.random.default_rng(123)
        points = rng.normal(size=(300, 16))
        plan = _random_plan(rng, 16, 6)
        engines = {
            backend.name: _fresh_engine(points, backend, plan)
            for backend in _float64_backends()
        }
        reference = engines.pop("reference")
        for step in range(30):
            op = rng.choice(["dirty", "update", "add", "remove", "invalidate"])
            k = reference.n_clusters
            if op == "dirty" and k:
                dirty = rng.choice(k, size=min(2, k), replace=False)
                for engine in (reference, *engines.values()):
                    engine.mark_dirty(dirty)
            elif op == "update" and k:
                index = int(rng.integers(k))
                count = int(rng.integers(1, 17))
                dims = np.sort(rng.choice(16, size=count, replace=False))
                center = rng.normal(size=count)
                threshold = rng.uniform(0.5, 3.0, size=count)
                for engine in (reference, *engines.values()):
                    engine.update_cluster(index, dims, center, threshold, force=True)
            elif op == "add" and k < 10:
                count = int(rng.integers(1, 17))
                dims = np.sort(rng.choice(16, size=count, replace=False))
                center = rng.normal(size=count)
                threshold = rng.uniform(0.5, 3.0, size=count)
                for engine in (reference, *engines.values()):
                    engine.add_cluster(dims, center, threshold)
            elif op == "remove" and k > 2:
                index = int(rng.integers(k))
                for engine in (reference, *engines.values()):
                    engine.remove_cluster(index)
            else:
                for engine in (reference, *engines.values()):
                    engine.invalidate()
            expected = reference.gains()
            for name, engine in engines.items():
                assert np.array_equal(engine.gains(), expected), (name, step)

    def test_threaded_multi_worker_chunked_is_bit_identical(self):
        rng = np.random.default_rng(42)
        n = MIN_CHUNK_ROWS * 4 + 17  # guarantees real multi-chunk dispatch
        points = rng.normal(size=(n, 12))
        plan = _random_plan(rng, 12, 5)
        expected = _fresh_engine(points, "reference", plan).gains()
        threaded = ThreadedBackend(workers=4)
        try:
            got = _fresh_engine(points, threaded, plan).gains()
            assert np.array_equal(got, expected)
        finally:
            threaded.close()

    def test_threaded_worker_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ASSIGNMENT_THREADS", "3")
        assert ThreadedBackend().workers == 3

    def test_compute_on_fresh_batches_bit_identical(self):
        rng = np.random.default_rng(11)
        plan = _random_plan(rng, 10, 4)
        engines = [
            _fresh_engine(None, backend, plan) for backend in _float64_backends()
        ]
        for _ in range(3):
            batch = rng.normal(size=(int(rng.integers(1, 120)), 10))
            results = [engine.compute(batch) for engine in engines]
            for got in results[1:]:
                assert np.array_equal(got, results[0])


@pytest.mark.skipif(
    not compiled_available()[0], reason=compiled_available()[1]
)
class TestCompiledBackend:
    def test_compiled_matches_reference_bitwise(self):
        pytest.importorskip("numba")
        from repro.core.backends.compiled import CompiledBackend

        rng = np.random.default_rng(5)
        points = rng.normal(size=(250, 20))
        plan = _random_plan(rng, 20, 7)
        expected = _fresh_engine(points, "reference", plan).gains()
        got = _fresh_engine(points, CompiledBackend(), plan).gains()
        assert np.array_equal(got, expected)


class TestFloat32Backend:
    def test_within_declared_tolerance(self):
        rng = np.random.default_rng(77)
        points = rng.normal(size=(500, 30))
        plan = _random_plan(rng, 30, 8)
        expected = _fresh_engine(points, "reference", plan).gains()
        backend = Float32Backend()
        got = _fresh_engine(points, backend, plan).gains()
        finite = np.isfinite(expected)
        assert np.array_equal(finite, np.isfinite(got))
        assert np.allclose(
            got[finite], expected[finite], rtol=backend.rtol, atol=backend.atol
        )

    def test_backstop_verifies_every_evaluation(self):
        rng = np.random.default_rng(78)
        points = rng.normal(size=(64, 8))
        plan = _random_plan(rng, 8, 3)
        engine = _fresh_engine(points, "float32", plan)
        engine.gains()  # sampled-oracle backstop runs without raising


class TestOracleBackstop:
    def test_lying_backend_is_caught(self):
        class LyingBackend(ReferenceBackend):
            name = "lying"
            bit_identical = True

            def evaluate_columns(self, points, cluster_ids, dims, centers,
                                 thresholds, out, *, block_rows):
                super().evaluate_columns(
                    points, cluster_ids, dims, centers, thresholds, out,
                    block_rows=block_rows,
                )
                out[:, cluster_ids] += 1e-9

        rng = np.random.default_rng(9)
        points = rng.normal(size=(50, 6))
        plan = _random_plan(rng, 6, 3)
        engine = _fresh_engine(points, LyingBackend(), plan)
        with pytest.raises(RuntimeError, match="diverged"):
            engine.gains()

    def test_reference_backend_skips_backstop(self):
        rng = np.random.default_rng(10)
        engine = _fresh_engine(rng.normal(size=(20, 5)), "reference",
                               _random_plan(rng, 5, 2))
        assert engine._verify_backend is False
        engine.gains()


class TestServingBackends:
    @pytest.fixture()
    def query_points(self, small_dataset, rng):
        data = small_dataset.data
        near = data[rng.choice(data.shape[0], size=40, replace=False)]
        near = near + rng.normal(scale=0.01, size=near.shape)
        noise = rng.normal(
            loc=data.mean(axis=0), scale=3 * data.std(axis=0), size=(20, data.shape[1])
        )
        return np.vstack([near, noise])

    def test_predict_and_partial_update_match_across_backends(
        self, fitted_sspc, query_points, rng
    ):
        artifact = fitted_sspc.to_artifact()
        names = ["reference", "threaded"]
        if compiled_available()[0]:
            names.append("compiled")
        indexes = {
            name: ProjectedClusterIndex(fitted_sspc.to_artifact(), backend=name)
            for name in names
        }
        reference = indexes.pop("reference")
        expected_labels = reference.predict(query_points)
        for name, index in indexes.items():
            np.testing.assert_array_equal(
                index.predict(query_points), expected_labels, err_msg=name
            )
        # Fold the batch in, then mutate the lifecycle the same way
        # everywhere; served gains must stay bit-identical throughout.
        fold = rng.normal(
            loc=artifact.clusters[0].mean,
            scale=0.05,
            size=(12, query_points.shape[1]),
        )
        reference.partial_update(fold)
        for index in indexes.values():
            index.partial_update(fold)
        spawn_dims = np.arange(3)
        spawn_rows = rng.normal(loc=5.0, scale=0.1, size=(8, query_points.shape[1]))
        reference.add_cluster(spawn_dims, spawn_rows)
        for index in indexes.values():
            index.add_cluster(spawn_dims, spawn_rows)
        reference.remove_cluster(0)
        for index in indexes.values():
            index.remove_cluster(0)
        expected = reference.gains_matrix(query_points)
        for name, index in indexes.items():
            assert np.array_equal(index.gains_matrix(query_points), expected), name

    def test_float32_serving_stays_in_band(self, fitted_sspc, query_points):
        reference = ProjectedClusterIndex(fitted_sspc.to_artifact())
        lowp = ProjectedClusterIndex(fitted_sspc.to_artifact(), backend="float32")
        expected = reference.gains_matrix(query_points)
        got = lowp.gains_matrix(query_points)
        finite = np.isfinite(expected)
        assert np.array_equal(finite, np.isfinite(got))
        assert np.allclose(got[finite], expected[finite], rtol=1e-4, atol=1e-2)


class TestFitEquivalence:
    def test_sspc_fit_is_backend_invariant(self, small_dataset):
        base = SSPC(n_clusters=3, m=0.5, random_state=0).fit(small_dataset.data)
        threaded = SSPC(
            n_clusters=3, m=0.5, random_state=0, backend="threaded"
        ).fit(small_dataset.data)
        np.testing.assert_array_equal(base.labels_, threaded.labels_)
        assert base.objective_ == threaded.objective_

    def test_get_params_carries_backend(self):
        assert "backend" not in SSPC(n_clusters=2).get_params()
        assert SSPC(n_clusters=2, backend="threaded").get_params()["backend"] == "threaded"


class TestPicklability:
    def test_threaded_backend_survives_pickle(self):
        import pickle

        backend = ThreadedBackend(workers=2)
        rng = np.random.default_rng(3)
        points = rng.normal(size=(MIN_CHUNK_ROWS * 2 + 5, 6))
        plan = _random_plan(rng, 6, 3)
        _fresh_engine(points, backend, plan).gains()  # spin the pool up
        clone = pickle.loads(pickle.dumps(backend))
        assert clone.workers == backend.workers
        expected = _fresh_engine(points, "reference", plan).gains()
        assert np.array_equal(_fresh_engine(points, clone, plan).gains(), expected)
