"""Tests for SelectDim (Lemma 1) including a property-based check."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dimension_selection import select_dimensions, selection_margin
from repro.core.objective import ObjectiveFunction
from repro.core.thresholds import ChiSquareThreshold, VarianceRatioThreshold


@pytest.fixture()
def structured_objective():
    rng = np.random.default_rng(11)
    data = rng.uniform(0, 100, size=(120, 12))
    # cluster: objects 0-39 tight on dimensions 0, 1, 2
    for dim, center in zip((0, 1, 2), (20, 50, 80)):
        data[:40, dim] = rng.normal(center, 1.5, size=40)
    return ObjectiveFunction(data, VarianceRatioThreshold(m=0.5))


class TestSelectDim:
    def test_recovers_relevant_dimensions(self, structured_objective):
        selected = select_dimensions(structured_objective, np.arange(40))
        assert {0, 1, 2}.issubset(set(selected.tolist()))

    def test_does_not_select_everything(self, structured_objective):
        selected = select_dimensions(structured_objective, np.arange(40))
        assert selected.size < structured_objective.n_dimensions

    def test_matches_lemma1_criterion_exactly(self, structured_objective):
        members = np.arange(40)
        selected = set(select_dimensions(structured_objective, members).tolist())
        dispersion, thresholds = selection_margin(structured_objective, members)
        expected = set(np.flatnonzero(dispersion < thresholds).tolist())
        assert selected == expected

    def test_selecting_lemma1_set_maximises_phi(self, structured_objective):
        # Lemma 1: the SelectDim output maximises phi_i over all dimension
        # subsets.  Compare against random subsets.
        members = np.arange(40)
        best = structured_objective.phi_i(members, select_dimensions(structured_objective, members))
        rng = np.random.default_rng(0)
        for _ in range(25):
            size = int(rng.integers(1, structured_objective.n_dimensions + 1))
            subset = rng.choice(structured_objective.n_dimensions, size=size, replace=False)
            assert structured_objective.phi_i(members, subset) <= best + 1e-9

    def test_forced_dimensions_always_included(self, structured_objective):
        selected = select_dimensions(structured_objective, np.arange(40), forced_dimensions=[7])
        assert 7 in selected

    def test_small_member_set_returns_forced_only(self, structured_objective):
        selected = select_dimensions(structured_objective, [3], forced_dimensions=[1, 2])
        np.testing.assert_array_equal(selected, [1, 2])

    def test_empty_member_set(self, structured_objective):
        assert select_dimensions(structured_objective, []).size == 0

    def test_threshold_override_is_stricter(self, structured_objective):
        members = np.arange(40)
        default = select_dimensions(structured_objective, members)
        strict = select_dimensions(
            structured_objective, members, threshold=ChiSquareThreshold(p=0.001)
        )
        assert set(strict.tolist()).issubset(set(default.tolist()))

    def test_whole_dataset_selects_nothing(self, structured_objective):
        # The full dataset has (close to) the global variance along every
        # dimension, so no dimension should pass an m < 1 criterion.
        selected = select_dimensions(structured_objective, np.arange(structured_objective.n_objects))
        assert selected.size <= 1


class TestSelectDimProperty:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), m=st.floats(0.2, 0.9))
    def test_lemma1_consistency_random_clusters(self, seed, m):
        """For random member sets, SelectDim equals the Lemma-1 rule."""
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(60, 8)) * rng.uniform(0.5, 3.0, size=8)
        objective = ObjectiveFunction(data, VarianceRatioThreshold(m=m))
        members = rng.choice(60, size=int(rng.integers(2, 30)), replace=False)
        selected = set(select_dimensions(objective, members).tolist())
        stats = objective.cluster_statistics(members)
        thresholds = objective.threshold.values(stats.size)
        expected = set(np.flatnonzero(stats.dispersion() < thresholds).tolist())
        assert selected == expected
