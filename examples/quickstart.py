"""Quickstart: unsupervised projected clustering with SSPC.

Generates a synthetic dataset following the paper's data model (Section 3),
runs SSPC without any domain knowledge, and reports how well the produced
clusters and selected dimensions match the ground truth.  The last section
shows the serving lifecycle: persist the fitted model as an artifact,
reload it (as a fresh process would), and assign new out-of-sample points
to the learned projected clusters.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import SSPC, ProjectedClusterIndex, load_artifact
from repro.data import make_projected_clusters
from repro.evaluation import clustering_report


def main() -> None:
    # A dataset of 500 objects and 100 dimensions with 5 hidden clusters,
    # each relevant to only 10 dimensions (10% of the dimensionality).
    dataset = make_projected_clusters(
        n_objects=500,
        n_dimensions=100,
        n_clusters=5,
        avg_cluster_dimensionality=10,
        random_state=0,
    )
    print(
        "dataset: %d objects x %d dimensions, %d clusters, "
        "%.0f relevant dimensions per cluster on average"
        % (
            dataset.n_objects,
            dataset.n_dimensions,
            dataset.n_clusters,
            dataset.average_dimensionality(),
        )
    )

    # Fit SSPC with the variance-ratio threshold scheme (m = 0.5).  The value
    # of m is not critical — see the Figure 4 benchmark.
    model = SSPC(n_clusters=5, m=0.5, random_state=0)
    model.fit(dataset.data)

    print()
    print(model.result_.summary())

    # Compare against the ground truth: membership quality (ARI) and how well
    # the relevant dimensions were recovered.
    report = clustering_report(
        dataset.labels,
        model.labels_,
        true_dimensions=dataset.relevant_dimensions,
        predicted_dimensions=model.selected_dimensions_,
    )
    print()
    print("evaluation against the ground truth:")
    for key, value in sorted(report.items()):
        print("  %-22s %.3f" % (key, value))

    # ------------------------------------------------------------------ #
    # Serving: save the model, load it back, predict on unseen points.
    # ------------------------------------------------------------------ #
    with tempfile.TemporaryDirectory() as tmp:
        artifact_dir = Path(tmp) / "sspc-model"
        model.save(artifact_dir)
        print()
        print("artifact saved to %s" % artifact_dir)

        # A fresh process would only need the artifact directory — no
        # training data, no refit.
        index = ProjectedClusterIndex(load_artifact(artifact_dir))

        # New traffic: points drawn near existing members (should be
        # assigned) plus uniform background noise (should be rejected by
        # the outlier gate).
        rng = np.random.default_rng(1)
        members = rng.choice(dataset.n_objects, size=30, replace=False)
        near = dataset.data[members] + rng.normal(
            scale=0.02, size=(30, dataset.n_dimensions)
        )
        noise = rng.uniform(
            dataset.data.min(), dataset.data.max(), size=(30, dataset.n_dimensions)
        )
        new_points = np.vstack([near, noise])

        labels = index.predict(new_points)
        assigned = int(np.count_nonzero(labels >= 0))
        print(
            "predicted %d new points: %d assigned, %d rejected as outliers"
            % (labels.size, assigned, labels.size - assigned)
        )

        # Soft assignments: each point's two best clusters and their gains.
        _, top_clusters, top_gains = index.top_assignments(new_points[:3], top_m=2)
        for row in range(3):
            print(
                "  point %d: best cluster %d (gain %.2f), runner-up %d (gain %.2f)"
                % (row, top_clusters[row, 0], top_gains[row, 0],
                   top_clusters[row, 1], top_gains[row, 1])
            )

        # Fold the accepted points into the serving statistics (no refit).
        index.partial_update(new_points, labels)
        print("after partial_update the served cluster sizes are %s"
              % index.cluster_sizes().tolist())


if __name__ == "__main__":
    main()
