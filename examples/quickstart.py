"""Quickstart: unsupervised projected clustering with SSPC.

Generates a synthetic dataset following the paper's data model (Section 3),
runs SSPC without any domain knowledge, and reports how well the produced
clusters and selected dimensions match the ground truth.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import SSPC
from repro.data import make_projected_clusters
from repro.evaluation import clustering_report


def main() -> None:
    # A dataset of 500 objects and 100 dimensions with 5 hidden clusters,
    # each relevant to only 10 dimensions (10% of the dimensionality).
    dataset = make_projected_clusters(
        n_objects=500,
        n_dimensions=100,
        n_clusters=5,
        avg_cluster_dimensionality=10,
        random_state=0,
    )
    print(
        "dataset: %d objects x %d dimensions, %d clusters, "
        "%.0f relevant dimensions per cluster on average"
        % (
            dataset.n_objects,
            dataset.n_dimensions,
            dataset.n_clusters,
            dataset.average_dimensionality(),
        )
    )

    # Fit SSPC with the variance-ratio threshold scheme (m = 0.5).  The value
    # of m is not critical — see the Figure 4 benchmark.
    model = SSPC(n_clusters=5, m=0.5, random_state=0)
    model.fit(dataset.data)

    print()
    print(model.result_.summary())

    # Compare against the ground truth: membership quality (ARI) and how well
    # the relevant dimensions were recovered.
    report = clustering_report(
        dataset.labels,
        model.labels_,
        true_dimensions=dataset.relevant_dimensions,
        predicted_dimensions=model.selected_dimensions_,
    )
    print()
    print("evaluation against the ground truth:")
    for key, value in sorted(report.items()):
        print("  %-22s %.3f" % (key, value))


if __name__ == "__main__":
    main()
