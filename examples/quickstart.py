"""Quickstart: unsupervised projected clustering with SSPC.

Generates a synthetic dataset following the paper's data model (Section 3),
runs SSPC without any domain knowledge, and reports how well the produced
clusters and selected dimensions match the ground truth.  The second
section shows the serving lifecycle: persist the fitted model as an
artifact, reload it (as a fresh process would), and assign new
out-of-sample points to the learned projected clusters.  The last section
shows the streaming lifecycle: generate a drifting stream, keep the model
current with :class:`~repro.stream.StreamingSSPC`, checkpoint mid-stream
and resume exactly where it stopped.  The final section traces a small
fit with :mod:`repro.obs` and writes a Chrome trace-event file you can
drop into https://ui.perfetto.dev to see every fit phase as a span.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import SSPC, ProjectedClusterIndex, load_artifact
from repro.data import make_projected_clusters
from repro.evaluation import clustering_report


def main() -> None:
    # A dataset of 500 objects and 100 dimensions with 5 hidden clusters,
    # each relevant to only 10 dimensions (10% of the dimensionality).
    dataset = make_projected_clusters(
        n_objects=500,
        n_dimensions=100,
        n_clusters=5,
        avg_cluster_dimensionality=10,
        random_state=0,
    )
    print(
        "dataset: %d objects x %d dimensions, %d clusters, "
        "%.0f relevant dimensions per cluster on average"
        % (
            dataset.n_objects,
            dataset.n_dimensions,
            dataset.n_clusters,
            dataset.average_dimensionality(),
        )
    )

    # Fit SSPC with the variance-ratio threshold scheme (m = 0.5).  The value
    # of m is not critical — see the Figure 4 benchmark.
    model = SSPC(n_clusters=5, m=0.5, random_state=0)
    model.fit(dataset.data)

    print()
    print(model.result_.summary())

    # Compare against the ground truth: membership quality (ARI) and how well
    # the relevant dimensions were recovered.
    report = clustering_report(
        dataset.labels,
        model.labels_,
        true_dimensions=dataset.relevant_dimensions,
        predicted_dimensions=model.selected_dimensions_,
    )
    print()
    print("evaluation against the ground truth:")
    for key, value in sorted(report.items()):
        print("  %-22s %.3f" % (key, value))

    # ------------------------------------------------------------------ #
    # Serving: save the model, load it back, predict on unseen points.
    # ------------------------------------------------------------------ #
    with tempfile.TemporaryDirectory() as tmp:
        artifact_dir = Path(tmp) / "sspc-model"
        model.save(artifact_dir)
        print()
        print("artifact saved to %s" % artifact_dir)

        # A fresh process would only need the artifact directory — no
        # training data, no refit.
        index = ProjectedClusterIndex(load_artifact(artifact_dir))

        # New traffic: points drawn near existing members (should be
        # assigned) plus uniform background noise (should be rejected by
        # the outlier gate).
        rng = np.random.default_rng(1)
        members = rng.choice(dataset.n_objects, size=30, replace=False)
        near = dataset.data[members] + rng.normal(
            scale=0.02, size=(30, dataset.n_dimensions)
        )
        noise = rng.uniform(
            dataset.data.min(), dataset.data.max(), size=(30, dataset.n_dimensions)
        )
        new_points = np.vstack([near, noise])

        labels = index.predict(new_points)
        assigned = int(np.count_nonzero(labels >= 0))
        print(
            "predicted %d new points: %d assigned, %d rejected as outliers"
            % (labels.size, assigned, labels.size - assigned)
        )

        # Soft assignments: each point's two best clusters and their gains.
        _, top_clusters, top_gains = index.top_assignments(new_points[:3], top_m=2)
        for row in range(3):
            print(
                "  point %d: best cluster %d (gain %.2f), runner-up %d (gain %.2f)"
                % (row, top_clusters[row, 0], top_gains[row, 0],
                   top_clusters[row, 1], top_gains[row, 1])
            )

        # Fold the accepted points into the serving statistics (no refit).
        index.partial_update(new_points, labels)
        print("after partial_update the served cluster sizes are %s"
              % index.cluster_sizes().tolist())

    # ------------------------------------------------------------------ #
    # Streaming: keep a model current over a drifting, unbounded stream.
    # ------------------------------------------------------------------ #
    from repro.data.streams import ClusterBirth, DriftingStreamGenerator, MeanShift
    from repro.evaluation import adjusted_rand_index
    from repro.stream import StreamConfig, StreamingSSPC, load_checkpoint

    # The stream drifts mid-flight: cluster 0's means move at batch 8 and a
    # brand-new cluster is born at batch 12.
    stream = DriftingStreamGenerator(
        n_dimensions=40,
        n_clusters=3,
        avg_cluster_dimensionality=6,
        outlier_fraction=0.05,
        events=[MeanShift(batch=8, cluster=0, magnitude=0.3), ClusterBirth(batch=12)],
        random_state=7,
    )
    stream_model = SSPC(n_clusters=3, m=0.5, max_iterations=20, random_state=3)
    stream_model.fit(stream.warmup(900).data)

    engine = StreamingSSPC(
        stream_model.to_artifact(),
        config=StreamConfig(seed=1, lifecycle_every=4, drift_check_every=2,
                            spawn_min_points=20),
    )
    print()
    print("streaming 16 batches over a drifting stream ...")
    for batch in stream.batches(16, batch_size=150):
        result = engine.process_batch(batch.data)
        for event in result.events:
            print("  batch %d: %s cluster %d" % (batch.index, event.kind, event.cluster_id))

    with tempfile.TemporaryDirectory() as tmp:
        checkpoint_dir = Path(tmp) / "stream-checkpoint"
        engine.checkpoint(checkpoint_dir)
        # A fresh process resumes mid-stream: batches are a pure function of
        # (seed, index), so the continuation is exactly what an
        # uninterrupted run would have produced.
        resumed = load_checkpoint(checkpoint_dir)
        aris = []
        for batch in stream.batches(8, batch_size=150, start=resumed.n_batches):
            result = resumed.process_batch(batch.data)
            clustered = batch.labels >= 0
            aris.append(adjusted_rand_index(batch.labels[clustered],
                                            result.labels[clustered]))
        print("resumed at batch 16; mean ARI over 8 post-drift batches: %.3f"
              % float(np.mean(aris)))
        print("live clusters: %d (stable ids %s), %d spawned, %d drift refreshes"
              % (resumed.n_clusters, resumed.cluster_ids,
                 resumed.n_spawned, resumed.n_drift_refreshes))

    # ------------------------------------------------------------------ #
    # Observability: trace a fit and inspect it in Perfetto.
    # ------------------------------------------------------------------ #
    from repro import obs
    from repro.obs import chrome_trace, write_chrome_trace

    with obs.recording() as recorder:
        SSPC(n_clusters=5, m=0.5, random_state=0).fit(dataset.data)

    print()
    print("traced fit: %d spans, %d hook crossings" % (
        len(recorder.spans), recorder.n_hook_calls))
    by_category = {}
    for span in recorder.spans:
        by_category.setdefault(span["cat"], []).append(span["dur"])
    for category, durations in sorted(by_category.items()):
        print("  %-8s %4d spans, %.1f ms total"
              % (category, len(durations), sum(durations) * 1e3))
    print("per-iteration membership deltas: %s"
          % [int(v) for v in recorder.histograms["fit.changed_clusters"]])

    trace_path = Path(tempfile.gettempdir()) / "sspc-fit-trace.json"
    write_chrome_trace(trace_path, recorder)
    print("Chrome trace written to %s — open it in https://ui.perfetto.dev"
          % trace_path)
    print("(or inspect it from the shell: repro-obs report --trace %s)" % trace_path)
    # The same document is available in-memory, e.g. for tests:
    assert chrome_trace(recorder)["traceEvents"]


if __name__ == "__main__":
    main()
