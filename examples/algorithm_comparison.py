"""Comparing SSPC against the paper's baselines on low-dimensional clusters.

A reduced-scale rendition of the Figure 3 / Figure 5 story: as the
fraction of relevant dimensions per cluster shrinks, full-space methods
(CLARANS) fail first, then the unsupervised projected methods (PROCLUS,
HARP) degrade, while SSPC — especially with a little knowledge — keeps
finding the clusters.

Run with:  python examples/algorithm_comparison.py
"""

from __future__ import annotations

from repro import SSPC
from repro.baselines import CLARANS, HARP, PROCLUS
from repro.data import make_projected_clusters
from repro.evaluation import adjusted_rand_index
from repro.semisupervision import sample_knowledge


def evaluate_algorithms(dataset, seed=0):
    """Return {algorithm name: ARI} for one dataset."""
    results = {}

    proclus = PROCLUS(
        n_clusters=dataset.n_clusters,
        avg_dimensions=dataset.average_dimensionality(),
        random_state=seed,
    ).fit(dataset.data)
    results["PROCLUS (correct l)"] = adjusted_rand_index(dataset.labels, proclus.labels_)

    harp = HARP(n_clusters=dataset.n_clusters, random_state=seed).fit(dataset.data)
    results["HARP"] = adjusted_rand_index(dataset.labels, harp.labels_)

    clarans = CLARANS(n_clusters=dataset.n_clusters, max_neighbors=100, random_state=seed).fit(
        dataset.data
    )
    results["CLARANS"] = adjusted_rand_index(dataset.labels, clarans.labels_)

    sspc = SSPC(n_clusters=dataset.n_clusters, m=0.5, random_state=seed).fit(dataset.data)
    results["SSPC (unsupervised)"] = adjusted_rand_index(dataset.labels, sspc.labels_)

    knowledge = sample_knowledge(
        dataset.labels,
        dataset.relevant_dimensions,
        category="dimensions",
        input_size=3,
        coverage=1.0,
        random_state=seed,
    )
    guided = SSPC(n_clusters=dataset.n_clusters, m=0.5, random_state=seed).fit(
        dataset.data, knowledge
    )
    results["SSPC (3 labeled dims/cluster)"] = adjusted_rand_index(dataset.labels, guided.labels_)
    return results


def main() -> None:
    configurations = [
        ("20% relevant dimensions", dict(n_dimensions=100, avg_cluster_dimensionality=20)),
        ("10% relevant dimensions", dict(n_dimensions=100, avg_cluster_dimensionality=10)),
        ("5% relevant dimensions", dict(n_dimensions=100, avg_cluster_dimensionality=5)),
        ("2% relevant dimensions", dict(n_dimensions=400, avg_cluster_dimensionality=8)),
    ]
    algorithms = None
    table = {}
    for note, overrides in configurations:
        dataset = make_projected_clusters(
            n_objects=400, n_clusters=4, random_state=5, **overrides
        )
        results = evaluate_algorithms(dataset)
        table[note] = results
        if algorithms is None:
            algorithms = list(results)

    print("Adjusted Rand Index by algorithm and cluster dimensionality\n")
    header = "%-32s" % "algorithm" + "".join("%26s" % note for note in table)
    print(header)
    for algorithm in algorithms:
        row = "%-32s" % algorithm
        row += "".join("%26.3f" % table[note][algorithm] for note in table)
        print(row)
    print(
        "\nExpected shape: every method handles 20%; CLARANS collapses first, the\n"
        "unsupervised projected methods degrade as the dimensionality drops, and\n"
        "SSPC with a few labeled dimensions stays accurate throughout."
    )


if __name__ == "__main__":
    main()
