"""Semi-supervised clustering of a gene-expression-like matrix.

This is the scenario that motivates the paper (Section 1 and 5.3): a
matrix of 150 tissue samples by thousands of genes, where each sample
class is characterised by a small set of marker genes (about 1% of all
genes).  Unsupervised projected clustering struggles at this extreme
dimensionality; a handful of labeled samples and marker genes per class
recovers the structure.

Run with:  python examples/gene_expression_semisupervised.py
"""

from __future__ import annotations

from repro import SSPC
from repro.data import make_expression_like_dataset
from repro.evaluation import adjusted_rand_index
from repro.semisupervision import sample_knowledge


def run_sspc(dataset, knowledge=None, seed=0):
    """Fit SSPC and return the ARI with labeled objects stripped."""
    model = SSPC(n_clusters=dataset.n_clusters, m=0.5, random_state=seed)
    model.fit(dataset.data, knowledge)
    result = model.result_
    if knowledge is not None:
        result = result.without_objects(knowledge.labeled_object_indices())
    return adjusted_rand_index(dataset.labels, result.labels()), model


def main() -> None:
    # 150 samples x 1500 genes, 5 sample classes, 15 marker genes per class
    # (1% of the genes) — a reduced-size version of the paper's Section 5.3
    # configuration that runs in a few seconds.
    dataset = make_expression_like_dataset(
        n_samples=150,
        n_genes=1500,
        n_sample_classes=5,
        n_marker_genes=15,
        random_state=7,
    )
    print(
        "expression-like dataset: %d samples x %d genes, %d classes, %d marker genes per class"
        % (dataset.n_objects, dataset.n_dimensions, dataset.n_clusters, 15)
    )

    # 1) Fully unsupervised run.
    raw_ari, _ = run_sspc(dataset, None)
    print("\n[1] unsupervised SSPC:                       ARI = %.3f" % raw_ari)

    # 2) A few labeled samples per class (e.g. pathologist-confirmed cases).
    labeled_samples = sample_knowledge(
        dataset.labels,
        dataset.relevant_dimensions,
        category="objects",
        input_size=5,
        coverage=1.0,
        random_state=1,
    )
    ari_objects, _ = run_sspc(dataset, labeled_samples)
    print("[2] + 5 labeled samples per class:           ARI = %.3f" % ari_objects)

    # 3) A few marker genes per class (e.g. genes known to be disease related).
    labeled_genes = sample_knowledge(
        dataset.labels,
        dataset.relevant_dimensions,
        category="dimensions",
        input_size=5,
        coverage=1.0,
        random_state=1,
    )
    ari_dimensions, model = run_sspc(dataset, labeled_genes)
    print("[3] + 5 marker genes per class:              ARI = %.3f" % ari_dimensions)

    # 4) Both kinds, covering only 3 of the 5 classes — knowledge need not
    #    cover every class (Section 5.3 / Figure 6).
    partial = sample_knowledge(
        dataset.labels,
        dataset.relevant_dimensions,
        category="both",
        input_size=5,
        coverage=0.6,
        random_state=1,
    )
    ari_partial, _ = run_sspc(dataset, partial)
    print("[4] + both kinds for 60%% of the classes:     ARI = %.3f" % ari_partial)

    # Show which genes the best model considers markers of each sample class.
    print("\nselected marker genes of the guided model (run [3]):")
    for index, dims in enumerate(model.selected_dimensions_):
        preview = ", ".join("g%d" % gene for gene in dims[:8])
        suffix = " ..." if len(dims) > 8 else ""
        print("  class %d: %d genes (%s%s)" % (index, len(dims), preview, suffix))


if __name__ == "__main__":
    main()
