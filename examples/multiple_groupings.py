"""Steering the clustering towards one of several valid groupings.

Section 5.4 of the paper: the same patients may group by treatment
response *or* by recurrence risk — two independent, equally valid
clusterings supported by different subsets of dimensions.  An unsupervised
algorithm returns a single clustering (at best one of the groupings);
with semi-supervision, the *same* algorithm can be pointed at either
grouping by supplying knowledge drawn from it.

Run with:  python examples/multiple_groupings.py
"""

from __future__ import annotations

from repro import SSPC
from repro.data import make_multigroup_dataset
from repro.evaluation import adjusted_rand_index
from repro.semisupervision import KnowledgeSampler


def main() -> None:
    # 120 objects carrying two independent groupings of 4 clusters each,
    # encoded on two disjoint 500-dimension blocks (8 relevant dimensions per
    # cluster, i.e. under 1% of the combined dimensionality).
    dataset = make_multigroup_dataset(
        n_objects=120,
        n_dimensions_per_grouping=500,
        n_clusters=4,
        avg_cluster_dimensionality=8,
        random_state=3,
    )
    print(
        "dataset: %d objects x %d dimensions carrying %d independent groupings"
        % (dataset.n_objects, dataset.n_dimensions, dataset.n_groupings)
    )

    def evaluate(labels, note):
        ari1 = adjusted_rand_index(dataset.grouping_labels(0), labels)
        ari2 = adjusted_rand_index(dataset.grouping_labels(1), labels)
        print("%-38s ARI vs grouping 1 = %.3f   ARI vs grouping 2 = %.3f" % (note, ari1, ari2))

    # Unsupervised run: whatever structure SSPC happens to latch onto.
    unsupervised = SSPC(n_clusters=4, m=0.5, random_state=0).fit(dataset.data)
    evaluate(unsupervised.labels_, "unsupervised SSPC:")

    # Guided runs: knowledge sampled from one grouping steers the result there.
    for grouping in range(dataset.n_groupings):
        sampler = KnowledgeSampler(
            dataset.grouping_labels(grouping), dataset.grouping_dimensions(grouping)
        )
        knowledge = sampler.sample(
            category="both", input_size=5, coverage=1.0, random_state=grouping
        )
        model = SSPC(n_clusters=4, m=0.5, random_state=0).fit(dataset.data, knowledge)
        stripped = model.result_.without_objects(knowledge.labeled_object_indices())
        evaluate(stripped.labels(), "SSPC guided by grouping %d knowledge:" % (grouping + 1))


if __name__ == "__main__":
    main()
