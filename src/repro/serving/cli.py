"""Command-line entry points for the serving subsystem.

Three subcommands cover the fit-once / score-many lifecycle::

    # fit a model and persist the artifact
    python -m repro.serve fit --synthetic 500x60x3 --artifact model/ --random-state 0
    python -m repro.serve fit --input train.csv --n-clusters 3 --artifact model/

    # score unseen points against a persisted artifact
    python -m repro.serve predict --artifact model/ --input new_points.csv
    python -m repro.serve predict --artifact model/ --input new_points.csv \
        --top-m 3 --output assignments.csv --update --save-back

    # look inside an artifact without loading the arrays
    python -m repro.serve inspect --artifact model/

Input matrices are CSV (the repository's ``save_csv_dataset`` layout: a
header row, one object per row, an optional ``label`` column which is
ignored for prediction) or ``.npy`` files.  The same console script is
installed as ``repro-serve`` (see ``pyproject.toml``).
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro import obs
from repro.core.backends import BACKEND_NAMES
from repro.core.model import OUTLIER_LABEL
from repro.serving.artifact import load_artifact
from repro.serving.index import ProjectedClusterIndex

__all__ = ["main", "build_parser"]


def _log_stderr(message: str) -> None:
    print(message, file=sys.stderr)


# ---------------------------------------------------------------------- #
# I/O helpers
# ---------------------------------------------------------------------- #
def _load_matrix(path: str) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Load ``(data, labels-or-None)`` from a CSV or ``.npy`` file."""
    file_path = Path(path)
    if not file_path.is_file():
        raise FileNotFoundError("input file %s does not exist" % file_path)
    if file_path.suffix.lower() == ".npy":
        data = np.load(file_path)
        if data.ndim != 2:
            raise ValueError("%s does not hold a 2-d matrix" % file_path)
        return np.asarray(data, dtype=float), None
    from repro.data.loaders import load_csv_dataset

    return load_csv_dataset(file_path)


def _parse_synthetic(spec: str):
    """Parse an ``NxDxK`` synthetic-dataset spec (e.g. ``500x60x3``)."""
    parts = spec.lower().split("x")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            "--synthetic expects NxDxK (objects x dimensions x clusters), got %r" % spec
        )
    try:
        n_objects, n_dimensions, n_clusters = (int(part) for part in parts)
    except ValueError:
        raise argparse.ArgumentTypeError("--synthetic components must be integers: %r" % spec)
    if min(n_objects, n_dimensions, n_clusters) < 1:
        raise argparse.ArgumentTypeError("--synthetic components must be positive: %r" % spec)
    return n_objects, n_dimensions, n_clusters


def _write_assignments(
    path: Optional[str],
    labels: np.ndarray,
    top_clusters: Optional[np.ndarray] = None,
    top_gains: Optional[np.ndarray] = None,
) -> None:
    """Write per-point assignments as CSV to ``path`` or stdout."""
    handle = open(path, "w", newline="") if path else sys.stdout
    try:
        writer = csv.writer(handle)
        header = ["index", "label"]
        if top_clusters is not None:
            m = top_clusters.shape[1]
            for rank in range(m):
                header += ["cluster_%d" % rank, "gain_%d" % rank]
        writer.writerow(header)
        for index, label in enumerate(labels):
            row = [index, int(label)]
            if top_clusters is not None:
                for rank in range(top_clusters.shape[1]):
                    row.append(int(top_clusters[index, rank]))
                    row.append("%r" % float(top_gains[index, rank]))
            writer.writerow(row)
    finally:
        if path:
            handle.close()


# ---------------------------------------------------------------------- #
# subcommands
# ---------------------------------------------------------------------- #
def _cmd_fit(args: argparse.Namespace) -> int:
    from repro.core.sspc import SSPC

    if (args.input is None) == (args.synthetic is None):
        print("fit: exactly one of --input and --synthetic is required", file=sys.stderr)
        return 2

    if args.synthetic is not None:
        from repro.data.generator import make_projected_clusters

        n_objects, n_dimensions, n_clusters = args.synthetic
        dataset = make_projected_clusters(
            n_objects=n_objects,
            n_dimensions=n_dimensions,
            n_clusters=n_clusters,
            avg_cluster_dimensionality=max(n_dimensions // 10, 3),
            random_state=args.random_state,
        )
        data = dataset.data
        if args.n_clusters is None:
            args.n_clusters = n_clusters
    else:
        data, _ = _load_matrix(args.input)
        if args.n_clusters is None:
            print("fit: --n-clusters is required with --input", file=sys.stderr)
            return 2

    threshold_kwargs = {}
    if args.p is not None:
        threshold_kwargs["p"] = args.p
    else:
        threshold_kwargs["m"] = args.m

    model = SSPC(
        n_clusters=args.n_clusters,
        max_iterations=args.max_iterations,
        random_state=args.random_state,
        backend=args.backend,
        **threshold_kwargs,
    )
    with obs.trace_session(args.trace, args.metrics_out, log=_log_stderr):
        model.fit(data)
    directory = model.save(args.artifact, metadata={"source": args.input or "synthetic"})
    print(model.result_.summary())
    print("artifact written to %s" % directory)
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    if args.save_back and not args.update:
        print("predict: --save-back requires --update", file=sys.stderr)
        return 2
    artifact = load_artifact(args.artifact)
    index = ProjectedClusterIndex(artifact, center=args.center, backend=args.backend)
    points, _ = _load_matrix(args.input)

    with obs.trace_session(args.trace, args.metrics_out, log=_log_stderr):
        top_clusters = top_gains = None
        if args.top_m is not None:
            labels, top_clusters, top_gains = index.top_assignments(points, args.top_m)
        else:
            labels = index.predict(points)

        if args.update:
            index.partial_update(points, labels)
            if args.save_back:
                index.fold_into(artifact)
                artifact.metadata["partial_updates"] = (
                    int(artifact.metadata.get("partial_updates", 0)) + 1
                )
                artifact.save(args.artifact)

    _write_assignments(args.output, labels, top_clusters, top_gains)
    assigned = int(np.count_nonzero(labels != OUTLIER_LABEL))
    print(
        "scored %d points: %d assigned, %d outliers"
        % (labels.size, assigned, labels.size - assigned),
        file=sys.stderr,
    )
    if args.update and args.save_back:
        print("updated artifact written back to %s" % args.artifact, file=sys.stderr)
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    artifact = load_artifact(args.artifact)
    description = artifact.describe()
    if args.json:
        json.dump(description, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0
    print("%s artifact (schema v%d)" % (description["algorithm"] or "clustering",
                                        description["schema_version"]))
    print("  fitted on        : %d objects x %d dimensions"
          % (description["n_objects"], description["n_dimensions"]))
    print("  clusters         : %d (sizes %s)"
          % (description["n_clusters"], description["cluster_sizes"]))
    print("  dimensionalities : %s" % description["cluster_dimensionalities"])
    print("  outliers         : %d" % description["n_outliers"])
    print("  objective        : %.6g after %d iterations"
          % (description["objective"], description["n_iterations"]))
    print("  threshold        : %s" % description["threshold"])
    print("  projections kept : %s" % description["includes_projections"])
    if description["metadata"]:
        print("  metadata         : %s" % description["metadata"])
    return 0


# ---------------------------------------------------------------------- #
# parser
# ---------------------------------------------------------------------- #
def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a Chrome trace-event JSON of the command (Perfetto)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write a checksummed metrics snapshot of the command")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Persist and serve SSPC projected-clustering models.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    fit = commands.add_parser("fit", help="fit SSPC and save a model artifact")
    fit.add_argument("--input", help="training matrix (CSV or .npy)")
    fit.add_argument("--synthetic", type=_parse_synthetic, metavar="NxDxK",
                     help="generate a synthetic dataset instead of --input")
    fit.add_argument("--artifact", required=True, help="output artifact directory")
    fit.add_argument("--n-clusters", type=int, default=None)
    fit.add_argument("--m", type=float, default=0.5,
                     help="variance-ratio threshold parameter (default 0.5)")
    fit.add_argument("--p", type=float, default=None,
                     help="chi-square threshold parameter (overrides --m)")
    fit.add_argument("--max-iterations", type=int, default=30)
    fit.add_argument("--random-state", type=int, default=0)
    fit.add_argument("--backend", choices=BACKEND_NAMES, default=None,
                     help="assignment-kernel backend (default: "
                          "$REPRO_ASSIGNMENT_BACKEND or reference)")
    _add_obs_arguments(fit)
    fit.set_defaults(func=_cmd_fit)

    predict = commands.add_parser("predict", help="assign new points with a saved artifact")
    predict.add_argument("--artifact", required=True, help="artifact directory")
    predict.add_argument("--input", required=True, help="points to score (CSV or .npy)")
    predict.add_argument("--output", default=None,
                         help="assignments CSV (default: stdout)")
    predict.add_argument("--top-m", type=int, default=None,
                         help="also emit the top-m soft assignments per point")
    predict.add_argument("--center", choices=("median", "representative", "mean"),
                         default="median", help="per-cluster center used for scoring")
    predict.add_argument("--backend", choices=BACKEND_NAMES, default=None,
                         help="assignment-kernel backend (default: "
                              "$REPRO_ASSIGNMENT_BACKEND or reference)")
    predict.add_argument("--update", action="store_true",
                         help="fold accepted points into the serving statistics")
    predict.add_argument("--save-back", action="store_true",
                         help="with --update: persist the updated statistics")
    _add_obs_arguments(predict)
    predict.set_defaults(func=_cmd_predict)

    inspect = commands.add_parser("inspect", help="describe a saved artifact")
    inspect.add_argument("--artifact", required=True, help="artifact directory")
    inspect.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    inspect.set_defaults(func=_cmd_inspect)

    return parser


def main(argv=None) -> int:
    """CLI entry point (``repro-serve`` / ``python -m repro.serve``)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (FileNotFoundError, ValueError) as error:
        print("error: %s" % error, file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
