"""Memory-mapped access to the arrays of an *uncompressed* NPZ bundle.

``numpy.load`` silently ignores ``mmap_mode`` for ``.npz`` files: the
zip container is always decompressed member by member into fresh
allocations.  That is exactly wrong for a serving fleet — N worker
processes each paying a private copy of the same read-only model.  This
module maps the members in place instead.

An NPZ written by :func:`numpy.savez` (*not* ``savez_compressed``)
stores every member with the ``ZIP_STORED`` method, so each embedded
``.npy`` payload is a contiguous byte range of the archive file.  For
each member we

1. read the zip *local* file header to find where the member's bytes
   start (the central directory's ``header_offset`` plus the local
   header, whose name/extra lengths can differ from the central ones),
2. parse the ``.npy`` header inside the member (magic, version, dtype,
   shape, order) with :mod:`numpy.lib.format`, and
3. hand the absolute data offset to :class:`numpy.memmap`.

The result: every worker process that maps the same artifact shares one
set of physical pages through the page cache — loading is O(metadata)
and the model costs its footprint *once* per machine, not once per
worker.  ``mode="r"`` returns read-only views; ``mode="c"``
(copy-on-write) returns writable views whose modified pages are private
to the process, which is what lets an index build mutable assignment
plans over a shared artifact without a bulk copy.

Zip CRCs are *not* checked on this path (they would force a full read);
callers that need integrity run the artifact's SHA-256 array checksums
over the mapped views instead, which is both stronger and explicit.
"""

from __future__ import annotations

import struct
import zipfile
from pathlib import Path
from typing import Dict, Union

import numpy as np
from numpy.lib import format as npy_format

PathLike = Union[str, Path]

__all__ = ["MMAP_MODES", "CompressedMemberError", "mmap_npz"]

#: Supported :func:`mmap_npz` modes — read-only and copy-on-write.
MMAP_MODES = ("r", "c")

#: Fixed size of a zip local file header (before name + extra field).
_LOCAL_HEADER_SIZE = 30
_LOCAL_HEADER_MAGIC = b"PK\x03\x04"


class CompressedMemberError(ValueError):
    """Raised when an NPZ member is deflated and therefore not mappable.

    Artifacts written by schema >= 3 store members uncompressed; older
    (``savez_compressed``) bundles must be loaded eagerly — the caller
    decides whether to fall back or to re-save the artifact.
    """

    def __init__(self, path: PathLike, member: str) -> None:
        super().__init__(
            "NPZ member %r in %s is compressed and cannot be memory-mapped; "
            "re-save the artifact with the current library (uncompressed NPZ) "
            "or load it eagerly" % (member, path)
        )
        self.path = Path(path)
        self.member = member


def _member_data_offset(handle, header_offset: int, path: Path, member: str) -> int:
    """Absolute offset of a stored member's first payload byte.

    The central directory records where the member's *local header*
    starts; the payload follows the local header's fixed part plus its
    own (possibly different) file-name and extra-field lengths.
    """
    handle.seek(header_offset)
    local_header = handle.read(_LOCAL_HEADER_SIZE)
    if len(local_header) != _LOCAL_HEADER_SIZE or local_header[:4] != _LOCAL_HEADER_MAGIC:
        raise ValueError(
            "NPZ member %r in %s has a corrupt local header" % (member, path)
        )
    name_length, extra_length = struct.unpack("<HH", local_header[26:30])
    return header_offset + _LOCAL_HEADER_SIZE + name_length + extra_length


def _read_npy_header(handle, path: Path, member: str):
    """Parse a ``.npy`` header at the current position; returns (shape, fortran, dtype)."""
    version = npy_format.read_magic(handle)
    if version == (1, 0):
        return npy_format.read_array_header_1_0(handle)
    if version == (2, 0):
        return npy_format.read_array_header_2_0(handle)
    raise ValueError(
        "NPZ member %r in %s uses unsupported .npy format version %s"
        % (member, path, (version,))
    )


def mmap_npz(path: PathLike, *, mode: str = "r") -> Dict[str, np.ndarray]:
    """Map every array of an uncompressed NPZ without reading the data.

    Parameters
    ----------
    path:
        An ``.npz`` file whose members are stored (``numpy.savez``).
    mode:
        ``"r"`` — read-only shared views (attempted writes raise);
        ``"c"`` — copy-on-write views (writes stay private to this
        process and never touch the file).

    Returns a dict keyed like ``numpy.load``'s ``NpzFile`` (member names
    without the ``.npy`` suffix).  Zero-size arrays are returned as
    ordinary empty arrays — there are no bytes to share.

    Raises
    ------
    CompressedMemberError
        If any member was deflated (``savez_compressed`` bundle).
    """
    if mode not in MMAP_MODES:
        raise ValueError("mode must be one of %s, got %r" % (MMAP_MODES, mode))
    path = Path(path)
    arrays: Dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive:
        members = archive.infolist()
        with open(path, "rb") as handle:
            for info in members:
                name = info.filename
                key = name[:-4] if name.endswith(".npy") else name
                if info.compress_type != zipfile.ZIP_STORED:
                    raise CompressedMemberError(path, name)
                data_offset = _member_data_offset(handle, info.header_offset, path, name)
                handle.seek(data_offset)
                shape, fortran_order, dtype = _read_npy_header(handle, path, name)
                array_offset = handle.tell()
                if int(np.prod(shape)) == 0:
                    array = np.empty(shape, dtype=dtype)
                    if mode == "r":
                        array.setflags(write=False)
                    arrays[key] = array
                    continue
                mapped = np.memmap(
                    path,
                    dtype=dtype,
                    mode=mode,
                    offset=array_offset,
                    shape=shape,
                    order="F" if fortran_order else "C",
                )
                arrays[key] = mapped
    return arrays
