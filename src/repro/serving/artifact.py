"""Versioned, self-describing model artifacts for fitted projected clusterings.

A :class:`ClusteringResult` dies with the process that produced it.  The
serving subsystem's first layer fixes that: :class:`ModelArtifact`
captures everything out-of-sample inference needs —

* per-cluster selected dimensions, representatives and training members,
* per-cluster, per-dimension mean / median / variance (one
  :class:`~repro.core.stats_cache.ClusterStatsCache` pass per cluster),
* the fitted selection-threshold scheme (its user parameter plus the
  global column variances it was fitted on), and
* fit metadata (algorithm, parameters, objective, iteration count),

and persists it on disk as a directory holding a JSON manifest
(``manifest.json`` — everything human-readable, including the schema
version) next to a single NPZ bundle (``arrays.npz`` — every array at
full float64 precision).  The split keeps the artifact self-describing
(``python -m repro.serve inspect`` only reads the manifest) while the
binary arrays round-trip bit for bit, which is what makes loaded-model
predictions identical to in-memory ones.

Optionally the artifact also stores each cluster's *member projections* —
the member rows restricted to the cluster's selected dimensions.  Because
the paper's clusters are extremely low-dimensional, this costs only
``size x |V_i|`` floats per cluster, and it is what lets
:meth:`~repro.serving.index.ProjectedClusterIndex.partial_update`
maintain *exact* medians as new points are folded in.

Schema versioning: ``SCHEMA_VERSION`` is written into every manifest;
:func:`load_artifact` refuses manifests from a newer schema (forward
compatibility is never silently guessed at) and upgrades older ones
explicitly when a migration exists.

Durability (schema 2): :meth:`ModelArtifact.save` is crash-safe — the
whole directory is staged and renamed into place via
:func:`~repro.reliability.atomic.atomic_write_dir` with the manifest
written last, so a kill at any point leaves either the previous
artifact or the new one, never a torn hybrid.  The manifest records a
SHA-256 checksum per array plus a self-checksum over its own canonical
form; :func:`load_artifact` verifies both and raises a typed
:class:`~repro.reliability.integrity.IntegrityError` naming the damaged
payload.  Schema-1 artifacts (no checksums) still load, unverified.

Shared memory (schema 3): ``arrays.npz`` is written *uncompressed*
(``numpy.savez``), which makes every embedded ``.npy`` payload a
contiguous byte range of the archive — so ``load_artifact(path,
mmap_mode="r")`` maps the arrays straight out of the page cache via
:mod:`repro.serving.npz_mmap` instead of allocating private copies.  N
serving workers that map the same artifact share one set of physical
pages; ``mmap_mode="c"`` (copy-on-write) additionally lets a process
scribble on its views without touching the file or its siblings.  The
SHA-256 array checksums are verified over the mapped views on load, so
the integrity contract is identical on both paths.  Compressed bundles
from schema <= 2 still load eagerly; asking to map one raises
:class:`~repro.serving.npz_mmap.CompressedMemberError`.
"""

from __future__ import annotations

import io
import json
import zipfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.core.model import ClusteringResult
from repro.core.stats_cache import ClusterStatsCache
from repro.core.thresholds import SelectionThreshold, make_threshold
from repro.reliability import (
    IntegrityError,
    atomic_write_bytes,
    atomic_write_dir,
    atomic_write_json,
    checksum_arrays,
    require_key,
    verify_array_checksums,
    verify_stamp,
)
from repro.serving.npz_mmap import CompressedMemberError, mmap_npz

PathLike = Union[str, Path]

ARTIFACT_FORMAT = "repro-sspc-artifact"
SCHEMA_VERSION = 3
MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"

__all__ = [
    "ARTIFACT_FORMAT",
    "SCHEMA_VERSION",
    "ClusterModel",
    "ModelArtifact",
    "load_artifact",
    "threshold_from_description",
]


def threshold_from_description(
    description: Dict[str, object],
    global_variance: np.ndarray,
) -> SelectionThreshold:
    """Rebuild a fitted :class:`SelectionThreshold` from its description.

    ``description`` is the dict produced by
    :meth:`SelectionThreshold.describe` (``{"scheme": "m", "m": 0.5}`` or
    ``{"scheme": "p", "p": 0.01}``); the threshold is fitted directly from
    the stored global variances so it reproduces the training-time
    thresholds exactly.
    """
    scheme = description.get("scheme")
    if scheme == "m":
        threshold = make_threshold(m=float(description["m"]))
    elif scheme == "p":
        threshold = make_threshold(p=float(description["p"]))
    else:
        raise ValueError("unknown threshold scheme %r" % (scheme,))
    threshold.fit_from_variance(global_variance)
    return threshold


@dataclass
class ClusterModel:
    """Per-cluster serving payload of a :class:`ModelArtifact`.

    Attributes
    ----------
    dimensions:
        Selected dimension indices ``V_i``.
    members:
        Training-time member object indices (kept for
        :class:`ClusteringResult` round trips; serving never needs the
        training data itself).
    representative:
        Full ``d``-vector used by the last assignment pass.
    mean, median, variance:
        Per-dimension statistics of the member block (full ``d``-vectors,
        straight from the shared :class:`ClusterStatsCache`).
    score:
        The cluster's ``phi_i`` objective component.
    member_projections:
        ``(size, |V_i|)`` member rows restricted to the selected
        dimensions, or ``None`` when the artifact was saved without
        projections.  Enables exact median maintenance in
        ``partial_update``.
    """

    dimensions: np.ndarray
    members: np.ndarray
    representative: np.ndarray
    mean: np.ndarray
    median: np.ndarray
    variance: np.ndarray
    score: float = float("nan")
    member_projections: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.dimensions = np.asarray(self.dimensions, dtype=int)
        self.members = np.asarray(self.members, dtype=int)
        self.representative = np.asarray(self.representative, dtype=float)
        self.mean = np.asarray(self.mean, dtype=float)
        self.median = np.asarray(self.median, dtype=float)
        self.variance = np.asarray(self.variance, dtype=float)
        if self.member_projections is not None:
            self.member_projections = np.asarray(self.member_projections, dtype=float)

    @property
    def size(self) -> int:
        """Number of training members."""
        return int(self.members.size)

    @property
    def dimensionality(self) -> int:
        """Number of selected dimensions."""
        return int(self.dimensions.size)


@dataclass
class ModelArtifact:
    """A persisted projected-clustering model (fit-once / score-many).

    Build one with :meth:`from_result` (any :class:`ClusteringResult`
    plus its training data) or via :meth:`SSPC.save
    <repro.core.sspc.SSPC.save>`; persist with :meth:`save`; restore with
    :func:`load_artifact`; serve with
    :class:`~repro.serving.index.ProjectedClusterIndex`.
    """

    clusters: List[ClusterModel]
    labels: np.ndarray
    n_objects: int
    n_dimensions: int
    threshold_description: Dict[str, object]
    global_variance: np.ndarray
    objective: float = float("nan")
    n_iterations: int = 0
    algorithm: str = ""
    parameters: Dict[str, object] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        self.labels = np.asarray(self.labels, dtype=int)
        self.global_variance = np.asarray(self.global_variance, dtype=float)
        if self.labels.shape[0] != self.n_objects:
            raise ValueError(
                "labels has length %d, expected n_objects=%d"
                % (self.labels.shape[0], self.n_objects)
            )
        if self.global_variance.shape[0] != self.n_dimensions:
            raise ValueError(
                "global_variance has length %d, expected n_dimensions=%d"
                % (self.global_variance.shape[0], self.n_dimensions)
            )
        for index, cluster in enumerate(self.clusters):
            for name in ("representative", "mean", "median", "variance"):
                vector = getattr(cluster, name)
                if vector.shape[0] != self.n_dimensions:
                    raise ValueError(
                        "cluster %d %s has length %d, expected %d"
                        % (index, name, vector.shape[0], self.n_dimensions)
                    )

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_result(
        cls,
        result: ClusteringResult,
        data: np.ndarray,
        *,
        threshold: Optional[SelectionThreshold] = None,
        stats_cache: Optional[ClusterStatsCache] = None,
        include_projections: bool = True,
        metadata: Optional[Dict[str, object]] = None,
    ) -> "ModelArtifact":
        """Capture a fitted clustering (plus its data-derived statistics).

        Parameters
        ----------
        result:
            The clustering to persist.
        data:
            The ``(n, d)`` training data the result was fitted on (used
            only to compute the per-cluster statistics and the member
            projections; it is *not* stored in the artifact).
        threshold:
            The fitted selection threshold of the producing run.  When
            omitted one is rebuilt from ``result.parameters`` (``m`` /
            ``p``, defaulting to ``m=0.5``) and fitted on ``data`` — the
            convention every estimator in this repository follows.
        stats_cache:
            Optional shared statistics workspace; passing the producing
            run's cache makes the statistics capture free (all hits).
        include_projections:
            Store each cluster's member rows on its selected dimensions
            (cheap for low-dimensional clusters) so serving can maintain
            exact medians during ``partial_update``.
        metadata:
            Free-form JSON-serialisable metadata recorded in the
            manifest.
        """
        data = np.asarray(data, dtype=float)
        if data.ndim != 2 or data.shape != (result.n_objects, result.n_dimensions):
            raise ValueError(
                "data must have shape (%d, %d) matching the result"
                % (result.n_objects, result.n_dimensions)
            )
        if stats_cache is None:
            stats_cache = ClusterStatsCache(data)
        if threshold is None:
            threshold = cls._threshold_from_parameters(result.parameters)
        if not threshold.is_fitted:
            threshold.fit_from_variance(stats_cache.global_variance)

        clusters: List[ClusterModel] = []
        for cluster in result.clusters:
            stats = stats_cache.statistics(cluster.members)
            representative = (
                cluster.representative
                if cluster.representative is not None
                else stats.median
            )
            projections = None
            if include_projections:
                projections = data[np.ix_(cluster.members, cluster.dimensions)]
            clusters.append(
                ClusterModel(
                    dimensions=cluster.dimensions.copy(),
                    members=cluster.members.copy(),
                    representative=np.asarray(representative, dtype=float).copy(),
                    mean=stats.mean.copy(),
                    median=stats.median.copy(),
                    variance=stats.variance.copy(),
                    score=float(cluster.score),
                    member_projections=projections,
                )
            )
        return cls(
            clusters=clusters,
            labels=result.labels(),
            n_objects=result.n_objects,
            n_dimensions=result.n_dimensions,
            threshold_description=dict(threshold.describe()),
            global_variance=threshold.global_variance.copy(),
            objective=float(result.objective),
            n_iterations=int(result.n_iterations),
            algorithm=result.algorithm,
            parameters=dict(result.parameters),
            metadata=dict(metadata or {}),
        )

    @staticmethod
    def _threshold_from_parameters(parameters: Dict[str, object]) -> SelectionThreshold:
        """Threshold scheme implied by a result's recorded parameters."""
        m = parameters.get("m")
        p = parameters.get("p")
        if m is not None:
            return make_threshold(m=float(m))
        if p is not None:
            return make_threshold(p=float(p))
        return make_threshold(m=0.5)

    # ------------------------------------------------------------------ #
    # round trips
    # ------------------------------------------------------------------ #
    @property
    def n_clusters(self) -> int:
        """Number of clusters in the model."""
        return len(self.clusters)

    @property
    def includes_projections(self) -> bool:
        """Whether every cluster carries its member projections."""
        return all(cluster.member_projections is not None for cluster in self.clusters)

    def threshold(self) -> SelectionThreshold:
        """The fitted selection threshold, rebuilt from the stored state."""
        return threshold_from_description(self.threshold_description, self.global_variance)

    def to_result(self) -> ClusteringResult:
        """Reconstruct the :class:`ClusteringResult` the artifact captured.

        Goes through :meth:`ClusteringResult.from_labels`, so members
        (including the outlier list), per-cluster dimensions, scores and
        representatives all round-trip exactly.
        """
        return ClusteringResult.from_labels(
            self.labels,
            self.n_dimensions,
            dimensions=[cluster.dimensions for cluster in self.clusters],
            scores=[cluster.score for cluster in self.clusters],
            representatives=[cluster.representative for cluster in self.clusters],
            objective=self.objective,
            n_iterations=self.n_iterations,
            algorithm=self.algorithm,
            parameters=dict(self.parameters),
            n_clusters=self.n_clusters,
        )

    def describe(self) -> Dict[str, object]:
        """Human-readable summary (the ``inspect`` CLI payload).

        ``cluster_sizes`` reports what an index built from the artifact
        will actually serve: the absorbed ``serving_sizes`` when the
        artifact has been written back after ``partial_update``, else
        the training member counts (also reported separately as
        ``training_sizes``).
        """
        training_sizes = [cluster.size for cluster in self.clusters]
        serving_sizes = self.metadata.get("serving_sizes")
        if not (
            isinstance(serving_sizes, (list, tuple))
            and len(serving_sizes) == len(self.clusters)
        ):
            serving_sizes = training_sizes
        return {
            "format": ARTIFACT_FORMAT,
            "schema_version": self.schema_version,
            "algorithm": self.algorithm,
            "n_objects": self.n_objects,
            "n_dimensions": self.n_dimensions,
            "n_clusters": self.n_clusters,
            "n_outliers": int(np.count_nonzero(self.labels < 0)),
            "objective": self.objective,
            "n_iterations": self.n_iterations,
            "threshold": dict(self.threshold_description),
            "parameters": dict(self.parameters),
            "cluster_sizes": [int(size) for size in serving_sizes],
            "training_sizes": training_sizes,
            "cluster_dimensionalities": [cluster.dimensionality for cluster in self.clusters],
            "includes_projections": self.includes_projections,
            "metadata": dict(self.metadata),
        }

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, path: PathLike) -> Path:
        """Persist the artifact to directory ``path`` (created if needed).

        Writes ``manifest.json`` (schema version + scalar metadata +
        per-array checksums) and ``arrays.npz`` (every array at full
        precision, *uncompressed* so it can be memory-mapped by
        :func:`load_artifact` with ``mmap_mode``).  The directory is
        staged and renamed into place as a unit with the manifest last,
        so a kill mid-save leaves either the previous artifact or the
        new one — never a torn mix.  Returns the directory path.
        """
        directory = Path(path)

        arrays: Dict[str, np.ndarray] = {
            "labels": self.labels,
            "global_variance": self.global_variance,
            "cluster_scores": np.asarray(
                [cluster.score for cluster in self.clusters], dtype=float
            ),
        }
        for index, cluster in enumerate(self.clusters):
            prefix = "cluster_%d_" % index
            arrays[prefix + "dimensions"] = cluster.dimensions
            arrays[prefix + "members"] = cluster.members
            arrays[prefix + "representative"] = cluster.representative
            arrays[prefix + "mean"] = cluster.mean
            arrays[prefix + "median"] = cluster.median
            arrays[prefix + "variance"] = cluster.variance
            if cluster.member_projections is not None:
                arrays[prefix + "projections"] = cluster.member_projections

        manifest = {
            "format": ARTIFACT_FORMAT,
            # Saving always writes the current schema (checksums included),
            # regardless of the schema the artifact was loaded from.
            "schema_version": SCHEMA_VERSION,
            "algorithm": self.algorithm,
            "n_objects": int(self.n_objects),
            "n_dimensions": int(self.n_dimensions),
            "n_clusters": int(self.n_clusters),
            "objective": float(self.objective),
            "n_iterations": int(self.n_iterations),
            "threshold": dict(self.threshold_description),
            "parameters": _jsonable(self.parameters),
            "metadata": _jsonable(self.metadata),
            "includes_projections": bool(self.includes_projections),
            "arrays_file": ARRAYS_NAME,
            "array_checksums": checksum_arrays(arrays),
        }

        buffer = io.BytesIO()
        # Uncompressed on purpose: stored zip members are contiguous byte
        # ranges, which is what makes the mmap load path possible.
        np.savez(buffer, **arrays)
        with atomic_write_dir(directory) as staging:
            atomic_write_bytes(staging / ARRAYS_NAME, buffer.getvalue())
            atomic_write_json(staging / MANIFEST_NAME, manifest)  # manifest commits last
        return directory

    @classmethod
    def load(cls, path: PathLike, *, mmap_mode: Optional[str] = None) -> "ModelArtifact":
        """Load an artifact saved by :meth:`save` (see :func:`load_artifact`)."""
        directory = Path(path)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.is_file():
            raise FileNotFoundError(
                "%s is not a model artifact (missing %s)" % (directory, MANIFEST_NAME)
            )
        try:
            manifest = json.loads(manifest_path.read_text())
        except ValueError as exc:
            raise IntegrityError(
                "artifact manifest %s is not valid JSON (%s): the file is corrupt "
                "or truncated" % (manifest_path, exc),
                path=manifest_path,
            ) from exc

        if manifest.get("format") != ARTIFACT_FORMAT:
            raise ValueError(
                "unrecognised artifact format %r (expected %r)"
                % (manifest.get("format"), ARTIFACT_FORMAT)
            )
        schema_version = int(manifest.get("schema_version", -1))
        if schema_version < 1:
            raise ValueError("artifact manifest is missing a valid schema_version")
        if schema_version > SCHEMA_VERSION:
            raise ValueError(
                "artifact schema_version %d is newer than this library supports (%d); "
                "upgrade the repro package to load it" % (schema_version, SCHEMA_VERSION)
            )
        # Schema >= 2 manifests are self-checksummed; verify before trusting
        # any field.  Schema-1 manifests carry no stamp and load unverified.
        verify_stamp(manifest, path=manifest_path)

        arrays_path = directory / manifest.get("arrays_file", ARRAYS_NAME)
        if not arrays_path.is_file():
            raise FileNotFoundError("artifact arrays file %s is missing" % arrays_path)
        try:
            if mmap_mode is not None:
                arrays = mmap_npz(arrays_path, mode=mmap_mode)
            else:
                with np.load(arrays_path) as bundle:
                    arrays = {key: bundle[key] for key in bundle.files}
        except CompressedMemberError:
            # A schema <= 2 (compressed) bundle cannot be mapped; the
            # caller asked for mmap explicitly, so surface it instead of
            # silently loading a private copy per process.
            raise
        except (OSError, ValueError, EOFError, KeyError, zipfile.BadZipFile, zlib.error) as exc:
            raise IntegrityError(
                "artifact arrays %s are unreadable (%s): the file is corrupt "
                "or truncated" % (arrays_path, exc),
                path=arrays_path,
            ) from exc
        # On the mmap path this walks the mapped views — pages are read
        # (and dropped back to the cache), never duplicated — so both
        # load paths enforce the identical integrity contract.
        verify_array_checksums(
            arrays, manifest.get("array_checksums") or {}, path=arrays_path
        )

        def _field(key):
            return require_key(manifest, key, path=manifest_path, kind="artifact manifest")

        def _array(key):
            return require_key(arrays, key, path=arrays_path, kind="artifact arrays")

        n_clusters = int(_field("n_clusters"))
        scores = arrays.get("cluster_scores")
        clusters: List[ClusterModel] = []
        for index in range(n_clusters):
            prefix = "cluster_%d_" % index
            required = ("dimensions", "members", "representative", "mean", "median", "variance")
            missing = [name for name in required if prefix + name not in arrays]
            if missing:
                raise IntegrityError(
                    "artifact arrays for cluster %d are incomplete in %s (missing %s)"
                    % (index, arrays_path, ", ".join(missing)),
                    path=arrays_path,
                    payload=prefix + missing[0],
                )
            clusters.append(
                ClusterModel(
                    dimensions=arrays[prefix + "dimensions"],
                    members=arrays[prefix + "members"],
                    representative=arrays[prefix + "representative"],
                    mean=arrays[prefix + "mean"],
                    median=arrays[prefix + "median"],
                    variance=arrays[prefix + "variance"],
                    score=float(scores[index]) if scores is not None else float("nan"),
                    member_projections=arrays.get(prefix + "projections"),
                )
            )
        return cls(
            clusters=clusters,
            labels=_array("labels"),
            n_objects=int(_field("n_objects")),
            n_dimensions=int(_field("n_dimensions")),
            threshold_description=dict(_field("threshold")),
            global_variance=_array("global_variance"),
            objective=float(manifest.get("objective", float("nan"))),
            n_iterations=int(manifest.get("n_iterations", 0)),
            algorithm=manifest.get("algorithm", ""),
            parameters=dict(manifest.get("parameters", {})),
            metadata=dict(manifest.get("metadata", {})),
            schema_version=schema_version,
        )


def _jsonable(mapping: Dict[str, object]) -> Dict[str, object]:
    """Coerce a metadata mapping to JSON-serialisable plain types."""
    plain: Dict[str, object] = {}
    for key, value in mapping.items():
        if isinstance(value, np.generic):
            value = value.item()
        elif isinstance(value, np.ndarray):
            value = value.tolist()
        plain[str(key)] = value
    return plain


def load_artifact(path: PathLike, *, mmap_mode: Optional[str] = None) -> ModelArtifact:
    """Load a :class:`ModelArtifact` from ``path``.

    Validates the manifest format and schema version before touching the
    arrays; loading an artifact written by a *newer* library version
    raises instead of guessing.

    Parameters
    ----------
    path:
        The artifact directory written by :meth:`ModelArtifact.save`.
    mmap_mode:
        ``None`` (default) reads every array into fresh allocations.
        ``"r"`` memory-maps the arrays read-only straight out of the NPZ
        — processes mapping the same artifact share one set of physical
        pages, which is how the serving daemon's workers hold one model
        between them.  ``"c"`` maps copy-on-write: reads are shared,
        writes stay private to the calling process.  Mapping requires an
        uncompressed (schema >= 3) bundle; older compressed artifacts
        raise :class:`~repro.serving.npz_mmap.CompressedMemberError`
        (load them eagerly or re-save them once).  Array checksums are
        verified on every path.
    """
    return ModelArtifact.load(path, mmap_mode=mmap_mode)
