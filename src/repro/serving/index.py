"""High-throughput out-of-sample inference over a persisted clustering.

:class:`ProjectedClusterIndex` is the serving subsystem's query engine:
it takes a :class:`~repro.serving.artifact.ModelArtifact` (or a live
fitted estimator's artifact) and assigns *batches* of unseen points to
the learned projected clusters.

The assignment rule is the same one SSPC's own assignment step uses
(Listing 2, step 3): the score gain of placing ``x`` into cluster ``C_i``
with center ``c`` and selected dimensions ``V_i`` is ::

    gain_i(x) = sum_{v_j in V_i} (1 - (x_j - c_j)^2 / s_hat^2_ij)

where the thresholds ``s_hat^2_ij`` come from the artifact's stored
scheme and global variances, evaluated at the cluster's current size.  A
point joins the cluster with the largest positive gain; a point whose
best gain is not positive lands on the outlier list (label ``-1``) —
exactly the paper's outlier gate, now applied to traffic the model never
saw during fitting.

The batch kernel reuses the PR-1 fused-assignment shape: clusters are
grouped by selected-dimension count and each group is one broadcasted
``(n, g, c)`` gather-plus-reduction, so scoring cost is one fused numpy
pass instead of ``k`` Python-level loops — and, because every per-cluster
reduction runs over the same elements in the same order as the
single-point kernel, the batch path is **bit-identical** to scoring each
point on its own.

Incremental-plan contract: the index holds a live
:class:`~repro.core.assignment_engine.AssignmentEngine` plan — the
per-cluster dimension/center/threshold arrays are validated and stacked
*once* at construction instead of being re-coerced for every ``predict``
batch, and every mutation that can change a gain column
(:meth:`ProjectedClusterIndex.partial_update` folding points,
:meth:`~ProjectedClusterIndex.add_cluster` /
:meth:`~ProjectedClusterIndex.remove_cluster` /
:meth:`~ProjectedClusterIndex.reanchor_cluster` /
:meth:`~ProjectedClusterIndex.trim_projections` /
:meth:`~ProjectedClusterIndex.refresh_threshold`) patches exactly the
affected plan entries.  Anything else added around the index (the
streaming engine, custom maintenance loops) must route cluster mutations
through those methods — they are the dirty-tracking API; mutating
``cluster_statistics`` snapshots or artifact payloads directly cannot
reach the plan.

:meth:`ProjectedClusterIndex.partial_update` folds accepted points into
the cached per-cluster statistics without refitting: sizes / means /
variances merge exactly via
:func:`~repro.core.stats_cache.merge_mean_variance`, and — when the
artifact carries member projections — the per-cluster medians on the
selected dimensions are maintained *exactly* by appending the new rows'
projections (cheap, because projected clusters are low-dimensional).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro import obs
from repro.core.assignment_engine import AssignmentEngine
from repro.core.model import OUTLIER_LABEL
from repro.core.stats_cache import merge_mean_variance
from repro.core.thresholds import SelectionThreshold
from repro.serving.artifact import ModelArtifact, load_artifact
from repro.utils.validation import check_array_2d

__all__ = ["ProjectedClusterIndex", "ServingClusterStats"]

_CENTER_MODES = ("median", "representative", "mean")


@dataclass
class ServingClusterStats:
    """Read-only snapshot of one cluster's serving-side statistics.

    ``mean`` and ``variance`` are full ``d``-vectors, kept exact across
    :meth:`ProjectedClusterIndex.partial_update` by streaming merges.
    ``median_selected`` is aligned with ``dimensions`` — the serving
    layer maintains medians only on the selected dimensions (the only
    ones that influence assignment), and only exactly when the artifact
    carries member projections.
    """

    size: int
    dimensions: np.ndarray
    mean: np.ndarray
    variance: np.ndarray
    median_selected: np.ndarray


class _ServingCluster:
    """Mutable per-cluster state held by the index."""

    __slots__ = (
        "dimensions",
        "size",
        "mean",
        "variance",
        "median_selected",
        "center_selected",
        "projections",
        "score",
    )

    def __init__(
        self,
        *,
        dimensions: np.ndarray,
        size: int,
        mean: np.ndarray,
        variance: np.ndarray,
        median_selected: np.ndarray,
        center_selected: np.ndarray,
        projections: Optional[np.ndarray],
        score: float,
    ) -> None:
        self.dimensions = dimensions
        self.size = size
        self.mean = mean
        self.variance = variance
        self.median_selected = median_selected
        self.center_selected = center_selected
        self.projections = projections
        self.score = score


class ProjectedClusterIndex:
    """Batch assignment of unseen points to learned projected clusters.

    Parameters
    ----------
    artifact:
        The persisted model to serve.
    center:
        Which per-cluster center the gains are measured against:
        ``"median"`` (default — the robust center the objective is built
        on), ``"representative"`` (the exact vector the final training
        assignment used) or ``"mean"``.
    allow_outliers:
        Whether points may land on the outlier list.  ``None`` (default)
        follows the fitted model's own contract
        (``artifact.parameters["allow_outliers"]``, ``True`` when
        unrecorded): a model fitted with ``allow_outliers=False``
        force-assigned every training object, so serving force-assigns
        too (each point goes to its best servable cluster even when the
        gain is not positive), matching ``SSPC._force_assign``.
    projection_window:
        When set, every cluster's projection buffer is bounded to this
        many newest rows as points fold in (and when clusters are built
        from rows), so the maintained median becomes a sliding-window
        median — the bounded-memory mode the streaming engine runs in.
        ``None`` (default) keeps the exact full-history behaviour.
    copy_arrays:
        ``True`` (default) snapshots every artifact array into private
        allocations — the index owns its state outright.  ``False``
        *aliases* the artifact's member-projection buffers instead of
        copying them, which is what makes an index over a memory-mapped
        artifact (``load_artifact(..., mmap_mode="r")``) nearly free:
        the projections are the artifact's dominant payload and stay
        shared pages.  Safe because the index never writes into a
        projection buffer in place — every mutation
        (:meth:`partial_update`, :meth:`trim_projections`, ...)
        *replaces* the buffer with a freshly built array, at which point
        the cluster silently stops referencing the mapped pages.  The
        small per-cluster statistic vectors are always copied.
    backend:
        Assignment-kernel backend for the gain evaluations (a
        :mod:`repro.core.backends` name or instance; ``None`` defers to
        ``REPRO_ASSIGNMENT_BACKEND`` and then the reference kernel).
        Serving deployments that do not need bit-identity to training
        can opt into ``"threaded"``, ``"compiled"`` or ``"float32"``
        here; float64 backends stay bit-identical regardless.

    Notes
    -----
    Empty clusters (no training members) and clusters with an empty
    dimension set can never win an assignment — their gain column is
    pinned to ``-inf``, matching the training-time assignment step.
    Even under force-assignment, a point is left an outlier when *no*
    cluster is servable.
    """

    def __init__(
        self,
        artifact: ModelArtifact,
        *,
        center: str = "median",
        allow_outliers: Optional[bool] = None,
        projection_window: Optional[int] = None,
        copy_arrays: bool = True,
        backend=None,
    ) -> None:
        if center not in _CENTER_MODES:
            raise ValueError("center must be one of %s" % (_CENTER_MODES,))
        if projection_window is not None and projection_window < 1:
            raise ValueError("projection_window must be positive or None")
        self.projection_window = projection_window
        self.center = center
        if allow_outliers is None:
            allow_outliers = bool(artifact.parameters.get("allow_outliers", True))
        self.allow_outliers = bool(allow_outliers)
        self.n_dimensions = int(artifact.n_dimensions)
        self.algorithm = artifact.algorithm
        self._parameters = dict(artifact.parameters)
        self._threshold_description = dict(artifact.threshold_description)
        self._threshold: SelectionThreshold = artifact.threshold()
        # Artifacts written back after partial_update record the absorbed
        # per-cluster sizes in metadata (the member index list can only
        # name training objects); honour them so size-dependent
        # thresholds survive a save/load cycle.
        serving_sizes = artifact.metadata.get("serving_sizes")
        if not (
            isinstance(serving_sizes, (list, tuple))
            and len(serving_sizes) == len(artifact.clusters)
        ):
            serving_sizes = [cluster.size for cluster in artifact.clusters]
        self._clusters: List[_ServingCluster] = []
        for cluster, serving_size in zip(artifact.clusters, serving_sizes):
            dims = cluster.dimensions.copy()
            median_selected = cluster.median[dims].copy()
            if center == "median":
                center_selected = median_selected.copy()
            elif center == "mean":
                center_selected = cluster.mean[dims].copy()
            else:
                center_selected = cluster.representative[dims].copy()
            projections = None
            if cluster.member_projections is not None:
                projections = np.asarray(cluster.member_projections, dtype=float)
                if copy_arrays:
                    projections = projections.copy()
            self._clusters.append(
                _ServingCluster(
                    dimensions=dims,
                    size=int(serving_size),
                    mean=cluster.mean.copy(),
                    variance=cluster.variance.copy(),
                    median_selected=median_selected,
                    center_selected=center_selected,
                    projections=projections,
                    score=float(cluster.score),
                )
            )
        self.n_updates = 0
        self.n_points_absorbed = 0
        # The live assignment plan: per-cluster dims / centers /
        # thresholds coerced and stacked once, then surgically patched
        # by the mutation methods below instead of being rebuilt from
        # the cluster list on every predict batch.
        self._engine = AssignmentEngine(backend=backend)
        specs = [self._plan_spec(cluster) for cluster in self._clusters]
        self._engine.set_clusters(
            [spec[0] for spec in specs],
            [spec[1] for spec in specs],
            [spec[2] for spec in specs],
        )

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_path(
        cls, path, *, center: str = "median", mmap_mode: Optional[str] = None,
        backend=None,
    ) -> "ProjectedClusterIndex":
        """Load an artifact directory and build an index over it.

        With ``mmap_mode`` the arrays are memory-mapped (see
        :func:`~repro.serving.artifact.load_artifact`) and the index
        aliases the projection buffers instead of copying them — the
        zero-copy load path the serving daemon's workers use.
        """
        return cls(
            load_artifact(path, mmap_mode=mmap_mode),
            center=center,
            copy_arrays=mmap_mode is None,
            backend=backend,
        )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def n_clusters(self) -> int:
        """Number of clusters served."""
        return len(self._clusters)

    def cluster_statistics(self, cluster_index: int) -> ServingClusterStats:
        """Current statistics snapshot of one cluster."""
        cluster = self._clusters[cluster_index]
        return ServingClusterStats(
            size=int(cluster.size),
            dimensions=cluster.dimensions.copy(),
            mean=cluster.mean.copy(),
            variance=cluster.variance.copy(),
            median_selected=cluster.median_selected.copy(),
        )

    def cluster_sizes(self) -> np.ndarray:
        """Current per-cluster sizes (training members + absorbed points)."""
        return np.asarray([cluster.size for cluster in self._clusters], dtype=int)

    @property
    def threshold(self) -> SelectionThreshold:
        """The live selection-threshold scheme the index scores with."""
        return self._threshold

    @property
    def threshold_description(self) -> dict:
        """The served threshold scheme's description (``{"scheme": ...}``)."""
        return dict(self._threshold_description)

    @property
    def global_variance(self) -> np.ndarray:
        """Global column variances the served thresholds are fitted on."""
        return self._threshold.global_variance.copy()

    # ------------------------------------------------------------------ #
    # scoring
    # ------------------------------------------------------------------ #
    def _cluster_thresholds(self, cluster: _ServingCluster) -> np.ndarray:
        """Thresholds on the cluster's selected dimensions at its current size."""
        return self._threshold.values(max(cluster.size, 2))[cluster.dimensions]

    def _servable(self, cluster: _ServingCluster) -> bool:
        """Whether the cluster can win assignments at all."""
        return cluster.size > 0 and cluster.dimensions.size > 0

    def _plan_spec(self, cluster: _ServingCluster):
        """One cluster's ``(dims, center, thresholds)`` engine-plan entry.

        Unservable clusters contribute an empty dimension set, which the
        engine pins to a ``-inf`` column — matching the training-time
        assignment step.
        """
        if not self._servable(cluster):
            empty = np.empty(0)
            return np.empty(0, dtype=int), empty, empty
        return cluster.dimensions, cluster.center_selected, self._cluster_thresholds(cluster)

    def _sync_plan(self, position: int) -> None:
        """Re-patch one cluster's engine-plan entry after a mutation."""
        self._engine.update_cluster(position, *self._plan_spec(self._clusters[position]))

    def gains_matrix(self, points: np.ndarray) -> np.ndarray:
        """The ``(n, k)`` assignment-gain matrix for a batch of points.

        Evaluated by the index's persistent
        :class:`~repro.core.assignment_engine.AssignmentEngine` plan:
        the grouped cluster stacks survive across calls (and across
        :meth:`partial_update` folds and lifecycle events, which patch
        only the mutated entries), and the ``(n, g, c)`` temporaries are
        reusable bounded workspaces rather than per-call broadcasts.
        Bit-identical to the
        :func:`~repro.core.objective.grouped_assignment_gains` reference
        kernel and to stacking :meth:`gains_single` over the rows.
        """
        points = self._check_points(points)
        return self._engine.compute(points)

    def gains_single(self, point: np.ndarray) -> np.ndarray:
        """Length-``k`` gain vector for one point (reference scalar path).

        Exists for the batch/single equivalence contract (and its tests):
        the elementwise operations and the reduction order match the
        grouped batch kernel exactly, so
        ``gains_matrix(X)[i] == gains_single(X[i])`` bit for bit.
        """
        point = np.asarray(point, dtype=float).ravel()
        if point.shape[0] != self.n_dimensions:
            raise ValueError(
                "point has %d dimensions, expected %d" % (point.shape[0], self.n_dimensions)
            )
        gains = np.full(self.n_clusters, -np.inf)
        for index, cluster in enumerate(self._clusters):
            if not self._servable(cluster):
                continue
            deltas = point[cluster.dimensions] - cluster.center_selected
            gains[index] = (1.0 - (deltas ** 2) / self._cluster_thresholds(cluster)).sum()
        return gains

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Hard labels for a batch of points (``-1`` marks outliers).

        Deterministic: a pure function of the artifact state and the
        input batch.
        """
        with obs.span("serve.predict", category="serve") as pred_span:
            gains = self.gains_matrix(points)
            labels = self._labels_from_gains(gains)
            recorder = obs.get_recorder()
            if recorder is not None:
                n_outliers = int(np.count_nonzero(labels == OUTLIER_LABEL))
                recorder.incr("serve.points_scored", float(labels.shape[0]))
                recorder.incr("serve.outliers", float(n_outliers))
                pred_span.set(rows=int(labels.shape[0]), outliers=n_outliers)
            return labels

    def predict_one(self, point: np.ndarray) -> int:
        """Hard label for a single point via the scalar reference path."""
        gains = self.gains_single(point)
        best = int(np.argmax(gains))
        if gains[best] > 0.0 or (not self.allow_outliers and np.isfinite(gains[best])):
            return best
        return OUTLIER_LABEL

    def top_assignments(
        self, points: np.ndarray, top_m: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Soft assignments: each point's ``top_m`` clusters by gain.

        Returns ``(labels, clusters, gains)`` where ``labels`` is the
        hard outlier-gated label vector, and ``clusters`` / ``gains`` are
        ``(n, top_m)`` arrays of cluster indices and their score gains in
        decreasing-gain order (``-1`` / ``-inf`` padding when fewer than
        ``top_m`` clusters are servable).
        """
        if top_m < 1:
            raise ValueError("top_m must be at least 1")
        gains = self.gains_matrix(points)
        n = gains.shape[0]
        m = min(int(top_m), self.n_clusters)
        order = np.argsort(-gains, axis=1, kind="stable")[:, :m]
        top_gains = np.take_along_axis(gains, order, axis=1)
        top_clusters = order.astype(int)
        top_clusters[~np.isfinite(top_gains)] = OUTLIER_LABEL
        if m < top_m:
            pad = top_m - m
            top_clusters = np.hstack(
                [top_clusters, np.full((n, pad), OUTLIER_LABEL, dtype=int)]
            )
            top_gains = np.hstack([top_gains, np.full((n, pad), -np.inf)])
        return self._labels_from_gains(gains), top_clusters, top_gains

    def outliers(self, points: np.ndarray) -> np.ndarray:
        """Row indices of ``points`` that fail the outlier gate."""
        return np.flatnonzero(self.predict(points) == OUTLIER_LABEL)

    # ------------------------------------------------------------------ #
    # incremental maintenance
    # ------------------------------------------------------------------ #
    def partial_update(
        self,
        points: np.ndarray,
        labels: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Fold accepted points into the cached statistics without refitting.

        Points are first assigned (unless ``labels`` is given); rows whose
        label is ``-1`` are ignored.  For each cluster that accepted
        points:

        * ``size`` / ``mean`` / ``variance`` are merged exactly via
          :func:`~repro.core.stats_cache.merge_mean_variance` — identical
          (up to float rounding) to a from-scratch pass over the union of
          old members and new points;
        * when the artifact carries member projections, the projection
          buffer is extended and the median over the selected dimensions
          is recomputed from it — *exactly* the median of the union.  With
          ``center="median"`` the assignment center follows it.  Without
          projections the median (and a median center) stay frozen at
          their training values, while sizes still advance the
          size-dependent thresholds.

        Returns the label vector that was applied.
        """
        points = self._check_points(points)
        if labels is None:
            labels = self.predict(points)
        else:
            labels = np.asarray(labels, dtype=int).ravel()
            if labels.shape[0] != points.shape[0]:
                raise ValueError(
                    "labels has length %d but points has %d rows"
                    % (labels.shape[0], points.shape[0])
                )
            if labels.size and labels.max() >= self.n_clusters:
                raise ValueError("labels reference clusters outside the model")
            if labels.size and labels.min() < OUTLIER_LABEL:
                raise ValueError(
                    "labels may not contain values below %d (the outlier sentinel)"
                    % OUTLIER_LABEL
                )

        with obs.span("serve.partial_update", category="serve") as fold_span:
            absorbed = 0
            for index, cluster in enumerate(self._clusters):
                rows = points[labels == index]
                if rows.shape[0] == 0:
                    continue
                batch_mean = rows.mean(axis=0)
                if rows.shape[0] > 1:
                    batch_variance = rows.var(axis=0, ddof=1)
                else:
                    batch_variance = np.zeros(self.n_dimensions)
                cluster.size, cluster.mean, cluster.variance = merge_mean_variance(
                    cluster.size,
                    cluster.mean,
                    cluster.variance,
                    rows.shape[0],
                    batch_mean,
                    batch_variance,
                )
                if cluster.projections is not None:
                    cluster.projections = np.concatenate(
                        [cluster.projections, rows[:, cluster.dimensions]], axis=0
                    )
                    # Bound the buffer *before* the median so windowed mode
                    # pays a single median pass per fold.
                    if (
                        self.projection_window is not None
                        and cluster.projections.shape[0] > self.projection_window
                    ):
                        cluster.projections = cluster.projections[-self.projection_window:].copy()
                    cluster.median_selected = np.median(cluster.projections, axis=0)
                    if self.center == "median":
                        cluster.center_selected = cluster.median_selected.copy()
                if self.center == "mean":
                    cluster.center_selected = cluster.mean[cluster.dimensions].copy()
                # The fold moved this cluster's size (size-dependent
                # thresholds) and possibly its center — patch its plan entry
                # so the next batch scores against the new state.  Clusters
                # that absorbed nothing keep their plan rows untouched.
                self._sync_plan(index)
                absorbed += rows.shape[0]
            self.n_updates += 1
            self.n_points_absorbed += absorbed
            fold_span.set(rows=int(points.shape[0]), absorbed=int(absorbed))
        obs.incr("serve.points_absorbed", float(absorbed))
        return labels

    def fold_into(self, artifact: ModelArtifact) -> ModelArtifact:
        """Write the index's updated statistics back into ``artifact``.

        The public persistence path after :meth:`partial_update`: sizes,
        means and variances are replaced by the merged values, the stored
        full-``d`` median vector is refreshed on the selected dimensions
        (the only entries serving reads) and the projection buffers
        replace the stored ones.  Training member indices and labels are
        left as fitted — absorbed points are out-of-sample and have no
        training index — so the absorbed per-cluster sizes are recorded
        as ``metadata["serving_sizes"]``, which a future index built from
        the artifact resumes from.  Returns ``artifact`` (mutated in
        place) so ``index.fold_into(artifact).save(path)`` chains.
        """
        if len(artifact.clusters) != self.n_clusters:
            raise ValueError(
                "artifact has %d clusters but the index serves %d"
                % (len(artifact.clusters), self.n_clusters)
            )
        if artifact.n_dimensions != self.n_dimensions:
            raise ValueError(
                "artifact has %d dimensions but the index serves %d"
                % (artifact.n_dimensions, self.n_dimensions)
            )
        for position, cluster in enumerate(artifact.clusters):
            if not np.array_equal(cluster.dimensions, self._clusters[position].dimensions):
                raise ValueError(
                    "artifact cluster %d selects different dimensions than the index "
                    "serves — refusing to fold statistics into a different model"
                    % position
                )
        for position, cluster in enumerate(artifact.clusters):
            state = self._clusters[position]
            cluster.mean = state.mean.copy()
            cluster.variance = state.variance.copy()
            cluster.median = cluster.median.copy()
            cluster.median[state.dimensions] = state.median_selected
            if state.projections is not None:
                cluster.member_projections = state.projections.copy()
        artifact.metadata["absorbed_points"] = (
            int(artifact.metadata.get("absorbed_points", 0)) + int(self.n_points_absorbed)
        )
        artifact.metadata["serving_sizes"] = [int(size) for size in self.cluster_sizes()]
        return artifact

    # ------------------------------------------------------------------ #
    # cluster lifecycle (streaming maintenance)
    # ------------------------------------------------------------------ #
    def _state_from_rows(
        self, dimensions: np.ndarray, rows: np.ndarray, score: float
    ) -> _ServingCluster:
        """Build a serving-cluster state from a block of member rows."""
        dimensions = np.unique(np.asarray(dimensions, dtype=int))
        if dimensions.size and (dimensions.min() < 0 or dimensions.max() >= self.n_dimensions):
            raise ValueError("dimensions reference columns outside the model")
        rows = self._check_points(rows)
        mean = rows.mean(axis=0)
        if rows.shape[0] > 1:
            variance = rows.var(axis=0, ddof=1)
        else:
            variance = np.zeros(self.n_dimensions)
        projections = rows[:, dimensions].copy()
        if self.projection_window is not None and projections.shape[0] > self.projection_window:
            projections = projections[-self.projection_window:].copy()
        median_selected = (
            np.median(projections, axis=0) if dimensions.size else np.empty(0)
        )
        if self.center == "mean":
            center_selected = mean[dimensions].copy()
        else:
            # Median doubles as the representative for clusters born at
            # serving time — the robust center the objective is built on.
            center_selected = median_selected.copy()
        return _ServingCluster(
            dimensions=dimensions,
            size=int(rows.shape[0]),
            mean=mean,
            variance=variance,
            median_selected=median_selected,
            center_selected=center_selected,
            projections=projections,
            score=float(score),
        )

    def add_cluster(
        self, dimensions: np.ndarray, rows: np.ndarray, *, score: float = float("nan")
    ) -> int:
        """Spawn a new cluster from ``rows`` on ``dimensions``; returns its position.

        The streaming engine uses this when a dense region accumulates in
        its outlier buffer.  The new cluster's statistics (and exact
        projections, hence exact medians) come entirely from ``rows``.
        """
        state = self._state_from_rows(dimensions, rows, score)
        self._clusters.append(state)
        self._engine.add_cluster(*self._plan_spec(state))
        self.n_points_absorbed += state.size
        return len(self._clusters) - 1

    def remove_cluster(self, position: int) -> None:
        """Retire the cluster at ``position`` (later positions shift down)."""
        if not (0 <= position < len(self._clusters)):
            raise IndexError("cluster position %d out of range" % position)
        del self._clusters[position]
        self._engine.remove_cluster(position)

    def reanchor_cluster(
        self, position: int, dimensions: np.ndarray, rows: np.ndarray
    ) -> None:
        """Re-anchor a drifted cluster on a recent window of its traffic.

        Replaces the cluster's selected dimensions, statistics, medians
        and projection buffer with those of ``rows`` — the streaming
        drift response: the stale history stops influencing thresholds,
        centers and medians, while the cluster keeps its position (and
        its stable id in the engine above).
        """
        if not (0 <= position < len(self._clusters)):
            raise IndexError("cluster position %d out of range" % position)
        score = self._clusters[position].score
        self._clusters[position] = self._state_from_rows(dimensions, rows, score)
        self._sync_plan(position)

    def trim_projections(self, position: int, keep_last: int) -> None:
        """Bound a cluster's projection buffer to its ``keep_last`` newest rows.

        After a trim the maintained median becomes the median of the
        retained window rather than of the full absorbed history — the
        bounded-memory trade the streaming engine opts into explicitly.
        """
        if keep_last < 1:
            raise ValueError("keep_last must be at least 1")
        cluster = self._clusters[position]
        if cluster.projections is not None and cluster.projections.shape[0] > keep_last:
            cluster.projections = cluster.projections[-keep_last:].copy()
            cluster.median_selected = np.median(cluster.projections, axis=0)
            if self.center == "median":
                cluster.center_selected = cluster.median_selected.copy()
                self._sync_plan(position)

    def refresh_threshold(self, global_variance: np.ndarray) -> None:
        """Refit the served selection thresholds on new global variances.

        Streaming drift moves the global population too; the engine
        passes its running column variances here so size-dependent
        thresholds track the stream instead of the long-gone training
        snapshot.  Memoized threshold vectors are invalidated by the
        refit, and every cluster's planned threshold row is re-patched.
        """
        self._threshold.fit_from_variance(global_variance)
        for position in range(len(self._clusters)):
            self._sync_plan(position)

    def export_artifact(self, *, metadata=None) -> ModelArtifact:
        """Capture the index's *current* state as a fresh :class:`ModelArtifact`.

        Unlike :meth:`fold_into` — which writes statistics back into the
        artifact that built the index and therefore requires an unchanged
        cluster structure — this constructs a new artifact from the live
        serving state, so it works after :meth:`add_cluster` /
        :meth:`remove_cluster` / :meth:`reanchor_cluster` and after
        :meth:`refresh_threshold`.  Training-only payloads (member
        indices, training labels) are empty: clusters born or re-anchored
        at serving time have no training members.  An index rebuilt from
        the exported artifact serves bit-identically to this one.
        """
        from repro.serving.artifact import ClusterModel

        clusters = []
        for state in self._clusters:
            median = state.mean.copy()
            median[state.dimensions] = state.median_selected
            clusters.append(
                ClusterModel(
                    dimensions=state.dimensions.copy(),
                    members=np.empty(0, dtype=int),
                    representative=median.copy(),
                    mean=state.mean.copy(),
                    median=median,
                    variance=state.variance.copy(),
                    score=float(state.score),
                    member_projections=(
                        state.projections.copy() if state.projections is not None else None
                    ),
                )
            )
        merged_metadata = dict(metadata or {})
        merged_metadata["serving_sizes"] = [int(size) for size in self.cluster_sizes()]
        merged_metadata["absorbed_points"] = int(self.n_points_absorbed)
        return ModelArtifact(
            clusters=clusters,
            labels=np.empty(0, dtype=int),
            n_objects=0,
            n_dimensions=self.n_dimensions,
            threshold_description=dict(self._threshold_description),
            global_variance=self._threshold.global_variance.copy(),
            algorithm=self.algorithm,
            parameters=dict(self._parameters),
            metadata=merged_metadata,
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _check_points(self, points: np.ndarray) -> np.ndarray:
        points = check_array_2d(points, name="points", min_rows=1)
        if points.shape[1] != self.n_dimensions:
            raise ValueError(
                "points have %d dimensions, the model expects %d"
                % (points.shape[1], self.n_dimensions)
            )
        return points

    def _labels_from_gains(self, gains: np.ndarray) -> np.ndarray:
        n = gains.shape[0]
        labels = np.full(n, OUTLIER_LABEL, dtype=int)
        if gains.shape[1] == 0:
            return labels
        best_cluster = np.argmax(gains, axis=1)
        best_gain = gains[np.arange(n), best_cluster]
        if self.allow_outliers:
            accepted = best_gain > 0.0
        else:
            # Force-assignment (the fitted model disallowed outliers):
            # every point goes to its best servable cluster, mirroring
            # SSPC._force_assign; only points with no servable cluster
            # at all stay on the outlier list.
            accepted = np.isfinite(best_gain)
        labels[accepted] = best_cluster[accepted]
        return labels

    def __repr__(self) -> str:
        return "ProjectedClusterIndex(k=%d, d=%d, center=%r, absorbed=%d)" % (
            self.n_clusters,
            self.n_dimensions,
            self.center,
            self.n_points_absorbed,
        )
