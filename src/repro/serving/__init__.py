"""Model persistence and out-of-sample inference for projected clusterings.

The serving subsystem turns a fitted clustering into a deployable model,
mirroring the fit-once / score-many split of production clustering
systems:

* :mod:`repro.serving.artifact` — :class:`ModelArtifact`, a versioned
  NPZ+JSON on-disk format capturing selected dimensions,
  representatives, per-dimension statistics, thresholds and fit
  metadata, with exact :class:`~repro.core.model.ClusteringResult`
  round trips.
* :mod:`repro.serving.index` — :class:`ProjectedClusterIndex`, the
  batched assignment engine: one broadcasted pass per
  selected-dimension count (the PR-1 fused-kernel shape), outlier
  gating via the stored thresholds, top-m soft assignments, and
  incremental ``partial_update`` statistics maintenance.
* :mod:`repro.serving.cli` — the ``repro-serve`` /
  ``python -m repro.serve`` command line (``fit`` / ``predict`` /
  ``inspect``).

Typical lifecycle::

    model = SSPC(n_clusters=5, m=0.5, random_state=0).fit(train)
    model.save("artifacts/expr-v1")              # persist
    ...
    index = ProjectedClusterIndex.from_path("artifacts/expr-v1")
    labels = index.predict(new_points)           # serve
    index.partial_update(new_points, labels)     # absorb accepted traffic
"""

from repro.serving.artifact import (
    ARTIFACT_FORMAT,
    SCHEMA_VERSION,
    ClusterModel,
    ModelArtifact,
    load_artifact,
    threshold_from_description,
)
from repro.serving.index import ProjectedClusterIndex, ServingClusterStats
from repro.serving.npz_mmap import CompressedMemberError, mmap_npz

__all__ = [
    "ARTIFACT_FORMAT",
    "SCHEMA_VERSION",
    "ClusterModel",
    "CompressedMemberError",
    "ModelArtifact",
    "load_artifact",
    "mmap_npz",
    "threshold_from_description",
    "ProjectedClusterIndex",
    "ServingClusterStats",
]
