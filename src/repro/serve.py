"""``python -m repro.serve`` — console front end of the serving subsystem.

A thin runnable shim around :func:`repro.serving.cli.main`; the same
entry point is installed as the ``repro-serve`` script (see
``pyproject.toml``).
"""

from __future__ import annotations

import sys

from repro.serving.cli import main

if __name__ == "__main__":
    sys.exit(main())
