"""Semi-supervision inputs: labeled objects, labeled dimensions, constraints.

The paper defines two kinds of domain knowledge (Section 3):

* a set ``Io`` of labeled objects — ``(object id, class label)`` pairs —
  each stating that the object belongs to the class, and
* a set ``Iv`` of labeled dimensions — ``(dimension id, class label)``
  pairs — each stating that the dimension is relevant to the class.

Neither set needs to cover all classes, and the same dimension may be
labeled for several classes.  :class:`Knowledge` bundles both sets; the
``sampling`` module draws knowledge from a ground-truth description
following the protocol of Section 5.3 (coverage ratio x input size); the
``constraints`` and ``noise`` modules implement the future-work
extensions discussed in Sections 2.2 and 6.
"""

from repro.semisupervision.knowledge import Knowledge, LabeledDimensions, LabeledObjects
from repro.semisupervision.sampling import KnowledgeSampler, sample_knowledge
from repro.semisupervision.constraints import PairwiseConstraints
from repro.semisupervision.noise import KnowledgeValidator

__all__ = [
    "Knowledge",
    "LabeledObjects",
    "LabeledDimensions",
    "KnowledgeSampler",
    "sample_knowledge",
    "PairwiseConstraints",
    "KnowledgeValidator",
]
