"""Pairwise must-link / cannot-link constraints (extension).

The paper's related-work section (2.2) surveys semi-supervised clustering
methods driven by instance-level constraints; its own algorithm uses
labeled objects and dimensions instead.  This module implements the
constraint representation as an extension so the SSPC assignment step can
optionally honour must-link / cannot-link pairs, mirroring constrained
k-means style behaviour.

Constraints are stored symmetrically and closed transitively for
must-links (if a~b and b~c then a~c), which is the standard treatment in
the constrained-clustering literature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np


@dataclass
class PairwiseConstraints:
    """A set of must-link and cannot-link object pairs.

    Attributes
    ----------
    must_links:
        Pairs of object indices that must share a cluster.
    cannot_links:
        Pairs of object indices that must not share a cluster.
    """

    must_links: List[Tuple[int, int]] = field(default_factory=list)
    cannot_links: List[Tuple[int, int]] = field(default_factory=list)

    @classmethod
    def from_pairs(
        cls,
        must_links: Iterable[Tuple[int, int]] = (),
        cannot_links: Iterable[Tuple[int, int]] = (),
    ) -> "PairwiseConstraints":
        """Build a constraint set from raw index pairs."""
        instance = cls()
        for a, b in must_links:
            instance.add_must_link(int(a), int(b))
        for a, b in cannot_links:
            instance.add_cannot_link(int(a), int(b))
        instance.check_consistency()
        return instance

    def add_must_link(self, a: int, b: int) -> None:
        """Record that objects ``a`` and ``b`` belong together."""
        self._check_pair(a, b)
        self.must_links.append((min(a, b), max(a, b)))

    def add_cannot_link(self, a: int, b: int) -> None:
        """Record that objects ``a`` and ``b`` must be separated."""
        self._check_pair(a, b)
        self.cannot_links.append((min(a, b), max(a, b)))

    @staticmethod
    def _check_pair(a: int, b: int) -> None:
        if a < 0 or b < 0:
            raise ValueError("object indices must be non-negative")
        if a == b:
            raise ValueError("a constraint must involve two distinct objects")

    def is_empty(self) -> bool:
        """Whether no constraints were supplied."""
        return not self.must_links and not self.cannot_links

    def must_link_components(self) -> List[Set[int]]:
        """Transitively closed must-link groups (connected components)."""
        parent: Dict[int, int] = {}

        def find(x: int) -> int:
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(x: int, y: int) -> None:
            root_x, root_y = find(x), find(y)
            if root_x != root_y:
                parent[root_x] = root_y

        for a, b in self.must_links:
            union(a, b)
        groups: Dict[int, Set[int]] = {}
        for node in parent:
            groups.setdefault(find(node), set()).add(node)
        return [group for group in groups.values() if len(group) > 1]

    def check_consistency(self) -> None:
        """Raise if a cannot-link contradicts the must-link closure."""
        components = self.must_link_components()
        index_of: Dict[int, int] = {}
        for comp_id, component in enumerate(components):
            for node in component:
                index_of[node] = comp_id
        for a, b in self.cannot_links:
            if a in index_of and b in index_of and index_of[a] == index_of[b]:
                raise ValueError(
                    "inconsistent constraints: %d and %d are must-linked (transitively) "
                    "but also cannot-linked" % (a, b)
                )

    def violations(self, labels: np.ndarray) -> int:
        """Count how many constraints a membership assignment violates.

        Outliers (label ``-1``) violate any must-link they participate in
        and never violate cannot-links, matching the convention that an
        unassigned object is in no cluster.
        """
        labels = np.asarray(labels)
        count = 0
        for a, b in self.must_links:
            if labels[a] == -1 or labels[b] == -1 or labels[a] != labels[b]:
                count += 1
        for a, b in self.cannot_links:
            if labels[a] != -1 and labels[a] == labels[b]:
                count += 1
        return count

    def partner_maps(self) -> Tuple[Dict[int, List[int]], Dict[int, List[int]]]:
        """Object→partners adjacency maps ``(must, cannot)``.

        Built in one ``O(links)`` scan so batch consumers (the constraint
        pass of the assignment step) can resolve every constrained object
        without rescanning the link lists per object.
        """
        must: Dict[int, List[int]] = {}
        cannot: Dict[int, List[int]] = {}
        for a, b in self.must_links:
            must.setdefault(a, []).append(b)
            must.setdefault(b, []).append(a)
        for a, b in self.cannot_links:
            cannot.setdefault(a, []).append(b)
            cannot.setdefault(b, []).append(a)
        return must, cannot

    def allowed_clusters(
        self,
        object_index: int,
        labels: np.ndarray,
        n_clusters: int,
        *,
        partner_maps: Optional[
            Tuple[Dict[int, List[int]], Dict[int, List[int]]]
        ] = None,
    ) -> np.ndarray:
        """Clusters ``object_index`` may join given the current assignment.

        Must-links force the object into the cluster of any already
        assigned partner; cannot-links exclude the clusters of the
        partners.  When the constraints are unsatisfiable for the current
        assignment the full range is returned (the caller then falls back
        to the unconstrained behaviour rather than dead-locking).

        Parameters
        ----------
        partner_maps:
            Optional precomputed :meth:`partner_maps` result; supply it
            when querying many objects against the same constraint set
            to avoid the per-object link scan.
        """
        labels = np.asarray(labels)
        if partner_maps is None:
            partner_maps = self.partner_maps()
        must_partners, cannot_partners = partner_maps
        allowed = np.ones(n_clusters, dtype=bool)
        forced: Set[int] = set()
        for partner in must_partners.get(object_index, ()):
            if labels[partner] >= 0:
                forced.add(int(labels[partner]))
        for partner in cannot_partners.get(object_index, ()):
            if labels[partner] >= 0:
                allowed[int(labels[partner])] = False
        if forced:
            mask = np.zeros(n_clusters, dtype=bool)
            for cluster in forced:
                mask[cluster] = True
            combined = mask & allowed
            if combined.any():
                return np.flatnonzero(combined)
            return np.flatnonzero(mask)
        if allowed.any():
            return np.flatnonzero(allowed)
        return np.arange(n_clusters)
