"""Drawing semi-supervision inputs from a ground-truth description.

Section 5.3 of the paper evaluates SSPC under a protocol parameterised by

* the *coverage ratio* — the fraction of clusters that receive inputs,
* the *input category* — no inputs, labeled objects only, labeled
  dimensions only, or both, and
* the *input size* — the number of labeled items per covered cluster
  (the same count is used for objects and dimensions when both are
  supplied).

Inputs are drawn uniformly at random from the real cluster members and
relevant dimensions.  :class:`KnowledgeSampler` reproduces that protocol
against any ground truth expressed as membership labels plus per-cluster
relevant-dimension lists (the synthetic generator in ``repro.data``
produces exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.semisupervision.knowledge import Knowledge, LabeledDimensions, LabeledObjects
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_fraction, check_membership_labels

VALID_CATEGORIES = ("none", "objects", "dimensions", "both")


@dataclass
class KnowledgeSampler:
    """Sample labeled objects / dimensions from a known ground truth.

    Parameters
    ----------
    true_labels:
        Ground-truth membership labels (``-1`` for outliers).
    true_dimensions:
        Per-cluster lists of relevant dimension indices, indexed by the
        class label.
    """

    true_labels: np.ndarray
    true_dimensions: Sequence[Sequence[int]]

    def __post_init__(self) -> None:
        self.true_labels = check_membership_labels(self.true_labels, len(self.true_labels))
        self.true_dimensions = [np.asarray(dims, dtype=int) for dims in self.true_dimensions]
        n_classes = int(self.true_labels.max()) + 1 if np.any(self.true_labels >= 0) else 0
        if len(self.true_dimensions) < n_classes:
            raise ValueError(
                "true_dimensions describes %d classes but labels mention %d"
                % (len(self.true_dimensions), n_classes)
            )

    @property
    def n_classes(self) -> int:
        """Number of ground-truth classes."""
        return len(self.true_dimensions)

    def sample(
        self,
        *,
        category: str = "both",
        input_size: int = 0,
        coverage: float = 1.0,
        covered_classes: Optional[Sequence[int]] = None,
        random_state: RandomState = None,
    ) -> Knowledge:
        """Draw one knowledge set following the Section 5.3 protocol.

        Parameters
        ----------
        category:
            ``"none"``, ``"objects"``, ``"dimensions"`` or ``"both"``.
        input_size:
            Number of labeled objects and/or dimensions per covered
            class.  Zero yields empty knowledge regardless of category.
        coverage:
            Fraction of classes that receive knowledge.  The number of
            covered classes is ``round(coverage * n_classes)``.
        covered_classes:
            Explicit class labels to cover.  Overrides ``coverage``.
        random_state:
            Seed or generator controlling which items are drawn.

        Returns
        -------
        Knowledge
        """
        if category not in VALID_CATEGORIES:
            raise ValueError(
                "category must be one of %s, got %r" % (", ".join(VALID_CATEGORIES), category)
            )
        if input_size < 0:
            raise ValueError("input_size must be non-negative")
        coverage = check_fraction(coverage, name="coverage")
        rng = ensure_rng(random_state)

        if category == "none" or input_size == 0:
            return Knowledge.empty()

        if covered_classes is None:
            n_covered = int(round(coverage * self.n_classes))
            n_covered = min(max(n_covered, 0), self.n_classes)
            covered = list(rng.choice(self.n_classes, size=n_covered, replace=False)) if n_covered else []
        else:
            covered = [int(c) for c in covered_classes]
            for label in covered:
                if label < 0 or label >= self.n_classes:
                    raise ValueError("covered class %d outside [0, %d)" % (label, self.n_classes))

        object_pairs: List[tuple] = []
        dimension_pairs: List[tuple] = []
        for label in sorted(covered):
            if category in ("objects", "both"):
                object_pairs.extend(
                    (obj, label) for obj in self._draw_objects(label, input_size, rng)
                )
            if category in ("dimensions", "both"):
                dimension_pairs.extend(
                    (dim, label) for dim in self._draw_dimensions(label, input_size, rng)
                )
        return Knowledge(
            objects=LabeledObjects.from_pairs(object_pairs),
            dimensions=LabeledDimensions.from_pairs(dimension_pairs),
        )

    def _draw_objects(self, label: int, count: int, rng: np.random.Generator) -> np.ndarray:
        members = np.flatnonzero(self.true_labels == label)
        if members.size == 0:
            return np.empty(0, dtype=int)
        count = min(count, members.size)
        return np.sort(rng.choice(members, size=count, replace=False))

    def _draw_dimensions(self, label: int, count: int, rng: np.random.Generator) -> np.ndarray:
        relevant = np.asarray(self.true_dimensions[label], dtype=int)
        if relevant.size == 0:
            return np.empty(0, dtype=int)
        count = min(count, relevant.size)
        return np.sort(rng.choice(relevant, size=count, replace=False))


def sample_knowledge(
    true_labels: Sequence[int],
    true_dimensions: Sequence[Sequence[int]],
    *,
    category: str = "both",
    input_size: int = 0,
    coverage: float = 1.0,
    covered_classes: Optional[Sequence[int]] = None,
    random_state: RandomState = None,
) -> Knowledge:
    """Functional shortcut around :class:`KnowledgeSampler`.

    See :meth:`KnowledgeSampler.sample` for the parameter semantics.
    """
    sampler = KnowledgeSampler(np.asarray(true_labels), true_dimensions)
    return sampler.sample(
        category=category,
        input_size=input_size,
        coverage=coverage,
        covered_classes=covered_classes,
        random_state=random_state,
    )
