"""Validation of possibly incorrect knowledge (future-work extension).

Section 6 of the paper lists "allow incorrect inputs" as a future
extension: before incorrect labels are used to guide clustering they
should be validated against the assumed data model.  This module
implements a screening step based exactly on that model:

* A *labeled object* claimed for a class should be close to the other
  labeled objects of the same class along at least a few dimensions whose
  sample variance is well below the global variance.  Objects that share
  no such dimensions with their peers are flagged.
* A *labeled dimension* claimed for a class should show a column variance
  over the class's labeled objects that is clearly below the global
  column variance.  Dimensions that fail the variance-ratio test are
  flagged.

The validator never mutates the input knowledge; it returns a cleaned
copy plus a report of what it rejected so callers can decide whether to
trust the screen.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.semisupervision.knowledge import Knowledge, LabeledDimensions, LabeledObjects
from repro.utils.validation import check_array_2d, check_fraction


@dataclass
class ValidationReport:
    """What the validator rejected and why."""

    rejected_objects: List[Tuple[int, int, str]] = field(default_factory=list)
    rejected_dimensions: List[Tuple[int, int, str]] = field(default_factory=list)

    def n_rejections(self) -> int:
        """Total number of rejected knowledge items."""
        return len(self.rejected_objects) + len(self.rejected_dimensions)


@dataclass
class KnowledgeValidator:
    """Screen labeled objects / dimensions against the data model.

    Parameters
    ----------
    variance_ratio:
        A labeled dimension is accepted when the variance of the class's
        labeled objects along it is below ``variance_ratio`` times the
        global column variance.  The default (0.5) matches the middle of
        the ``m`` range the paper recommends.
    min_supporting_dimensions:
        Minimum number of low-variance dimensions the peers must exhibit
        before an object is screened at all; with fewer dimensions there
        is not enough evidence to overrule the supplied label.
    max_mean_squared_z:
        A labeled object is rejected when its mean squared standardised
        deviation from the peers' median — measured over the peers'
        low-variance dimensions, standardised by the peers' local spread
        — exceeds this value.  The default (16, i.e. an RMS deviation of
        four local standard deviations) keeps genuine members while
        flagging objects drawn from other classes.
    """

    variance_ratio: float = 0.5
    min_supporting_dimensions: int = 1
    max_mean_squared_z: float = 16.0

    def __post_init__(self) -> None:
        self.variance_ratio = check_fraction(
            self.variance_ratio, name="variance_ratio", inclusive_low=False
        )
        if self.min_supporting_dimensions < 1:
            raise ValueError("min_supporting_dimensions must be at least 1")
        if self.max_mean_squared_z <= 0:
            raise ValueError("max_mean_squared_z must be positive")

    def validate(self, data, knowledge: Knowledge) -> Tuple[Knowledge, ValidationReport]:
        """Return a screened copy of ``knowledge`` and a rejection report."""
        data = check_array_2d(data, name="data")
        report = ValidationReport()
        global_variance = data.var(axis=0, ddof=1)
        global_std = np.sqrt(np.maximum(global_variance, np.finfo(float).tiny))

        kept_object_pairs: List[Tuple[int, int]] = []
        for label in knowledge.objects.classes():
            members = knowledge.objects.for_class(label)
            if members.size < 3:
                # Too few peers to judge; keep them all (screening needs context).
                kept_object_pairs.extend((int(obj), label) for obj in members)
                continue
            for obj in members:
                peers = members[members != obj]
                peer_block = data[peers]
                peer_variance = peer_block.var(axis=0, ddof=1)
                peer_std = np.sqrt(np.maximum(peer_variance, np.finfo(float).tiny))
                low_variance = peer_variance < self.variance_ratio * global_variance
                if np.count_nonzero(low_variance) < self.min_supporting_dimensions:
                    # Not enough evidence to overrule the supplied label.
                    kept_object_pairs.append((int(obj), label))
                    continue
                median = np.median(peer_block, axis=0)
                deviation = np.abs(data[obj] - median)
                # Standardise by the peers' local spread (with a small floor so
                # an accidentally tiny peer variance cannot reject everything)
                # and judge the object by its mean squared deviation over the
                # peers' low-variance dimensions.
                scale = np.maximum(peer_std, 0.05 * global_std)
                z_scores = deviation / scale
                mean_squared_z = float(np.mean(z_scores[low_variance] ** 2))
                if mean_squared_z <= self.max_mean_squared_z:
                    kept_object_pairs.append((int(obj), label))
                else:
                    report.rejected_objects.append(
                        (int(obj), label, "far from class peers along the low-variance dimensions")
                    )

        kept_objects = LabeledObjects.from_pairs(kept_object_pairs)

        kept_dimension_pairs: List[Tuple[int, int]] = []
        for label in knowledge.dimensions.classes():
            dims = knowledge.dimensions.for_class(label)
            members = kept_objects.for_class(label)
            for dim in dims:
                if members.size < 2:
                    # Without labeled objects the model gives no handle to test
                    # the dimension, so it is kept as supplied.
                    kept_dimension_pairs.append((int(dim), label))
                    continue
                local_variance = data[members, dim].var(ddof=1)
                if local_variance <= self.variance_ratio * global_variance[dim]:
                    kept_dimension_pairs.append((int(dim), label))
                else:
                    report.rejected_dimensions.append(
                        (
                            int(dim),
                            label,
                            "labeled objects show no reduced variance along this dimension",
                        )
                    )

        cleaned = Knowledge(
            objects=kept_objects,
            dimensions=LabeledDimensions.from_pairs(kept_dimension_pairs),
        )
        return cleaned, report
