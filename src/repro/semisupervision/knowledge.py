"""Containers for labeled objects and labeled dimensions.

The containers are deliberately thin: they validate the input pairs,
group them by class label and expose the per-class views that SSPC's
initialisation (Section 4.2 of the paper) needs — ``Io_i`` and ``Iv_i``
for each target cluster ``C_i``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np


def _group_pairs(pairs: Iterable[Tuple[int, int]], *, kind: str) -> Dict[int, List[int]]:
    """Group ``(id, class label)`` pairs by class label with validation."""
    grouped: Dict[int, List[int]] = {}
    for position, pair in enumerate(pairs):
        try:
            identifier, label = pair
        except (TypeError, ValueError):
            raise ValueError(
                "%s entry %d is not an (id, class label) pair: %r" % (kind, position, pair)
            )
        identifier = int(identifier)
        label = int(label)
        if identifier < 0:
            raise ValueError("%s ids must be non-negative, got %d" % (kind, identifier))
        if label < 0:
            raise ValueError("class labels must be non-negative, got %d" % label)
        grouped.setdefault(label, [])
        if identifier not in grouped[label]:
            grouped[label].append(identifier)
    return {label: sorted(ids) for label, ids in grouped.items()}


@dataclass
class LabeledObjects:
    """The set ``Io`` of labeled objects.

    Each entry states that an object is a member of a class.  Unlike the
    training set of a classifier, the set may cover only some classes and
    only a handful of objects per class.
    """

    by_class: Dict[int, List[int]] = field(default_factory=dict)

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, int]]) -> "LabeledObjects":
        """Build from ``(object id, class label)`` pairs."""
        grouped = _group_pairs(pairs, kind="labeled object")
        instance = cls(by_class=grouped)
        instance._check_disjoint()
        return instance

    @classmethod
    def from_mapping(cls, mapping: Mapping[int, Sequence[int]]) -> "LabeledObjects":
        """Build from a ``{class label: [object ids]}`` mapping."""
        pairs = [(obj, label) for label, objs in mapping.items() for obj in objs]
        return cls.from_pairs(pairs)

    def _check_disjoint(self) -> None:
        seen: Dict[int, int] = {}
        for label, objects in self.by_class.items():
            for obj in objects:
                if obj in seen and seen[obj] != label:
                    raise ValueError(
                        "object %d is labeled for two different classes (%d and %d); "
                        "the paper assumes disjoint clusters" % (obj, seen[obj], label)
                    )
                seen[obj] = label

    def classes(self) -> List[int]:
        """Class labels that received at least one labeled object."""
        return sorted(self.by_class)

    def for_class(self, label: int) -> np.ndarray:
        """Object indices labeled for ``label`` (possibly empty)."""
        return np.asarray(self.by_class.get(int(label), []), dtype=int)

    def count(self, label: Optional[int] = None) -> int:
        """Number of labeled objects overall or for one class."""
        if label is not None:
            return len(self.by_class.get(int(label), []))
        return sum(len(objs) for objs in self.by_class.values())

    def all_objects(self) -> np.ndarray:
        """Every labeled object index, over all classes."""
        collected: List[int] = []
        for objs in self.by_class.values():
            collected.extend(objs)
        return np.asarray(sorted(set(collected)), dtype=int)

    def is_empty(self) -> bool:
        """Whether no labeled objects were supplied."""
        return self.count() == 0

    def validate_against(self, n_objects: int) -> None:
        """Raise if any labeled object index is outside ``[0, n_objects)``."""
        objects = self.all_objects()
        if objects.size and objects.max() >= n_objects:
            raise ValueError(
                "labeled object index %d is outside the dataset (n=%d)"
                % (int(objects.max()), n_objects)
            )


@dataclass
class LabeledDimensions:
    """The set ``Iv`` of labeled dimensions.

    Each entry states that a dimension is relevant to a class; the same
    dimension may legitimately be labeled for several classes.
    """

    by_class: Dict[int, List[int]] = field(default_factory=dict)

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, int]]) -> "LabeledDimensions":
        """Build from ``(dimension id, class label)`` pairs."""
        return cls(by_class=_group_pairs(pairs, kind="labeled dimension"))

    @classmethod
    def from_mapping(cls, mapping: Mapping[int, Sequence[int]]) -> "LabeledDimensions":
        """Build from a ``{class label: [dimension ids]}`` mapping."""
        pairs = [(dim, label) for label, dims in mapping.items() for dim in dims]
        return cls.from_pairs(pairs)

    def classes(self) -> List[int]:
        """Class labels that received at least one labeled dimension."""
        return sorted(self.by_class)

    def for_class(self, label: int) -> np.ndarray:
        """Dimension indices labeled for ``label`` (possibly empty)."""
        return np.asarray(self.by_class.get(int(label), []), dtype=int)

    def count(self, label: Optional[int] = None) -> int:
        """Number of labeled dimensions overall or for one class."""
        if label is not None:
            return len(self.by_class.get(int(label), []))
        return sum(len(dims) for dims in self.by_class.values())

    def is_empty(self) -> bool:
        """Whether no labeled dimensions were supplied."""
        return self.count() == 0

    def validate_against(self, n_dimensions: int) -> None:
        """Raise if any labeled dimension index is outside ``[0, n_dimensions)``."""
        for label, dims in self.by_class.items():
            for dim in dims:
                if dim >= n_dimensions:
                    raise ValueError(
                        "labeled dimension %d for class %d is outside the dataset (d=%d)"
                        % (dim, label, n_dimensions)
                    )


@dataclass
class Knowledge:
    """Bundle of the two knowledge sets fed to SSPC.

    Attributes
    ----------
    objects:
        The labeled-object set ``Io``.
    dimensions:
        The labeled-dimension set ``Iv``.
    """

    objects: LabeledObjects = field(default_factory=LabeledObjects)
    dimensions: LabeledDimensions = field(default_factory=LabeledDimensions)

    @classmethod
    def empty(cls) -> "Knowledge":
        """No knowledge at all — SSPC then behaves fully unsupervised."""
        return cls()

    @classmethod
    def from_pairs(
        cls,
        object_pairs: Iterable[Tuple[int, int]] = (),
        dimension_pairs: Iterable[Tuple[int, int]] = (),
    ) -> "Knowledge":
        """Build from raw ``(id, class label)`` pair iterables."""
        return cls(
            objects=LabeledObjects.from_pairs(object_pairs),
            dimensions=LabeledDimensions.from_pairs(dimension_pairs),
        )

    def classes(self) -> List[int]:
        """All class labels mentioned by either knowledge set."""
        return sorted(set(self.objects.classes()) | set(self.dimensions.classes()))

    def knowledge_kind(self, label: int) -> str:
        """Classification of the knowledge available for one class.

        Returns one of ``"both"``, ``"objects"``, ``"dimensions"`` or
        ``"none"`` — the four initialisation cases of Section 4.2.
        """
        has_objects = self.objects.count(label) > 0
        has_dimensions = self.dimensions.count(label) > 0
        if has_objects and has_dimensions:
            return "both"
        if has_objects:
            return "objects"
        if has_dimensions:
            return "dimensions"
        return "none"

    def amount(self, label: int) -> int:
        """Total number of knowledge items supplied for one class."""
        return self.objects.count(label) + self.dimensions.count(label)

    def is_empty(self) -> bool:
        """Whether neither labeled objects nor labeled dimensions exist."""
        return self.objects.is_empty() and self.dimensions.is_empty()

    def validate_against(self, n_objects: int, n_dimensions: int, n_clusters: int) -> None:
        """Validate all indices and class labels against dataset shape / k."""
        self.objects.validate_against(n_objects)
        self.dimensions.validate_against(n_dimensions)
        for label in self.classes():
            if label >= n_clusters:
                raise ValueError(
                    "knowledge mentions class %d but only %d clusters were requested"
                    % (label, n_clusters)
                )

    def labeled_object_indices(self) -> np.ndarray:
        """All labeled object indices (used to strip them before ARI)."""
        return self.objects.all_objects()
