"""Shared infrastructure for the experiment runners.

The paper's evaluation protocol (Section 5) repeats every experiment ten
times and reports only the run with the best *algorithm-specific*
objective score; clustering quality is then measured with the Adjusted
Rand Index against the known real clusters, after removing any labeled
objects from the produced clusters.  :func:`run_best_of` implements that
protocol for any estimator following the shared ``fit`` / ``result_``
interface.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.executor import SerialExecutor
from repro.core.model import ClusteringResult
from repro.core.sspc import SSPC
from repro.baselines import CLARANS, HARP, PROCLUS
from repro.evaluation import adjusted_rand_index
from repro.semisupervision.knowledge import Knowledge
from repro.utils.rng import RandomState, spawn_rngs


@dataclass
class AlgorithmSpec:
    """A named algorithm factory used by the comparison experiments.

    Attributes
    ----------
    name:
        Display name used in result tables (``"SSPC(m=0.5)"`` etc.).
    factory:
        Callable ``(random_state) -> estimator`` building a fresh
        estimator for one run.
    supports_knowledge:
        Whether the estimator's ``fit`` accepts a knowledge argument.
    """

    name: str
    factory: Callable[[np.random.Generator], object]
    supports_knowledge: bool = False


@dataclass
class ExperimentResult:
    """One cell of a results table: algorithm x configuration."""

    algorithm: str
    configuration: Dict[str, object]
    ari: float
    objective: float
    runtime_seconds: float
    n_outliers: int = 0
    extra: Dict[str, float] = field(default_factory=dict)


def evaluate_result(
    result: ClusteringResult,
    true_labels: Sequence[int],
    *,
    knowledge: Optional[Knowledge] = None,
) -> float:
    """ARI of a clustering result, with labeled objects stripped first.

    Section 5 of the paper removes labeled objects from the produced
    clusters before computing ARI so the reported gain is not simply the
    pinned inputs.
    """
    if knowledge is not None and not knowledge.objects.is_empty():
        result = result.without_objects(knowledge.labeled_object_indices())
    return adjusted_rand_index(true_labels, result.labels())


def run_best_of(
    spec: AlgorithmSpec,
    data: np.ndarray,
    true_labels: Sequence[int],
    *,
    n_repeats: int = 10,
    knowledge: Optional[Knowledge] = None,
    random_state: RandomState = None,
    configuration: Optional[Dict[str, object]] = None,
    executor=None,
) -> ExperimentResult:
    """Run an algorithm ``n_repeats`` times and keep the best-objective run.

    Parameters
    ----------
    spec:
        The algorithm to run.
    data:
        The dataset.
    true_labels:
        Ground-truth membership labels used for ARI.
    n_repeats:
        Number of repeated runs (the paper uses 10).
    knowledge:
        Optional knowledge passed to knowledge-aware algorithms; ignored
        (and never required) by the unsupervised baselines.
    random_state:
        Seed controlling the independent per-run streams.
    configuration:
        Echoed into the returned :class:`ExperimentResult`.
    executor:
        An executor from :mod:`repro.utils.executor` used to fan the
        independent repeats out (``SerialExecutor`` by default; a
        ``ThreadExecutor`` overlaps the numpy-heavy fits).  The
        reduction over the per-repeat outcomes is performed serially in
        repeat order, so the result is identical for every executor.

    Returns
    -------
    ExperimentResult
        ARI / objective / runtime of the best-objective run (runtime is
        the *total* over all repeats, matching the paper's Figure 8
        convention of reporting 10-run totals).
    """
    rngs = spawn_rngs(random_state, n_repeats)

    def run_one(rng) -> Tuple[ClusteringResult, float]:
        estimator = spec.factory(rng)
        started = time.perf_counter()
        if spec.supports_knowledge and knowledge is not None:
            estimator.fit(data, knowledge)
        else:
            estimator.fit(data)
        return estimator.result_, time.perf_counter() - started

    outcomes = (executor or SerialExecutor()).map(run_one, rngs)

    best_objective = -math.inf
    best_ari = 0.0
    best_outliers = 0
    total_runtime = 0.0
    for result, runtime in outcomes:
        total_runtime += runtime
        objective = result.objective
        if not np.isfinite(objective):
            # Algorithms without a comparable objective (HARP) fall back to
            # "last run wins", i.e. every run is treated as equally good and
            # the best ARI across runs is reported.
            objective = -math.inf
            ari = evaluate_result(result, true_labels, knowledge=knowledge)
            if ari > best_ari or best_objective == -math.inf:
                best_ari = max(best_ari, ari)
                best_outliers = result.n_outliers
            continue
        if objective > best_objective:
            best_objective = objective
            best_ari = evaluate_result(result, true_labels, knowledge=knowledge)
            best_outliers = result.n_outliers
    return ExperimentResult(
        algorithm=spec.name,
        configuration=dict(configuration or {}),
        ari=float(best_ari),
        objective=float(best_objective),
        runtime_seconds=float(total_runtime),
        n_outliers=int(best_outliers),
    )


def default_algorithms(
    n_clusters: int,
    *,
    true_avg_dimensionality: float,
    sspc_m: float = 0.5,
    sspc_p: float = 0.01,
    include_clarans: bool = True,
    include_harp: bool = True,
    harp_max_objects: Optional[int] = None,
) -> List[AlgorithmSpec]:
    """The algorithm line-up of the paper's comparison experiments.

    Parameters
    ----------
    n_clusters:
        Number of clusters requested from every algorithm.
    true_avg_dimensionality:
        The correct ``l`` value supplied to PROCLUS (the paper gives
        PROCLUS the benefit of the right parameter in Figures 5-7).
    sspc_m, sspc_p:
        Threshold parameters for the two SSPC variants.
    include_clarans, include_harp:
        Drop the slower baselines for reduced-size benchmark runs.
    harp_max_objects:
        Unused placeholder kept for API stability (HARP handles the
        paper-scale datasets directly).
    """
    specs: List[AlgorithmSpec] = [
        AlgorithmSpec(
            name="SSPC(m=%.2g)" % sspc_m,
            factory=lambda rng, m=sspc_m: SSPC(n_clusters=n_clusters, m=m, random_state=rng),
            supports_knowledge=True,
        ),
        AlgorithmSpec(
            name="SSPC(p=%.2g)" % sspc_p,
            factory=lambda rng, p=sspc_p: SSPC(n_clusters=n_clusters, p=p, random_state=rng),
            supports_knowledge=True,
        ),
        AlgorithmSpec(
            name="PROCLUS(l=%g)" % true_avg_dimensionality,
            factory=lambda rng: PROCLUS(
                n_clusters=n_clusters,
                avg_dimensions=true_avg_dimensionality,
                random_state=rng,
            ),
        ),
    ]
    if include_harp:
        specs.append(
            AlgorithmSpec(
                name="HARP",
                factory=lambda rng: HARP(n_clusters=n_clusters, random_state=rng),
            )
        )
    if include_clarans:
        specs.append(
            AlgorithmSpec(
                name="CLARANS",
                factory=lambda rng: CLARANS(
                    n_clusters=n_clusters, max_neighbors=200, random_state=rng
                ),
            )
        )
    return specs


def format_series_table(
    rows: Sequence[ExperimentResult],
    *,
    x_key: str,
    value: str = "ari",
    title: str = "",
) -> str:
    """Format results as a figure-style table (algorithms x sweep values).

    Parameters
    ----------
    rows:
        Experiment results; each must carry ``x_key`` in its
        configuration.
    x_key:
        Configuration key used as the x-axis (e.g. ``"l_real"``).
    value:
        Attribute plotted on the y-axis (``"ari"``, ``"runtime_seconds"``
        ...).
    title:
        Optional heading.
    """
    x_values = sorted({row.configuration.get(x_key) for row in rows}, key=lambda v: (v is None, v))
    algorithms = []
    for row in rows:
        if row.algorithm not in algorithms:
            algorithms.append(row.algorithm)
    lines: List[str] = []
    if title:
        lines.append(title)
    header = ["%-18s" % x_key] + ["%12s" % algorithm for algorithm in algorithms]
    lines.append(" ".join(header))
    for x_value in x_values:
        cells = ["%-18s" % str(x_value)]
        for algorithm in algorithms:
            match = [
                row
                for row in rows
                if row.algorithm == algorithm and row.configuration.get(x_key) == x_value
            ]
            if match:
                cells.append("%12.3f" % getattr(match[0], value))
            else:
                cells.append("%12s" % "-")
        lines.append(" ".join(cells))
    return "\n".join(lines)
