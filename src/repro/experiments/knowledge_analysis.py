"""Experiments E1-E2: knowledge-requirement analysis (Figures 1 and 2).

These figures are analytical — they plot the closed-form probability that
SSPC's initialisation forms at least one grid from dimensions relevant
(only) to the target cluster, as a function of how much knowledge is
supplied and how low-dimensional the clusters are.  The runners below
evaluate the closed forms over the same parameter ranges used by the
paper (d = 3000, p = 0.01, c = 3, g = 20, variance ratio 0.15, k = 5)
and, optionally, cross-check them against a Monte-Carlo simulation of
the initialisation model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.core.analysis import (
    grid_success_probability_labeled_dimensions,
    grid_success_probability_labeled_objects,
)
from repro.utils.rng import RandomState, ensure_rng

DEFAULT_INPUT_SIZES = tuple(range(0, 21))
DEFAULT_RELEVANT_FRACTIONS = (0.01, 0.02, 0.05, 0.10)


@dataclass
class KnowledgeAnalysisResult:
    """Probability curves for one analytical figure."""

    input_sizes: List[int]
    relevant_fractions: List[float]
    probabilities: np.ndarray
    monte_carlo: Dict[float, np.ndarray] = field(default_factory=dict)

    def as_table(self) -> str:
        """Figure-style table: one column per relevant fraction."""
        lines = ["%-12s" % "input size" + "".join("%12s" % ("di/d=%.0f%%" % (100 * f)) for f in self.relevant_fractions)]
        for column, size in enumerate(self.input_sizes):
            row = "%-12d" % size
            row += "".join("%12.3f" % self.probabilities[r, column] for r in range(len(self.relevant_fractions)))
            lines.append(row)
        return "\n".join(lines)


def run_figure1(
    input_sizes: Sequence[int] = DEFAULT_INPUT_SIZES,
    relevant_fractions: Sequence[float] = DEFAULT_RELEVANT_FRACTIONS,
    *,
    n_dimensions: int = 3000,
    p: float = 0.01,
    grid_dimensions: int = 3,
    n_grids: int = 20,
    variance_ratio: float = 0.15,
    monte_carlo_trials: int = 0,
    random_state: RandomState = None,
) -> KnowledgeAnalysisResult:
    """Figure 1: probability of an all-relevant grid vs. number of labeled objects.

    ``monte_carlo_trials > 0`` adds a simulation estimate of the same
    probability (drawing candidate sets and grids from the model) used by
    the tests to validate the closed form.
    """
    probabilities = np.zeros((len(relevant_fractions), len(input_sizes)))
    for row, fraction in enumerate(relevant_fractions):
        for column, size in enumerate(input_sizes):
            probabilities[row, column] = grid_success_probability_labeled_objects(
                int(size),
                n_dimensions=n_dimensions,
                relevant_fraction=float(fraction),
                p=p,
                grid_dimensions=grid_dimensions,
                n_grids=n_grids,
                variance_ratio=variance_ratio,
            )
    result = KnowledgeAnalysisResult(
        input_sizes=[int(s) for s in input_sizes],
        relevant_fractions=[float(f) for f in relevant_fractions],
        probabilities=probabilities,
    )
    if monte_carlo_trials > 0:
        rng = ensure_rng(random_state)
        for fraction in relevant_fractions:
            result.monte_carlo[float(fraction)] = _simulate_labeled_objects(
                input_sizes,
                fraction,
                n_dimensions=n_dimensions,
                p=p,
                grid_dimensions=grid_dimensions,
                n_grids=n_grids,
                variance_ratio=variance_ratio,
                trials=monte_carlo_trials,
                rng=rng,
            )
    return result


def run_figure2(
    input_sizes: Sequence[int] = DEFAULT_INPUT_SIZES,
    relevant_fractions: Sequence[float] = DEFAULT_RELEVANT_FRACTIONS,
    *,
    n_dimensions: int = 3000,
    n_clusters: int = 5,
    grid_dimensions: int = 3,
    n_grids: int = 20,
) -> KnowledgeAnalysisResult:
    """Figure 2: probability of an exclusively-relevant grid vs. labeled dimensions."""
    probabilities = np.zeros((len(relevant_fractions), len(input_sizes)))
    for row, fraction in enumerate(relevant_fractions):
        for column, size in enumerate(input_sizes):
            probabilities[row, column] = grid_success_probability_labeled_dimensions(
                int(size),
                n_dimensions=n_dimensions,
                relevant_fraction=float(fraction),
                n_clusters=n_clusters,
                grid_dimensions=grid_dimensions,
                n_grids=n_grids,
            )
    return KnowledgeAnalysisResult(
        input_sizes=[int(s) for s in input_sizes],
        relevant_fractions=[float(f) for f in relevant_fractions],
        probabilities=probabilities,
    )


def _simulate_labeled_objects(
    input_sizes: Sequence[int],
    relevant_fraction: float,
    *,
    n_dimensions: int,
    p: float,
    grid_dimensions: int,
    n_grids: int,
    variance_ratio: float,
    trials: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Monte-Carlo estimate of the Figure-1 probability.

    For every trial the candidate set is drawn dimension by dimension
    (relevant dimensions pass ``SelectDim`` with the chi-square retention
    probability, irrelevant ones with probability ``p``) and ``n_grids``
    grids of ``grid_dimensions`` uniform draws are taken from it; the
    trial succeeds when at least one grid is all-relevant.
    """
    from repro.core.analysis import relevant_dimension_retention_probability

    n_relevant = int(round(relevant_fraction * n_dimensions))
    estimates = np.zeros(len(input_sizes))
    for column, size in enumerate(input_sizes):
        if size < 2:
            estimates[column] = 0.0
            continue
        q_relevant = relevant_dimension_retention_probability(int(size), p, variance_ratio)
        successes = 0
        for _ in range(trials):
            kept_relevant = int(rng.binomial(n_relevant, q_relevant))
            kept_irrelevant = int(rng.binomial(n_dimensions - n_relevant, p))
            total = kept_relevant + kept_irrelevant
            if total < grid_dimensions or kept_relevant < grid_dimensions:
                continue
            success = False
            for _ in range(n_grids):
                draw = rng.choice(total, size=grid_dimensions, replace=False)
                if np.all(draw < kept_relevant):
                    success = True
                    break
            successes += int(success)
        estimates[column] = successes / trials
    return estimates
