"""Experiment E8: data with multiple possible groupings (Figure 7).

Two independent groupings of the same 150 objects are generated on two
1500-dimension blocks and concatenated into a 3000-dimension dataset.
HARP, PROCLUS (with the correct ``l``) and SSPC are evaluated against
*both* ground-truth groupings; SSPC is additionally run with knowledge
drawn from grouping 1 and from grouping 2, showing that the supplied
knowledge steers which structure is recovered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.baselines import HARP, PROCLUS
from repro.core.sspc import SSPC
from repro.data.multigroup import MultiGroupingDataset, make_multigroup_dataset
from repro.evaluation import adjusted_rand_index
from repro.semisupervision.sampling import KnowledgeSampler
from repro.utils.rng import RandomState, ensure_rng, random_seed_from


@dataclass
class MultiGroupingRow:
    """ARI of one algorithm/guidance combination against both groupings."""

    algorithm: str
    guidance: str
    ari_grouping1: float
    ari_grouping2: float
    extra: Dict[str, float] = field(default_factory=dict)


def run_multiple_groupings(
    *,
    dataset: Optional[MultiGroupingDataset] = None,
    n_objects: int = 150,
    n_dimensions_per_grouping: int = 1500,
    n_clusters: int = 5,
    avg_cluster_dimensionality: int = 30,
    input_size: int = 5,
    m: float = 0.5,
    include_harp: bool = True,
    include_proclus: bool = True,
    n_repeats: int = 3,
    random_state: RandomState = None,
) -> List[MultiGroupingRow]:
    """Reproduce the Figure 7 comparison.

    Returns one row per algorithm / guidance combination with the ARI
    measured against grouping 1 and grouping 2.
    """
    rng = ensure_rng(random_state)
    if dataset is None:
        dataset = make_multigroup_dataset(
            n_objects=n_objects,
            n_dimensions_per_grouping=n_dimensions_per_grouping,
            n_clusters=n_clusters,
            avg_cluster_dimensionality=avg_cluster_dimensionality,
            random_state=random_seed_from(rng),
        )
    labels1 = dataset.grouping_labels(0)
    labels2 = dataset.grouping_labels(1)
    rows: List[MultiGroupingRow] = []

    def best_of(fit_once):
        """Run ``fit_once`` ``n_repeats`` times, keep the best-objective labels."""
        best_labels = None
        best_objective = -np.inf
        for _ in range(n_repeats):
            labels, objective = fit_once()
            if objective is None or not np.isfinite(objective):
                objective = -np.inf
            if best_labels is None or objective > best_objective:
                best_labels, best_objective = labels, objective
        return best_labels

    if include_harp:
        harp_labels = best_of(
            lambda: (
                HARP(n_clusters=n_clusters, random_state=random_seed_from(rng)).fit_predict(dataset.data),
                None,
            )
        )
        rows.append(
            MultiGroupingRow(
                algorithm="HARP",
                guidance="none",
                ari_grouping1=adjusted_rand_index(labels1, harp_labels),
                ari_grouping2=adjusted_rand_index(labels2, harp_labels),
            )
        )

    if include_proclus:
        def proclus_once():
            model = PROCLUS(
                n_clusters=n_clusters,
                avg_dimensions=float(avg_cluster_dimensionality),
                random_state=random_seed_from(rng),
            ).fit(dataset.data)
            return model.labels_, model.result_.objective

        proclus_labels = best_of(proclus_once)
        rows.append(
            MultiGroupingRow(
                algorithm="PROCLUS",
                guidance="none",
                ari_grouping1=adjusted_rand_index(labels1, proclus_labels),
                ari_grouping2=adjusted_rand_index(labels2, proclus_labels),
            )
        )

    def sspc_once(knowledge):
        model = SSPC(n_clusters=n_clusters, m=m, random_state=random_seed_from(rng))
        model.fit(dataset.data, knowledge)
        return model, model.objective_

    # Raw SSPC (no guidance).
    raw_model = None
    raw_objective = -np.inf
    for _ in range(n_repeats):
        model, objective = sspc_once(None)
        if raw_model is None or objective > raw_objective:
            raw_model, raw_objective = model, objective
    rows.append(
        MultiGroupingRow(
            algorithm="SSPC",
            guidance="none",
            ari_grouping1=adjusted_rand_index(labels1, raw_model.labels_),
            ari_grouping2=adjusted_rand_index(labels2, raw_model.labels_),
        )
    )

    # SSPC guided by knowledge from each grouping in turn.
    for grouping_index, guidance in ((0, "grouping 1"), (1, "grouping 2")):
        sampler = KnowledgeSampler(
            dataset.grouping_labels(grouping_index),
            dataset.grouping_dimensions(grouping_index),
        )
        best_model = None
        best_objective = -np.inf
        best_knowledge = None
        for _ in range(n_repeats):
            knowledge = sampler.sample(
                category="both",
                input_size=input_size,
                coverage=1.0,
                random_state=random_seed_from(rng),
            )
            model, objective = sspc_once(knowledge)
            if best_model is None or objective > best_objective:
                best_model, best_objective, best_knowledge = model, objective, knowledge
        stripped = best_model.result_.without_objects(best_knowledge.labeled_object_indices())
        rows.append(
            MultiGroupingRow(
                algorithm="SSPC",
                guidance=guidance,
                ari_grouping1=adjusted_rand_index(labels1, stripped.labels()),
                ari_grouping2=adjusted_rand_index(labels2, stripped.labels()),
            )
        )
    return rows


def format_multigrouping_table(rows: List[MultiGroupingRow]) -> str:
    """Figure-7 style table: algorithm / guidance vs. ARI on both groupings."""
    lines = ["%-12s %-14s %14s %14s" % ("algorithm", "guidance", "ARI grouping 1", "ARI grouping 2")]
    for row in rows:
        lines.append(
            "%-12s %-14s %14.3f %14.3f"
            % (row.algorithm, row.guidance, row.ari_grouping1, row.ari_grouping2)
        )
    return "\n".join(lines)
