"""Experiments E9-E10: scalability in n and d (Figure 8).

The paper plots the total execution time of 10 repeated runs of SSPC and
PROCLUS against an increasing number of objects (Figure 8a) and an
increasing number of dimensions (Figure 8b), showing linear growth in
both and comparable speed between the two algorithms.  Absolute timings
depend on the hardware; the reproduced quantity is the *shape* (linear
scaling, comparable magnitude).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.baselines import PROCLUS
from repro.core.sspc import SSPC
from repro.data.generator import make_projected_clusters
from repro.utils.rng import RandomState, ensure_rng, random_seed_from

DEFAULT_OBJECT_COUNTS = (500, 1000, 2000, 4000)
DEFAULT_DIMENSION_COUNTS = (100, 200, 400, 800)


@dataclass
class ScalabilityRow:
    """Total runtime of repeated runs for one algorithm and dataset size."""

    algorithm: str
    axis: str
    size: int
    total_seconds: float
    n_repeats: int


def _time_runs(factory, data: np.ndarray, n_repeats: int) -> float:
    total = 0.0
    for _ in range(n_repeats):
        estimator = factory()
        started = time.perf_counter()
        estimator.fit(data)
        total += time.perf_counter() - started
    return total


def run_scalability(
    *,
    object_counts: Sequence[int] = DEFAULT_OBJECT_COUNTS,
    dimension_counts: Sequence[int] = DEFAULT_DIMENSION_COUNTS,
    base_objects: int = 1000,
    base_dimensions: int = 100,
    n_clusters: int = 5,
    l_real: int = 10,
    n_repeats: int = 10,
    m: float = 0.5,
    random_state: RandomState = None,
) -> List[ScalabilityRow]:
    """Measure 10-run total times of SSPC and PROCLUS along both axes.

    Parameters
    ----------
    object_counts:
        Values of ``n`` swept while ``d = base_dimensions`` (Figure 8a).
    dimension_counts:
        Values of ``d`` swept while ``n = base_objects`` (Figure 8b).
    n_repeats:
        Repeated runs whose total time is reported (paper: 10).
    """
    rng = ensure_rng(random_state)
    rows: List[ScalabilityRow] = []

    def algorithms(l_value: float):
        return {
            "SSPC": lambda: SSPC(n_clusters=n_clusters, m=m, random_state=random_seed_from(rng)),
            "PROCLUS": lambda: PROCLUS(
                n_clusters=n_clusters, avg_dimensions=l_value, random_state=random_seed_from(rng)
            ),
        }

    for n_objects in object_counts:
        dataset = make_projected_clusters(
            n_objects=int(n_objects),
            n_dimensions=base_dimensions,
            n_clusters=n_clusters,
            avg_cluster_dimensionality=l_real,
            random_state=random_seed_from(rng),
        )
        for name, factory in algorithms(float(l_real)).items():
            rows.append(
                ScalabilityRow(
                    algorithm=name,
                    axis="n_objects",
                    size=int(n_objects),
                    total_seconds=_time_runs(factory, dataset.data, n_repeats),
                    n_repeats=n_repeats,
                )
            )

    for n_dimensions in dimension_counts:
        l_scaled = max(int(round(l_real * n_dimensions / base_dimensions)), 2)
        dataset = make_projected_clusters(
            n_objects=base_objects,
            n_dimensions=int(n_dimensions),
            n_clusters=n_clusters,
            avg_cluster_dimensionality=l_scaled,
            random_state=random_seed_from(rng),
        )
        for name, factory in algorithms(float(l_scaled)).items():
            rows.append(
                ScalabilityRow(
                    algorithm=name,
                    axis="n_dimensions",
                    size=int(n_dimensions),
                    total_seconds=_time_runs(factory, dataset.data, n_repeats),
                    n_repeats=n_repeats,
                )
            )
    return rows


def format_scalability_table(rows: Sequence[ScalabilityRow]) -> str:
    """Figure-8 style table, one block per axis."""
    lines: List[str] = []
    for axis in ("n_objects", "n_dimensions"):
        axis_rows = [row for row in rows if row.axis == axis]
        if not axis_rows:
            continue
        lines.append("axis: %s (total seconds over %d runs)" % (axis, axis_rows[0].n_repeats))
        algorithms = sorted({row.algorithm for row in axis_rows})
        sizes = sorted({row.size for row in axis_rows})
        lines.append("%-12s" % "size" + "".join("%12s" % a for a in algorithms))
        for size in sizes:
            cells = ["%-12d" % size]
            for algorithm in algorithms:
                match = [r for r in axis_rows if r.size == size and r.algorithm == algorithm]
                cells.append("%12.2f" % match[0].total_seconds if match else "%12s" % "-")
            lines.append("".join(cells))
    return "\n".join(lines)


def linear_fit_quality(rows: Sequence[ScalabilityRow], algorithm: str, axis: str) -> Dict[str, float]:
    """R-squared of a linear fit of runtime vs. size (used by tests/benches).

    A value close to 1 supports the paper's linear-complexity claim.
    """
    points = sorted(
        [(row.size, row.total_seconds) for row in rows if row.algorithm == algorithm and row.axis == axis]
    )
    if len(points) < 3:
        return {"r_squared": float("nan"), "slope": float("nan")}
    sizes = np.asarray([p[0] for p in points], dtype=float)
    times = np.asarray([p[1] for p in points], dtype=float)
    slope, intercept = np.polyfit(sizes, times, 1)
    predicted = slope * sizes + intercept
    residual = ((times - predicted) ** 2).sum()
    total = ((times - times.mean()) ** 2).sum()
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return {"r_squared": float(r_squared), "slope": float(slope)}
