"""Experiment E4: parameter sensitivity at l_real = 10 (Figure 4).

On the d = 100 dataset whose clusters have 10 relevant dimensions each,
the paper compares how PROCLUS reacts to different values of its ``l``
parameter against how SSPC reacts to different values of ``m`` and ``p``.
PROCLUS degrades quickly away from the true value, while SSPC stays flat
— the point being that SSPC's single parameter is not critical.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.baselines import PROCLUS
from repro.core.sspc import SSPC
from repro.data.generator import make_projected_clusters
from repro.experiments.harness import AlgorithmSpec, ExperimentResult, run_best_of
from repro.utils.rng import RandomState, ensure_rng, random_seed_from

DEFAULT_PROCLUS_L = (2, 4, 6, 8, 10, 12, 14, 16, 18)
DEFAULT_SSPC_M = (0.1, 0.3, 0.5, 0.7, 0.9)
DEFAULT_SSPC_P = (0.001, 0.01, 0.05, 0.1, 0.2)


def run_parameter_sensitivity(
    *,
    n_objects: int = 1000,
    n_dimensions: int = 100,
    n_clusters: int = 5,
    l_real: int = 10,
    proclus_l_values: Sequence[int] = DEFAULT_PROCLUS_L,
    sspc_m_values: Sequence[float] = DEFAULT_SSPC_M,
    sspc_p_values: Sequence[float] = DEFAULT_SSPC_P,
    n_repeats: int = 5,
    random_state: RandomState = None,
) -> List[ExperimentResult]:
    """Sweep the critical parameter of each algorithm on one dataset.

    Returns one :class:`ExperimentResult` per (algorithm, parameter
    value); the configuration dictionary carries ``parameter`` and
    ``value`` keys so the benchmark can print the two sweeps side by
    side.
    """
    rng = ensure_rng(random_state)
    dataset = make_projected_clusters(
        n_objects=n_objects,
        n_dimensions=n_dimensions,
        n_clusters=n_clusters,
        avg_cluster_dimensionality=l_real,
        random_state=random_seed_from(rng),
    )

    rows: List[ExperimentResult] = []
    for l_value in proclus_l_values:
        spec = AlgorithmSpec(
            name="PROCLUS",
            factory=lambda run_rng, l_param=l_value: PROCLUS(
                n_clusters=n_clusters, avg_dimensions=float(l_param), random_state=run_rng
            ),
        )
        rows.append(
            run_best_of(
                spec,
                dataset.data,
                dataset.labels,
                n_repeats=n_repeats,
                random_state=random_seed_from(rng),
                configuration={"parameter": "l", "value": float(l_value)},
            )
        )
    for m_value in sspc_m_values:
        spec = AlgorithmSpec(
            name="SSPC(m)",
            factory=lambda run_rng, m=m_value: SSPC(
                n_clusters=n_clusters, m=float(m), random_state=run_rng
            ),
            supports_knowledge=True,
        )
        rows.append(
            run_best_of(
                spec,
                dataset.data,
                dataset.labels,
                n_repeats=n_repeats,
                random_state=random_seed_from(rng),
                configuration={"parameter": "m", "value": float(m_value)},
            )
        )
    for p_value in sspc_p_values:
        spec = AlgorithmSpec(
            name="SSPC(p)",
            factory=lambda run_rng, p=p_value: SSPC(
                n_clusters=n_clusters, p=float(p), random_state=run_rng
            ),
            supports_knowledge=True,
        )
        rows.append(
            run_best_of(
                spec,
                dataset.data,
                dataset.labels,
                n_repeats=n_repeats,
                random_state=random_seed_from(rng),
                configuration={"parameter": "p", "value": float(p_value)},
            )
        )
    return rows
