"""Experiment runners that regenerate the paper's tables and figures.

Every module corresponds to one experiment of Section 5 (or Section 4.5
for the analytical figures); see DESIGN.md for the experiment index.  The
runners accept scale parameters so the benchmark harness can execute
reduced-size versions quickly, while the defaults follow the paper's
configuration.
"""

from repro.experiments.harness import (
    AlgorithmSpec,
    ExperimentResult,
    default_algorithms,
    evaluate_result,
    format_series_table,
    run_best_of,
)
from repro.experiments.knowledge_analysis import run_figure1, run_figure2
from repro.experiments.raw_accuracy import run_raw_accuracy
from repro.experiments.parameter_sensitivity import run_parameter_sensitivity
from repro.experiments.outlier_immunity import run_outlier_immunity
from repro.experiments.knowledge_input import run_coverage_experiment, run_input_size_experiment
from repro.experiments.multiple_groupings import run_multiple_groupings
from repro.experiments.scalability import run_scalability
from repro.experiments.ablations import (
    run_initialisation_ablation,
    run_representative_ablation,
    run_threshold_scheme_ablation,
)

__all__ = [
    "AlgorithmSpec",
    "ExperimentResult",
    "default_algorithms",
    "evaluate_result",
    "format_series_table",
    "run_best_of",
    "run_figure1",
    "run_figure2",
    "run_raw_accuracy",
    "run_parameter_sensitivity",
    "run_outlier_immunity",
    "run_input_size_experiment",
    "run_coverage_experiment",
    "run_multiple_groupings",
    "run_scalability",
    "run_initialisation_ablation",
    "run_representative_ablation",
    "run_threshold_scheme_ablation",
]
