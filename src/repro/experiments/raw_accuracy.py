"""Experiment E3: raw accuracy vs. average cluster dimensionality (Figure 3).

Datasets with n = 1000, d = 100, k = 5 are generated with the average
cluster dimensionality ``l_real`` swept from 5 to 40 (5%-40% of ``d``),
uniform global distributions and local variances of 1%-10% of the global
value range.  Every algorithm runs without knowledge; each configuration
is repeated and only the run with the best algorithm-specific objective
is reported (the paper repeats 10 times).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.data.generator import make_projected_clusters
from repro.experiments.harness import (
    AlgorithmSpec,
    ExperimentResult,
    default_algorithms,
    run_best_of,
)
from repro.utils.rng import RandomState, ensure_rng, random_seed_from

DEFAULT_DIMENSIONALITIES = (5, 10, 20, 30, 40)


def run_raw_accuracy(
    dimensionalities: Sequence[int] = DEFAULT_DIMENSIONALITIES,
    *,
    n_objects: int = 1000,
    n_dimensions: int = 100,
    n_clusters: int = 5,
    n_repeats: int = 10,
    algorithms: Optional[Sequence[AlgorithmSpec]] = None,
    include_clarans: bool = True,
    include_harp: bool = True,
    random_state: RandomState = None,
) -> List[ExperimentResult]:
    """Sweep ``l_real`` and report the best-objective ARI per algorithm.

    Parameters
    ----------
    dimensionalities:
        The ``l_real`` values to sweep (paper: 5 to 40 on d = 100).
    n_objects, n_dimensions, n_clusters:
        Dataset shape (paper: 1000 x 100, k = 5).
    n_repeats:
        Repeated runs per algorithm and configuration (paper: 10).
    algorithms:
        Custom algorithm line-up; the default builds the paper's line-up
        per configuration with PROCLUS given the correct ``l``.
    include_clarans, include_harp:
        Drop slow baselines for scaled-down benchmark runs.
    random_state:
        Master seed.

    Returns
    -------
    list of ExperimentResult
        One row per (algorithm, ``l_real``).
    """
    rng = ensure_rng(random_state)
    rows: List[ExperimentResult] = []
    for l_real in dimensionalities:
        dataset = make_projected_clusters(
            n_objects=n_objects,
            n_dimensions=n_dimensions,
            n_clusters=n_clusters,
            avg_cluster_dimensionality=int(l_real),
            global_distribution="uniform",
            local_std_fraction=(0.01, 0.10),
            random_state=random_seed_from(rng),
        )
        line_up = algorithms
        if line_up is None:
            line_up = default_algorithms(
                n_clusters,
                true_avg_dimensionality=float(l_real),
                include_clarans=include_clarans,
                include_harp=include_harp,
            )
        for spec in line_up:
            rows.append(
                run_best_of(
                    spec,
                    dataset.data,
                    dataset.labels,
                    n_repeats=n_repeats,
                    random_state=random_seed_from(rng),
                    configuration={"l_real": int(l_real)},
                )
            )
    return rows
