"""Experiments E6-E7: accuracy with input knowledge (Figures 5 and 6).

The configuration mimics a gene-expression dataset: n = 150, d = 3000,
k = 5, l_real = 30 (1% of the dimensions relevant per cluster), SSPC run
with m = 0.5.  Two sweeps are reported:

* Figure 5 — coverage fixed at 1.0, input size swept from 0 upwards, for
  the three input categories (labeled objects only, labeled dimensions
  only, both).
* Figure 6 — input size fixed at 6, coverage swept from 0 to 1.

Following the paper's protocol every point is the *median ARI over
independent knowledge draws* (10 in the paper), with the labeled objects
removed from the produced clusters before ARI is computed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.sspc import SSPC
from repro.data.generator import SyntheticDataset, make_projected_clusters
from repro.evaluation import adjusted_rand_index
from repro.experiments.harness import ExperimentResult
from repro.semisupervision.sampling import KnowledgeSampler
from repro.utils.rng import RandomState, ensure_rng, random_seed_from

DEFAULT_INPUT_SIZES = (0, 2, 3, 4, 5, 6, 7, 8)
DEFAULT_COVERAGES = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
DEFAULT_CATEGORIES = ("objects", "dimensions", "both")


def _make_default_dataset(random_state: RandomState) -> SyntheticDataset:
    return make_projected_clusters(
        n_objects=150,
        n_dimensions=3000,
        n_clusters=5,
        avg_cluster_dimensionality=30,
        random_state=random_state,
    )


def _median_ari_over_draws(
    dataset: SyntheticDataset,
    *,
    category: str,
    input_size: int,
    coverage: float,
    m: float,
    n_knowledge_draws: int,
    rng: np.random.Generator,
) -> ExperimentResult:
    """Median ARI over independent knowledge draws for one configuration."""
    sampler = KnowledgeSampler(dataset.labels, dataset.relevant_dimensions)
    n_clusters = dataset.n_clusters
    aris: List[float] = []
    objective = float("-inf")
    n_outliers = 0
    effective_category = category if input_size > 0 and coverage > 0 else "none"
    for _ in range(max(n_knowledge_draws, 1)):
        knowledge = sampler.sample(
            category=effective_category,
            input_size=input_size,
            coverage=coverage,
            random_state=random_seed_from(rng),
        )
        model = SSPC(n_clusters=n_clusters, m=m, random_state=random_seed_from(rng))
        model.fit(dataset.data, knowledge)
        result = model.result_.without_objects(knowledge.labeled_object_indices())
        aris.append(adjusted_rand_index(dataset.labels, result.labels()))
        if model.objective_ > objective:
            objective = model.objective_
            n_outliers = result.n_outliers
        if effective_category == "none":
            # Without knowledge every draw is identical up to the seed; one
            # run per seed is enough.
            continue
    return ExperimentResult(
        algorithm="SSPC(m=%.2g)" % m,
        configuration={
            "category": category,
            "input_size": int(input_size),
            "coverage": float(coverage),
        },
        ari=float(np.median(aris)),
        objective=float(objective),
        runtime_seconds=0.0,
        n_outliers=int(n_outliers),
        extra={"ari_mean": float(np.mean(aris)), "ari_min": float(np.min(aris)), "ari_max": float(np.max(aris))},
    )


def run_input_size_experiment(
    input_sizes: Sequence[int] = DEFAULT_INPUT_SIZES,
    categories: Sequence[str] = DEFAULT_CATEGORIES,
    *,
    dataset: Optional[SyntheticDataset] = None,
    coverage: float = 1.0,
    m: float = 0.5,
    n_knowledge_draws: int = 10,
    random_state: RandomState = None,
) -> List[ExperimentResult]:
    """Figure 5: accuracy vs. input size at full coverage.

    Parameters
    ----------
    input_sizes:
        Number of labeled items per covered cluster (0 gives the raw
        accuracy reference point).
    categories:
        Input categories to sweep (objects / dimensions / both).
    dataset:
        Reuse a pre-generated dataset (the benchmarks pass a smaller
        one); the default follows the paper's n=150, d=3000 setup.
    n_knowledge_draws:
        Independent knowledge draws per point (paper: 10).
    """
    rng = ensure_rng(random_state)
    if dataset is None:
        dataset = _make_default_dataset(random_seed_from(rng))
    rows: List[ExperimentResult] = []
    for category in categories:
        for size in input_sizes:
            rows.append(
                _median_ari_over_draws(
                    dataset,
                    category=category,
                    input_size=int(size),
                    coverage=coverage,
                    m=m,
                    n_knowledge_draws=n_knowledge_draws if size > 0 else 1,
                    rng=rng,
                )
            )
    return rows


def run_coverage_experiment(
    coverages: Sequence[float] = DEFAULT_COVERAGES,
    categories: Sequence[str] = DEFAULT_CATEGORIES,
    *,
    dataset: Optional[SyntheticDataset] = None,
    input_size: int = 6,
    m: float = 0.5,
    n_knowledge_draws: int = 10,
    random_state: RandomState = None,
) -> List[ExperimentResult]:
    """Figure 6: accuracy vs. knowledge coverage at input size 6."""
    rng = ensure_rng(random_state)
    if dataset is None:
        dataset = _make_default_dataset(random_seed_from(rng))
    rows: List[ExperimentResult] = []
    for category in categories:
        for coverage in coverages:
            rows.append(
                _median_ari_over_draws(
                    dataset,
                    category=category,
                    input_size=input_size,
                    coverage=float(coverage),
                    m=m,
                    n_knowledge_draws=n_knowledge_draws if coverage > 0 else 1,
                    rng=rng,
                )
            )
    return rows
