"""Experiment E5: outlier immunity (Section 5.2).

A series of datasets with an increasing fraction of outliers (0% to 25%)
is generated; the paper reports that SSPC's accuracy decreases only
moderately and the number of detected outliers closely tracks the true
number.  The runner reports, per outlier fraction, the ARI and the
detected vs. true outlier counts.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.sspc import SSPC
from repro.data.generator import make_projected_clusters
from repro.evaluation import adjusted_rand_index, outlier_detection_scores
from repro.experiments.harness import AlgorithmSpec, ExperimentResult, run_best_of
from repro.utils.rng import RandomState, ensure_rng, random_seed_from

DEFAULT_OUTLIER_FRACTIONS = (0.0, 0.05, 0.10, 0.15, 0.20, 0.25)


def run_outlier_immunity(
    outlier_fractions: Sequence[float] = DEFAULT_OUTLIER_FRACTIONS,
    *,
    n_objects: int = 1000,
    n_dimensions: int = 100,
    n_clusters: int = 5,
    l_real: int = 10,
    m: float = 0.5,
    n_repeats: int = 5,
    random_state: RandomState = None,
) -> List[ExperimentResult]:
    """Sweep the outlier fraction and measure SSPC's accuracy and detection.

    The returned rows carry the detected / true outlier counts and the
    outlier-detection precision and recall in ``extra``.
    """
    rng = ensure_rng(random_state)
    rows: List[ExperimentResult] = []
    for fraction in outlier_fractions:
        dataset = make_projected_clusters(
            n_objects=n_objects,
            n_dimensions=n_dimensions,
            n_clusters=n_clusters,
            avg_cluster_dimensionality=l_real,
            outlier_fraction=float(fraction),
            random_state=random_seed_from(rng),
        )
        spec = AlgorithmSpec(
            name="SSPC(m=%.2g)" % m,
            factory=lambda run_rng: SSPC(n_clusters=n_clusters, m=m, random_state=run_rng),
            supports_knowledge=True,
        )
        row = run_best_of(
            spec,
            dataset.data,
            dataset.labels,
            n_repeats=n_repeats,
            random_state=random_seed_from(rng),
            configuration={"outlier_fraction": float(fraction)},
        )
        # Re-fit once more deterministically to collect the detection scores
        # of a representative run (run_best_of keeps only scalar outputs).
        model = SSPC(n_clusters=n_clusters, m=m, random_state=random_seed_from(rng)).fit(dataset.data)
        detection = outlier_detection_scores(dataset.labels, model.labels_)
        row.extra.update(
            {
                "true_outliers": float(dataset.n_outliers),
                "detected_outliers": float(detection.n_predicted_outliers),
                "outlier_precision": detection.precision,
                "outlier_recall": detection.recall,
                "single_run_ari": adjusted_rand_index(dataset.labels, model.labels_),
            }
        )
        rows.append(row)
    return rows
