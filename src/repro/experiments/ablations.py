"""Ablation experiments A1-A3 (design choices called out in DESIGN.md).

The paper motivates three design decisions that these ablations isolate:

* **A1 — median vs. mean representative.**  The objective measures
  within-cluster dispersion around the *median* to stay robust against
  outliers (Section 3, design goal 3).  The ablation re-runs the outlier
  workload with the representative-replacement step using means instead
  of medians.
* **A2 — seed-group initialisation vs. random medoids.**  SSPC's
  grid-based seed groups avoid full-dimensional distance computations
  (Section 4.2).  The ablation replaces the initial states with random
  medoids using all dimensions.
* **A3 — m-scheme vs. p-scheme thresholds.**  Section 4.1 argues the
  chi-square scheme is preferable when the sampling distribution is
  known; Figure 3 notes both behave similarly even on non-Gaussian
  globals.  The ablation compares the two schemes on uniform and Gaussian
  global distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.assignment import ClusterState, assign_objects, members_from_labels
from repro.core.dimension_selection import select_dimensions
from repro.core.objective import ObjectiveFunction
from repro.core.representatives import compute_phi_scores
from repro.core.sspc import SSPC
from repro.core.thresholds import make_threshold
from repro.data.generator import make_projected_clusters
from repro.evaluation import adjusted_rand_index
from repro.utils.rng import RandomState, ensure_rng, random_seed_from


@dataclass
class AblationRow:
    """ARI of one ablation variant on one configuration."""

    ablation: str
    variant: str
    configuration: Dict[str, object]
    ari: float


def run_representative_ablation(
    *,
    n_objects: int = 600,
    n_dimensions: int = 100,
    n_clusters: int = 5,
    l_real: int = 10,
    outlier_fraction: float = 0.15,
    m: float = 0.5,
    n_repeats: int = 3,
    random_state: RandomState = None,
) -> List[AblationRow]:
    """A1: median-centred vs. mean-centred cluster representatives.

    Both variants share SSPC's initialisation and assignment; the ablated
    variant replaces representatives with per-dimension *means* instead
    of medians between iterations, which is what a k-means-style update
    would do.  On data with outliers the median variant is expected to
    hold its accuracy better.
    """
    rng = ensure_rng(random_state)
    rows: List[AblationRow] = []
    dataset = make_projected_clusters(
        n_objects=n_objects,
        n_dimensions=n_dimensions,
        n_clusters=n_clusters,
        avg_cluster_dimensionality=l_real,
        outlier_fraction=outlier_fraction,
        random_state=random_seed_from(rng),
    )
    for variant, use_median in (("median (paper)", True), ("mean (ablated)", False)):
        best_ari = 0.0
        best_objective = -np.inf
        for _ in range(n_repeats):
            ari, objective = _run_sspc_with_center(
                dataset.data,
                dataset.labels,
                n_clusters=n_clusters,
                m=m,
                use_median=use_median,
                random_state=random_seed_from(rng),
            )
            if objective > best_objective:
                best_objective = objective
                best_ari = ari
        rows.append(
            AblationRow(
                ablation="representative",
                variant=variant,
                configuration={"outlier_fraction": outlier_fraction},
                ari=best_ari,
            )
        )
    return rows


def _run_sspc_with_center(
    data: np.ndarray,
    true_labels: np.ndarray,
    *,
    n_clusters: int,
    m: float,
    use_median: bool,
    random_state: RandomState,
    max_iterations: int = 15,
) -> tuple:
    """Simplified SSPC loop with a switchable centre statistic.

    Uses the real SSPC for initialisation (one fit with few iterations to
    obtain seed-group-based starting states), then iterates assignment /
    SelectDim / representative replacement with either the median or the
    mean as the replacement representative.
    """
    rng = ensure_rng(random_state)
    model = SSPC(n_clusters=n_clusters, m=m, max_iterations=1, patience=1, random_state=rng)
    model.fit(data)
    objective = ObjectiveFunction(data, make_threshold(m=m))
    states = [
        ClusterState(
            representative=cluster.representative.copy()
            if cluster.representative is not None
            else data[rng.integers(data.shape[0])].copy(),
            dimensions=cluster.dimensions.copy(),
            members=np.empty(0, dtype=int),
            size_hint=max(cluster.size, 2),
        )
        for cluster in model.result_.clusters
    ]
    best_objective = -np.inf
    best_labels = model.labels_
    for _ in range(max_iterations):
        labels = assign_objects(objective, states)
        members = members_from_labels(labels, n_clusters)
        for state, cluster_members in zip(states, members):
            state.members = cluster_members
            state.dimensions = select_dimensions(objective, cluster_members)
        _, overall = compute_phi_scores(objective, states)
        if overall > best_objective:
            best_objective = overall
            best_labels = labels
        for state in states:
            if state.members.size == 0:
                continue
            block = data[state.members]
            state.representative = np.median(block, axis=0) if use_median else block.mean(axis=0)
            state.size_hint = max(state.members.size, 2)
            state.members = np.empty(0, dtype=int)
    return adjusted_rand_index(true_labels, best_labels), best_objective


def run_initialisation_ablation(
    *,
    n_objects: int = 400,
    n_dimensions: int = 200,
    n_clusters: int = 4,
    l_real: int = 8,
    m: float = 0.5,
    n_repeats: int = 3,
    random_state: RandomState = None,
) -> List[AblationRow]:
    """A2: grid-based seed groups vs. random full-space medoids.

    The ablated variant starts from random medoids with *all* dimensions
    selected (the situation SSPC's initialisation is designed to avoid);
    the paper variant is plain SSPC.  Low cluster dimensionality makes
    the difference visible.
    """
    rng = ensure_rng(random_state)
    dataset = make_projected_clusters(
        n_objects=n_objects,
        n_dimensions=n_dimensions,
        n_clusters=n_clusters,
        avg_cluster_dimensionality=l_real,
        random_state=random_seed_from(rng),
    )
    rows: List[AblationRow] = []

    best_ari = 0.0
    best_objective = -np.inf
    for _ in range(n_repeats):
        model = SSPC(n_clusters=n_clusters, m=m, random_state=random_seed_from(rng)).fit(dataset.data)
        if model.objective_ > best_objective:
            best_objective = model.objective_
            best_ari = adjusted_rand_index(dataset.labels, model.labels_)
    rows.append(
        AblationRow(
            ablation="initialisation",
            variant="seed groups (paper)",
            configuration={"l_real": l_real},
            ari=best_ari,
        )
    )

    best_ari = 0.0
    best_objective = -np.inf
    for _ in range(n_repeats):
        ari, objective = _run_random_init_sspc(
            dataset.data, dataset.labels, n_clusters=n_clusters, m=m, random_state=random_seed_from(rng)
        )
        if objective > best_objective:
            best_objective = objective
            best_ari = ari
    rows.append(
        AblationRow(
            ablation="initialisation",
            variant="random medoids (ablated)",
            configuration={"l_real": l_real},
            ari=best_ari,
        )
    )
    return rows


def _run_random_init_sspc(
    data: np.ndarray,
    true_labels: np.ndarray,
    *,
    n_clusters: int,
    m: float,
    random_state: RandomState,
    max_iterations: int = 15,
) -> tuple:
    """SSPC-style loop initialised with random medoids and all dimensions."""
    rng = ensure_rng(random_state)
    objective = ObjectiveFunction(data, make_threshold(m=m))
    medoids = rng.choice(data.shape[0], size=n_clusters, replace=False)
    states = [
        ClusterState(
            representative=data[int(medoid)].copy(),
            dimensions=np.arange(data.shape[1]),
            members=np.empty(0, dtype=int),
            size_hint=max(data.shape[0] // n_clusters, 2),
        )
        for medoid in medoids
    ]
    best_objective = -np.inf
    best_labels = np.full(data.shape[0], -1, dtype=int)
    for _ in range(max_iterations):
        labels = assign_objects(objective, states)
        members = members_from_labels(labels, n_clusters)
        for state, cluster_members in zip(states, members):
            state.members = cluster_members
            state.dimensions = select_dimensions(objective, cluster_members)
        _, overall = compute_phi_scores(objective, states)
        if overall > best_objective:
            best_objective = overall
            best_labels = labels
        for state in states:
            if state.members.size:
                state.representative = np.median(data[state.members], axis=0)
                state.size_hint = max(state.members.size, 2)
            state.members = np.empty(0, dtype=int)
    return adjusted_rand_index(true_labels, best_labels), best_objective


def run_threshold_scheme_ablation(
    *,
    n_objects: int = 600,
    n_dimensions: int = 100,
    n_clusters: int = 5,
    l_real: int = 10,
    m: float = 0.5,
    p: float = 0.01,
    n_repeats: int = 3,
    random_state: RandomState = None,
) -> List[AblationRow]:
    """A3: m-scheme vs. p-scheme under uniform and Gaussian global populations."""
    rng = ensure_rng(random_state)
    rows: List[AblationRow] = []
    for distribution in ("uniform", "gaussian"):
        dataset = make_projected_clusters(
            n_objects=n_objects,
            n_dimensions=n_dimensions,
            n_clusters=n_clusters,
            avg_cluster_dimensionality=l_real,
            global_distribution=distribution,
            random_state=random_seed_from(rng),
        )
        for variant, kwargs in (("m-scheme", {"m": m}), ("p-scheme", {"p": p})):
            best_ari = 0.0
            best_objective = -np.inf
            for _ in range(n_repeats):
                model = SSPC(
                    n_clusters=n_clusters, random_state=random_seed_from(rng), **kwargs
                ).fit(dataset.data)
                if model.objective_ > best_objective:
                    best_objective = model.objective_
                    best_ari = adjusted_rand_index(dataset.labels, model.labels_)
            rows.append(
                AblationRow(
                    ablation="threshold scheme",
                    variant=variant,
                    configuration={"global_distribution": distribution},
                    ari=best_ari,
                )
            )
    return rows


def format_ablation_table(rows: List[AblationRow]) -> str:
    """Simple aligned table for the ablation benches."""
    lines = ["%-20s %-26s %-32s %8s" % ("ablation", "variant", "configuration", "ARI")]
    for row in rows:
        config = ", ".join("%s=%s" % (k, v) for k, v in row.configuration.items())
        lines.append("%-20s %-26s %-32s %8.3f" % (row.ablation, row.variant, config, row.ari))
    return "\n".join(lines)
