"""Adjusted Rand Index in the pair-counting form used by the paper.

Section 5 of the paper (Eq. 5) evaluates clustering quality with an
Adjusted Rand Index defined over the four pair counts

* ``a`` — object pairs placed together in both the real partition ``U``
  and the produced partition ``V``,
* ``b`` — pairs together in ``U`` but not in ``V``,
* ``c`` — pairs together in ``V`` but not in ``U``,
* ``d`` — pairs separated in both partitions,

as ``ARI = 2(ad - bc) / ((a+b)(b+d) + (a+c)(c+d))``.  The index is 1 for
identical partitions and approximately 0 for a random partition.

The paper cites Yeung & Ruzzo (2001); the formula above is the
Hubert-Arabie adjusted index rewritten in terms of the four pair counts,
so :func:`adjusted_rand_index` and :func:`hubert_arabie_ari` agree
(up to floating point) on every pair of partitions — a property the test
suite checks with hypothesis.

Handling of outliers: the paper places non-clustered objects on an
outlier list.  When comparing against ground truth we follow the usual
convention (also used by the HARP paper) of treating each outlier as a
singleton cluster, so discarding a true cluster member is penalised
through the ``b`` count rather than silently ignored.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.utils.validation import check_membership_labels


def _expand_outliers_to_singletons(labels: np.ndarray) -> np.ndarray:
    """Replace each ``-1`` by a unique fresh label (singleton cluster)."""
    labels = labels.copy()
    next_label = labels.max() + 1 if labels.size else 0
    next_label = max(next_label, 0)
    for index in np.flatnonzero(labels == -1):
        labels[index] = next_label
        next_label += 1
    return labels


def pair_counts(
    true_labels: Sequence[int],
    predicted_labels: Sequence[int],
    *,
    outliers_as_singletons: bool = True,
) -> Tuple[int, int, int, int]:
    """Return the pair counts ``(a, b, c, d)`` defined above.

    Parameters
    ----------
    true_labels, predicted_labels:
        Membership vectors of equal length; ``-1`` marks outliers.
    outliers_as_singletons:
        When ``True`` (default) outliers become singleton clusters before
        counting; when ``False`` objects that are outliers in *either*
        partition are dropped from the comparison.
    """
    true = check_membership_labels(true_labels, len(true_labels), name="true_labels")
    pred = check_membership_labels(predicted_labels, len(predicted_labels), name="predicted_labels")
    if true.shape[0] != pred.shape[0]:
        raise ValueError(
            "label vectors have different lengths: %d vs %d" % (true.shape[0], pred.shape[0])
        )

    if outliers_as_singletons:
        true = _expand_outliers_to_singletons(true)
        pred = _expand_outliers_to_singletons(pred)
    else:
        keep = (true != -1) & (pred != -1)
        true, pred = true[keep], pred[keep]

    n = true.shape[0]
    if n < 2:
        return 0, 0, 0, 0

    # Contingency-table based counting: for every (true cluster, predicted
    # cluster) cell with n_uv objects there are C(n_uv, 2) agreeing pairs.
    true_ids, true_inverse = np.unique(true, return_inverse=True)
    pred_ids, pred_inverse = np.unique(pred, return_inverse=True)
    contingency = np.zeros((true_ids.size, pred_ids.size), dtype=np.int64)
    np.add.at(contingency, (true_inverse, pred_inverse), 1)

    def comb2(values: np.ndarray) -> np.ndarray:
        values = values.astype(np.int64)
        return values * (values - 1) // 2

    same_both = int(comb2(contingency).sum())
    same_true = int(comb2(contingency.sum(axis=1)).sum())
    same_pred = int(comb2(contingency.sum(axis=0)).sum())
    total_pairs = n * (n - 1) // 2

    a = same_both
    b = same_true - same_both
    c = same_pred - same_both
    d = total_pairs - a - b - c
    return a, b, c, d


def adjusted_rand_index(
    true_labels: Sequence[int],
    predicted_labels: Sequence[int],
    *,
    outliers_as_singletons: bool = True,
) -> float:
    """Adjusted Rand Index as defined in Eq. 5 of the paper.

    Returns 1.0 for identical partitions, values near 0.0 for random
    partitions, and may be negative for partitions worse than chance.
    Degenerate cases where the denominator vanishes (e.g. both partitions
    put everything in one cluster) return 1.0 when the partitions agree
    on all pairs and 0.0 otherwise.
    """
    a, b, c, d = pair_counts(
        true_labels, predicted_labels, outliers_as_singletons=outliers_as_singletons
    )
    denominator = (a + b) * (b + d) + (a + c) * (c + d)
    if denominator == 0:
        return 1.0 if (b == 0 and c == 0) else 0.0
    return float(2.0 * (a * d - b * c) / denominator)


def hubert_arabie_ari(
    true_labels: Sequence[int],
    predicted_labels: Sequence[int],
    *,
    outliers_as_singletons: bool = True,
) -> float:
    """Hubert-Arabie ARI computed from the contingency-table formula.

    ``(Index - ExpectedIndex) / (MaxIndex - ExpectedIndex)`` with the
    usual combinatorial expectation.  Provided as an independent
    implementation used by the tests to cross-validate
    :func:`adjusted_rand_index`.
    """
    a, b, c, d = pair_counts(
        true_labels, predicted_labels, outliers_as_singletons=outliers_as_singletons
    )
    total = a + b + c + d
    if total == 0:
        return 1.0
    index = float(a)
    expected = float((a + b) * (a + c)) / total
    maximum = 0.5 * float((a + b) + (a + c))
    if maximum == expected:
        return 1.0 if (b == 0 and c == 0) else 0.0
    return float((index - expected) / (maximum - expected))
