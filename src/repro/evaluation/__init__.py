"""Clustering-quality metrics used throughout the experiments.

The paper evaluates every clustering result with the Adjusted Rand Index
(its Eq. 5 pair-counting form).  This package implements that index plus
the standard Hubert-Arabie ARI, dimension-selection quality metrics,
outlier-detection metrics and a handful of auxiliary indices (purity,
normalised mutual information) that the tests and ablation benches use to
cross-check results.
"""

from repro.evaluation.ari import adjusted_rand_index, hubert_arabie_ari, pair_counts
from repro.evaluation.metrics import (
    clustering_report,
    confusion_matrix,
    dimension_selection_scores,
    normalized_mutual_information,
    outlier_detection_scores,
    purity,
)

__all__ = [
    "adjusted_rand_index",
    "hubert_arabie_ari",
    "pair_counts",
    "clustering_report",
    "confusion_matrix",
    "dimension_selection_scores",
    "normalized_mutual_information",
    "outlier_detection_scores",
    "purity",
]
