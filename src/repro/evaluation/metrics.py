"""Additional clustering-quality metrics.

Besides the Adjusted Rand Index the experiments also report quantities
the paper discusses qualitatively — how accurately the relevant
dimensions were recovered, how many outliers were detected, and standard
cross-check indices (purity, NMI) used by the test suite and ablation
benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.evaluation.ari import adjusted_rand_index
from repro.utils.validation import check_membership_labels


def confusion_matrix(
    true_labels: Sequence[int],
    predicted_labels: Sequence[int],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Contingency table between two label vectors.

    Outliers (``-1``) get their own row / column placed last.

    Returns
    -------
    (matrix, true_ids, predicted_ids)
        ``matrix[i, j]`` counts objects with true label ``true_ids[i]``
        and predicted label ``predicted_ids[j]``.
    """
    true = check_membership_labels(true_labels, len(true_labels), name="true_labels")
    pred = check_membership_labels(predicted_labels, len(predicted_labels), name="predicted_labels")
    if true.shape[0] != pred.shape[0]:
        raise ValueError("label vectors must have equal length")

    def ordered_ids(values: np.ndarray) -> np.ndarray:
        ids = np.unique(values)
        regular = ids[ids >= 0]
        return np.concatenate([regular, ids[ids < 0]])

    true_ids = ordered_ids(true)
    pred_ids = ordered_ids(pred)
    matrix = np.zeros((true_ids.size, pred_ids.size), dtype=int)
    true_pos = {label: row for row, label in enumerate(true_ids)}
    pred_pos = {label: col for col, label in enumerate(pred_ids)}
    for t, p in zip(true, pred):
        matrix[true_pos[int(t)], pred_pos[int(p)]] += 1
    return matrix, true_ids, pred_ids


def purity(true_labels: Sequence[int], predicted_labels: Sequence[int]) -> float:
    """Cluster purity: fraction of objects matching their cluster's majority class.

    Outliers in the prediction count as their own (singleton) clusters,
    so discarding objects cannot inflate purity.
    """
    true = check_membership_labels(true_labels, len(true_labels), name="true_labels")
    pred = check_membership_labels(predicted_labels, len(predicted_labels), name="predicted_labels")
    n = true.shape[0]
    if n == 0:
        return 1.0
    correct = 0
    for cluster in np.unique(pred):
        members = np.flatnonzero(pred == cluster)
        if cluster == -1:
            # each outlier is its own singleton: trivially pure
            correct += members.size
            continue
        member_truth = true[members]
        values, counts = np.unique(member_truth, return_counts=True)
        correct += int(counts.max()) if values.size else 0
    return float(correct / n)


def normalized_mutual_information(
    true_labels: Sequence[int],
    predicted_labels: Sequence[int],
) -> float:
    """Normalised mutual information (arithmetic-mean normalisation).

    Outliers are treated as singleton clusters, consistent with the ARI
    convention used across the library.
    """
    true = check_membership_labels(true_labels, len(true_labels), name="true_labels")
    pred = check_membership_labels(predicted_labels, len(predicted_labels), name="predicted_labels")
    if true.shape[0] != pred.shape[0]:
        raise ValueError("label vectors must have equal length")
    n = true.shape[0]
    if n == 0:
        return 1.0

    def expand(labels: np.ndarray) -> np.ndarray:
        labels = labels.copy()
        next_label = labels.max() + 1 if labels.size else 0
        next_label = max(next_label, 0)
        for index in np.flatnonzero(labels == -1):
            labels[index] = next_label
            next_label += 1
        return labels

    true = expand(true)
    pred = expand(pred)

    def entropy(labels: np.ndarray) -> float:
        _, counts = np.unique(labels, return_counts=True)
        probabilities = counts / n
        return float(-np.sum(probabilities * np.log(probabilities)))

    h_true = entropy(true)
    h_pred = entropy(pred)
    if h_true == 0.0 and h_pred == 0.0:
        return 1.0

    mutual_information = 0.0
    for t in np.unique(true):
        true_mask = true == t
        p_t = true_mask.mean()
        for p in np.unique(pred[true_mask]):
            joint = np.count_nonzero(true_mask & (pred == p)) / n
            p_p = np.count_nonzero(pred == p) / n
            if joint > 0:
                mutual_information += joint * np.log(joint / (p_t * p_p))
    denominator = 0.5 * (h_true + h_pred)
    if denominator == 0.0:
        return 1.0
    return float(mutual_information / denominator)


@dataclass
class DimensionSelectionScores:
    """Precision / recall / F1 of relevant-dimension recovery per cluster."""

    precision: float
    recall: float
    f1: float
    per_cluster: List[Tuple[float, float, float]]


def dimension_selection_scores(
    true_dimensions: Sequence[Sequence[int]],
    predicted_dimensions: Sequence[Sequence[int]],
    *,
    matching: Optional[Sequence[int]] = None,
) -> DimensionSelectionScores:
    """Compare selected dimensions against the true relevant dimensions.

    Parameters
    ----------
    true_dimensions:
        Per true-cluster relevant dimension index lists.
    predicted_dimensions:
        Per produced-cluster selected dimension index lists.
    matching:
        ``matching[i]`` gives the index of the true cluster matched to
        produced cluster ``i``; when omitted clusters are matched
        greedily by Jaccard similarity of their dimension sets.

    Returns
    -------
    DimensionSelectionScores
        Micro-averaged precision/recall/F1 plus per-cluster triples.
    """
    true_sets = [set(int(j) for j in dims) for dims in true_dimensions]
    pred_sets = [set(int(j) for j in dims) for dims in predicted_dimensions]

    if matching is None:
        matching = _greedy_dimension_matching(true_sets, pred_sets)
    else:
        matching = list(matching)
        if len(matching) != len(pred_sets):
            raise ValueError("matching must give one true-cluster index per predicted cluster")

    per_cluster: List[Tuple[float, float, float]] = []
    total_tp = total_fp = total_fn = 0
    for pred_index, true_index in enumerate(matching):
        predicted = pred_sets[pred_index]
        truth = true_sets[true_index] if 0 <= true_index < len(true_sets) else set()
        tp = len(predicted & truth)
        fp = len(predicted - truth)
        fn = len(truth - predicted)
        total_tp += tp
        total_fp += fp
        total_fn += fn
        precision = tp / (tp + fp) if (tp + fp) else 0.0
        recall = tp / (tp + fn) if (tp + fn) else 0.0
        f1 = 2 * precision * recall / (precision + recall) if (precision + recall) else 0.0
        per_cluster.append((precision, recall, f1))

    precision = total_tp / (total_tp + total_fp) if (total_tp + total_fp) else 0.0
    recall = total_tp / (total_tp + total_fn) if (total_tp + total_fn) else 0.0
    f1 = 2 * precision * recall / (precision + recall) if (precision + recall) else 0.0
    return DimensionSelectionScores(
        precision=float(precision), recall=float(recall), f1=float(f1), per_cluster=per_cluster
    )


def _greedy_dimension_matching(true_sets: List[set], pred_sets: List[set]) -> List[int]:
    """Greedy one-to-one matching by Jaccard similarity of dimension sets."""
    matching = [-1] * len(pred_sets)
    available = set(range(len(true_sets)))
    scored: List[Tuple[float, int, int]] = []
    for p_index, predicted in enumerate(pred_sets):
        for t_index, truth in enumerate(true_sets):
            union = len(predicted | truth)
            jaccard = len(predicted & truth) / union if union else 0.0
            scored.append((jaccard, p_index, t_index))
    scored.sort(reverse=True)
    matched_pred: set = set()
    for jaccard, p_index, t_index in scored:
        if p_index in matched_pred or t_index not in available:
            continue
        matching[p_index] = t_index
        matched_pred.add(p_index)
        available.discard(t_index)
    # Unmatched predicted clusters keep -1 (compared against empty truth).
    return matching


@dataclass
class OutlierDetectionScores:
    """Precision / recall / F1 of outlier detection."""

    precision: float
    recall: float
    f1: float
    n_true_outliers: int
    n_predicted_outliers: int


def outlier_detection_scores(
    true_labels: Sequence[int],
    predicted_labels: Sequence[int],
) -> OutlierDetectionScores:
    """Quality of the outlier list (label ``-1``) against ground truth."""
    true = check_membership_labels(true_labels, len(true_labels), name="true_labels")
    pred = check_membership_labels(predicted_labels, len(predicted_labels), name="predicted_labels")
    if true.shape[0] != pred.shape[0]:
        raise ValueError("label vectors must have equal length")
    true_outliers = true == -1
    pred_outliers = pred == -1
    tp = int(np.count_nonzero(true_outliers & pred_outliers))
    fp = int(np.count_nonzero(~true_outliers & pred_outliers))
    fn = int(np.count_nonzero(true_outliers & ~pred_outliers))
    precision = tp / (tp + fp) if (tp + fp) else (1.0 if fn == 0 else 0.0)
    recall = tp / (tp + fn) if (tp + fn) else 1.0
    f1 = 2 * precision * recall / (precision + recall) if (precision + recall) else 0.0
    return OutlierDetectionScores(
        precision=float(precision),
        recall=float(recall),
        f1=float(f1),
        n_true_outliers=int(true_outliers.sum()),
        n_predicted_outliers=int(pred_outliers.sum()),
    )


def clustering_report(
    true_labels: Sequence[int],
    predicted_labels: Sequence[int],
    *,
    true_dimensions: Optional[Sequence[Sequence[int]]] = None,
    predicted_dimensions: Optional[Sequence[Sequence[int]]] = None,
) -> Dict[str, float]:
    """One-call report bundling the metrics used across the experiments."""
    report: Dict[str, float] = {
        "ari": adjusted_rand_index(true_labels, predicted_labels),
        "purity": purity(true_labels, predicted_labels),
        "nmi": normalized_mutual_information(true_labels, predicted_labels),
    }
    outlier_scores = outlier_detection_scores(true_labels, predicted_labels)
    report["outlier_precision"] = outlier_scores.precision
    report["outlier_recall"] = outlier_scores.recall
    if true_dimensions is not None and predicted_dimensions is not None:
        dim_scores = dimension_selection_scores(true_dimensions, predicted_dimensions)
        report["dimension_precision"] = dim_scores.precision
        report["dimension_recall"] = dim_scores.recall
        report["dimension_f1"] = dim_scores.f1
    return report
