"""``python -m repro.server`` — same entry point as ``repro-server``."""

import sys

from repro.server.cli import main

if __name__ == "__main__":
    sys.exit(main())
