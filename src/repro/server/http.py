"""Minimal HTTP/1.1 over :mod:`asyncio` streams.

The daemon hand-rolls exactly the slice of HTTP a JSON prediction
service needs — request line, headers, ``Content-Length`` bodies,
keep-alive — and nothing more (no chunked encoding, no multipart, no
TLS; put a real proxy in front for those).  Keeping the parser this
small matters: under micro-batched load the per-request compute is
amortised to near zero, so request parsing and response rendering *are*
the serving hot path.

Parsing reads the whole header block with one
:meth:`~asyncio.StreamReader.readuntil` call and splits it in memory —
one reader wakeup per request instead of one per header line.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = [
    "HTTPError",
    "HTTPRequest",
    "json_response",
    "read_request",
    "render_response",
]

#: Upper bound on the request-line + headers block.
MAX_HEADER_BYTES = 16 * 1024

_HEADER_TERMINATOR = b"\r\n\r\n"

_STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HTTPError(Exception):
    """A malformed or unacceptable request, mapped to a status code.

    ``headers`` carries whatever request headers had been parsed before
    the failure (empty for request-line errors) so the server can still
    honor an inbound ``X-Request-Id`` on 400/413 responses.
    """

    def __init__(
        self, status: int, message: str, headers: Optional[Dict[str, str]] = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers: Dict[str, str] = headers or {}


@dataclass
class HTTPRequest:
    """One parsed request."""

    method: str
    path: str
    query: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    #: Parsed once from the ``Connection`` header (checked per request
    #: on the hot path, so not a recomputing property).
    keep_alive: bool = True

    def json(self) -> object:
        """The body decoded as JSON (raises :class:`HTTPError` 400)."""
        if not self.body:
            raise HTTPError(400, "request body is empty; expected JSON")
        try:
            return json.loads(self.body)
        except ValueError as exc:
            raise HTTPError(400, "request body is not valid JSON: %s" % exc) from exc


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_body_bytes: int,
) -> Optional[HTTPRequest]:
    """Read one request off ``reader``; ``None`` on a clean EOF.

    Raises :class:`HTTPError` on malformed input and oversized payloads
    (the caller renders the error and may close the connection).
    """
    try:
        head = await reader.readuntil(_HEADER_TERMINATOR)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise HTTPError(400, "connection closed mid-request") from exc
    except asyncio.LimitOverrunError as exc:
        raise HTTPError(413, "request headers exceed %d bytes" % MAX_HEADER_BYTES) from exc

    try:
        request_line, _, header_block = head[:-4].partition(b"\r\n")
        parts = request_line.decode("latin-1").split(" ")
        if len(parts) != 3:
            raise ValueError("bad request line")
        method, target, version = parts
        if not version.startswith("HTTP/1."):
            raise ValueError("unsupported protocol %r" % version)
    except ValueError as exc:
        raise HTTPError(400, "malformed request line: %s" % exc) from exc

    headers: Dict[str, str] = {}
    for raw_line in header_block.split(b"\r\n"):
        if not raw_line:
            continue
        name, sep, value = raw_line.decode("latin-1").partition(":")
        if not sep:
            raise HTTPError(400, "malformed header line %r" % raw_line[:80], headers)
        headers[name.strip().lower()] = value.strip()

    path, _, query = target.partition("?")

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise HTTPError(400, "invalid Content-Length", headers) from exc
        if length < 0:
            raise HTTPError(400, "invalid Content-Length", headers)
        if length > max_body_bytes:
            raise HTTPError(
                413, "request body exceeds %d bytes" % max_body_bytes, headers
            )
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise HTTPError(400, "connection closed mid-body", headers) from exc
    elif headers.get("transfer-encoding"):
        raise HTTPError(400, "chunked request bodies are not supported", headers)

    return HTTPRequest(
        method=method,
        path=path,
        query=query,
        headers=headers,
        body=body,
        keep_alive=headers.get("connection", "keep-alive").lower() != "close",
    )


# Precomputed header block for the dominant response shape (200,
# application/json, keep-alive).  Response rendering is on the serving
# hot path; the generic string-building branch below costs a few µs a
# request, which is material once the kernel is batch-amortized.
_FAST_200_PREFIX = (
    b"HTTP/1.1 200 OK\r\n"
    b"Content-Type: application/json\r\n"
    b"Content-Length: "
)


def render_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: Optional[Tuple[Tuple[str, str], ...]] = None,
    request_id: Optional[str] = None,
) -> bytes:
    """Render one complete HTTP/1.1 response as bytes.

    ``request_id`` becomes an ``X-Request-Id`` header; the dominant
    200/json/keep-alive shape keeps its precomputed fast path with and
    without one.
    """
    if (
        status == 200
        and keep_alive
        and extra_headers is None
        and content_type == "application/json"
    ):
        if request_id is None:
            return (
                _FAST_200_PREFIX
                + b"%d\r\nConnection: keep-alive\r\n\r\n" % len(body)
                + body
            )
        return (
            _FAST_200_PREFIX
            + b"%d\r\nX-Request-Id: %s\r\nConnection: keep-alive\r\n\r\n"
            % (len(body), request_id.encode("latin-1"))
            + body
        )
    phrase = _STATUS_PHRASES.get(status, "Unknown")
    lines = [
        "HTTP/1.1 %d %s" % (status, phrase),
        "Content-Type: %s" % content_type,
        "Content-Length: %d" % len(body),
        "Connection: %s" % ("keep-alive" if keep_alive else "close"),
    ]
    if request_id is not None:
        lines.append("X-Request-Id: %s" % request_id)
    if extra_headers:
        for name, value in extra_headers:
            lines.append("%s: %s" % (name, value))
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_response(
    payload: object,
    *,
    status: int = 200,
    keep_alive: bool = True,
    request_id: Optional[str] = None,
) -> bytes:
    """Render ``payload`` as a JSON response.

    Non-finite floats are emitted as ``Infinity`` / ``-Infinity`` /
    ``NaN`` tokens (Python's JSON dialect) — ``/predict_soft`` gain
    padding is ``-inf`` by contract and clients of this daemon parse it
    back exactly.
    """
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return render_response(status, body, keep_alive=keep_alive, request_id=request_id)
