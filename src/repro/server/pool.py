"""Compute backends for the serving daemon: in-process or a worker-process pool.

Both backends expose the same ``async`` surface (``predict`` /
``predict_soft`` / ``partial_update`` / ``reload_replicas``) so the
application layer does not care where the kernel runs:

* :class:`InProcessBackend` (``workers=0``) holds one
  :class:`~repro.serving.index.ProjectedClusterIndex` and runs every
  kernel call on a single dedicated compute thread — the event loop
  keeps parsing requests while numpy works, and one thread means the
  index needs no locking.
* :class:`WorkerPoolBackend` (``workers >= 1``) forks N worker
  processes that each map the *same* artifact
  (``load_artifact(..., mmap_mode="r")`` → one set of physical pages
  machine-wide) and build a zero-copy index over it
  (``copy_arrays=False``).  Requests round-robin across idle workers
  over pipes; each worker handles one message at a time, so a worker's
  index is never touched concurrently.

Ownership (the write path)
--------------------------
``partial_update`` mutates serving state, and replicas that fold
independently would diverge.  The pool routes **every fold through
worker 0 — the owner**.  The owner applies the fold, persists its
post-fold state as a fresh artifact *generation* (crash-safe via the
artifact's atomic save), and the parent then tells every replica to
drop its index and rebuild from the new generation — again via mmap, so
the rebroadcast costs page-cache references, not copies.  An index
rebuilt from an exported artifact serves bit-identically to its source
(the ``export_artifact`` contract), so after the rebroadcast every
worker answers ``/predict`` with the exact same labels.  In-flight
predicts racing a rebroadcast simply finish on the generation their
worker held when they arrived — the response's ``generation`` tag says
which.

A worker that dies (OOM, kill) poisons only the requests in flight on
it; the handle is marked dead and routing skips it.  The pool never
respawns silently — ``/healthz`` reports live worker counts and an
operator (or orchestrator) restarts the daemon.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import threading
import traceback
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro import obs
from repro.serving.artifact import load_artifact
from repro.serving.index import ProjectedClusterIndex
from repro.serving.npz_mmap import CompressedMemberError

PathLike = Union[str, Path]

__all__ = [
    "BackendError",
    "InProcessBackend",
    "WorkerPoolBackend",
    "build_serving_index",
    "make_backend",
]

#: Seconds a pipe round trip may take before the worker is declared hung.
DEFAULT_CALL_TIMEOUT_S = 120.0


class BackendError(RuntimeError):
    """A compute backend failed to answer (worker error, crash or hang)."""


def build_serving_index(
    artifact_path: PathLike,
    *,
    center: str = "median",
    mmap_mode: Optional[str] = "r",
    kernel_backend: Optional[str] = None,
) -> ProjectedClusterIndex:
    """Build the daemon's index over an artifact, preferring the mmap path.

    Artifacts written before the uncompressed-NPZ schema cannot be
    mapped; they fall back to the eager load (with an ``obs`` event so
    the fallback is visible in traces) instead of failing the boot.
    ``kernel_backend`` selects the index's assignment-kernel backend
    (a :mod:`repro.core.backends` name); each worker resolves it
    post-fork, so pool workers never share kernel workspaces.
    """
    if mmap_mode is None:
        return ProjectedClusterIndex(
            load_artifact(artifact_path), center=center, backend=kernel_backend
        )
    try:
        artifact = load_artifact(artifact_path, mmap_mode=mmap_mode)
    except CompressedMemberError:
        obs.event("mmap_fallback", path=str(artifact_path))
        return ProjectedClusterIndex(
            load_artifact(artifact_path), center=center, backend=kernel_backend
        )
    return ProjectedClusterIndex(
        artifact, center=center, copy_arrays=False, backend=kernel_backend
    )


# ---------------------------------------------------------------------- #
# worker process
# ---------------------------------------------------------------------- #
def _apply_partial_update(
    index: ProjectedClusterIndex,
    points: np.ndarray,
    labels: Optional[np.ndarray],
    save_to: Optional[str],
) -> Tuple[np.ndarray, int]:
    """Fold points into ``index``; persist the post-fold generation if asked."""
    before = index.n_points_absorbed
    applied = index.partial_update(points, labels)
    absorbed = index.n_points_absorbed - before
    if save_to is not None:
        index.export_artifact().save(save_to)
    return applied, int(absorbed)


def _traced_predict(
    index: ProjectedClusterIndex, points: np.ndarray
) -> Tuple[np.ndarray, dict]:
    """Predict under a private recorder; return ``(labels, recorder state)``.

    The recorder is local to this call (the global hooks are untouched,
    so enabled/disabled bit-identity contracts hold) and its exported
    state rides back over the pool pipe for the serving telemetry to
    merge into the originating request's trace via ``Recorder.ingest``.
    """
    recorder = obs.Recorder()
    with recorder.span(
        "worker.predict", category="server", rows=int(points.shape[0])
    ):
        labels = index.predict(points)
    return labels, recorder.export_state()


def _worker_main(
    conn,
    artifact_path: str,
    center: str,
    mmap_mode: Optional[str],
    kernel_backend: Optional[str] = None,
) -> None:
    """Run one pool worker: build the index, answer ops until ``stop``.

    Messages are ``(op, *args)`` tuples; replies are ``("ok", payload)``
    or ``("error", type, message, traceback)``.  One message at a time,
    by construction — the parent holds a per-worker lock.
    """
    try:
        index = build_serving_index(
            artifact_path, center=center, mmap_mode=mmap_mode,
            kernel_backend=kernel_backend,
        )
        conn.send(("ok", {"n_clusters": index.n_clusters, "n_dimensions": index.n_dimensions}))
    except BaseException as exc:
        conn.send(("error", type(exc).__name__, str(exc), traceback.format_exc()))
        return
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        op = message[0]
        try:
            if op == "predict":
                payload = index.predict(message[1])
            elif op == "predict_t":
                payload = _traced_predict(index, message[1])
            elif op == "predict_soft":
                labels, clusters, gains = index.top_assignments(message[1], message[2])
                payload = (labels, clusters, gains)
            elif op == "partial_update":
                payload = _apply_partial_update(index, message[1], message[2], message[3])
            elif op == "reload":
                index = build_serving_index(
                    message[1], center=center, mmap_mode=mmap_mode,
                    kernel_backend=kernel_backend,
                )
                payload = {"n_clusters": index.n_clusters}
            elif op == "info":
                payload = {
                    "n_clusters": index.n_clusters,
                    "n_dimensions": index.n_dimensions,
                    "n_points_absorbed": int(index.n_points_absorbed),
                }
            elif op == "stop":
                conn.send(("ok", None))
                break
            else:
                raise ValueError("unknown worker op %r" % (op,))
            conn.send(("ok", payload))
        except BaseException as exc:
            conn.send(("error", type(exc).__name__, str(exc), traceback.format_exc()))


class _WorkerHandle:
    """Parent-side view of one worker process."""

    def __init__(self, position: int, process, conn) -> None:
        self.position = position
        self.process = process
        self.conn = conn
        self.alock = asyncio.Lock()  # event-loop side: one op in flight
        self._io_lock = threading.Lock()  # executor side: pipe is not thread-safe
        self.alive = True

    def roundtrip_boot(self, timeout: float) -> object:
        """Receive the worker's boot report (no request message to send)."""
        with self._io_lock:
            if not self.conn.poll(timeout):
                self.alive = False
                raise BackendError(
                    "worker %d did not boot within %.0fs" % (self.position, timeout)
                )
            try:
                reply = self.conn.recv()
            except (EOFError, OSError) as exc:
                self.alive = False
                raise BackendError(
                    "worker %d died during boot: %s" % (self.position, exc)
                ) from exc
        if reply[0] == "ok":
            return reply[1]
        _, kind, msg, tb = reply
        self.alive = False
        raise BackendError(
            "worker %d failed to boot: %s: %s\n%s" % (self.position, kind, msg, tb)
        )

    def roundtrip(self, message, timeout: float) -> object:
        """Blocking send + recv (runs on an executor thread)."""
        with self._io_lock:
            try:
                self.conn.send(message)
                if not self.conn.poll(timeout):
                    self.alive = False
                    raise BackendError(
                        "worker %d did not answer %r within %.0fs"
                        % (self.position, message[0], timeout)
                    )
                reply = self.conn.recv()
            except (EOFError, OSError, BrokenPipeError) as exc:
                self.alive = False
                raise BackendError(
                    "worker %d died during %r: %s" % (self.position, message[0], exc)
                ) from exc
        if reply[0] == "ok":
            return reply[1]
        _, kind, msg, tb = reply
        raise BackendError("worker %d failed %r: %s: %s\n%s" % (self.position, message[0], kind, msg, tb))


# ---------------------------------------------------------------------- #
# backends
# ---------------------------------------------------------------------- #
class InProcessBackend:
    """``workers=0``: the index lives in the daemon process itself.

    All kernel calls run on one dedicated thread, so the event loop
    stays responsive during compute and the index sees no concurrency.
    """

    n_workers = 0

    def __init__(
        self,
        artifact_path: PathLike,
        *,
        center: str = "median",
        mmap_mode: Optional[str] = "r",
        kernel_backend: Optional[str] = None,
    ) -> None:
        self.artifact_path = str(artifact_path)
        self.center = center
        self.mmap_mode = mmap_mode
        self.kernel_backend = kernel_backend
        self._index: Optional[ProjectedClusterIndex] = None
        self._compute = ThreadPoolExecutor(max_workers=1, thread_name_prefix="repro-serve")

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._index = await loop.run_in_executor(
            self._compute,
            lambda: build_serving_index(
                self.artifact_path, center=self.center, mmap_mode=self.mmap_mode,
                kernel_backend=self.kernel_backend,
            ),
        )

    async def stop(self) -> None:
        self._compute.shutdown(wait=False)

    @property
    def index(self) -> ProjectedClusterIndex:
        if self._index is None:
            raise BackendError("backend is not started")
        return self._index

    @property
    def alive_workers(self) -> int:
        return 1 if self._index is not None else 0

    @property
    def parallelism(self) -> int:
        """One compute thread — one flush can make progress at a time."""
        return 1

    def describe(self) -> dict:
        return {
            "workers": 0,
            "n_clusters": self.index.n_clusters,
            "n_dimensions": self.index.n_dimensions,
        }

    async def _run(self, fn, *args):
        return await asyncio.get_running_loop().run_in_executor(self._compute, fn, *args)

    async def predict(self, points: np.ndarray) -> np.ndarray:
        return await self._run(self.index.predict, points)

    async def predict_traced(self, points: np.ndarray) -> Tuple[np.ndarray, dict]:
        """Like :meth:`predict`, plus the kernel-side recorder state."""
        return await self._run(_traced_predict, self.index, points)

    async def predict_soft(self, points: np.ndarray, top_m: int):
        return await self._run(self.index.top_assignments, points, top_m)

    async def partial_update(
        self,
        points: np.ndarray,
        labels: Optional[np.ndarray],
        save_to: Optional[str],
    ) -> Tuple[np.ndarray, int]:
        return await self._run(_apply_partial_update, self.index, points, labels, save_to)

    async def reload_replicas(self, path: str) -> None:
        """No replicas: the owner is the only index."""


class WorkerPoolBackend:
    """N worker processes sharing one mmap'd artifact; worker 0 owns writes."""

    def __init__(
        self,
        artifact_path: PathLike,
        *,
        n_workers: int,
        center: str = "median",
        mmap_mode: Optional[str] = "r",
        kernel_backend: Optional[str] = None,
        call_timeout_s: float = DEFAULT_CALL_TIMEOUT_S,
    ) -> None:
        if n_workers < 1:
            raise ValueError("WorkerPoolBackend needs at least 1 worker")
        self.artifact_path = str(artifact_path)
        self.n_workers = int(n_workers)
        self.center = center
        self.mmap_mode = mmap_mode
        self.kernel_backend = kernel_backend
        self.call_timeout_s = float(call_timeout_s)
        self._handles: List[_WorkerHandle] = []
        self._rr = 0
        self._info: dict = {}

    async def start(self) -> None:
        # Fork shares the parent's page cache references immediately;
        # spawn (macOS/Windows) re-imports and re-maps, same sharing.
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX
            context = multiprocessing.get_context("spawn")
        loop = asyncio.get_running_loop()
        for position in range(self.n_workers):
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_worker_main,
                args=(child_conn, self.artifact_path, self.center, self.mmap_mode,
                      self.kernel_backend),
                daemon=True,
                name="repro-server-worker-%d" % position,
            )
            process.start()
            child_conn.close()
            handle = _WorkerHandle(position, process, parent_conn)
            # The worker's first message is its boot report.
            self._info = await loop.run_in_executor(
                None, handle.roundtrip_boot, self.call_timeout_s
            )
            self._handles.append(handle)

    async def stop(self) -> None:
        loop = asyncio.get_running_loop()
        for handle in self._handles:
            if not handle.alive:
                continue
            try:
                async with handle.alock:
                    await loop.run_in_executor(None, handle.roundtrip, ("stop",), 5.0)
            except BackendError:
                pass
        for handle in self._handles:
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5.0)
            if handle.process.is_alive():  # pragma: no cover - last resort
                handle.process.kill()
                handle.process.join(timeout=5.0)

    @property
    def alive_workers(self) -> int:
        return sum(1 for handle in self._handles if handle.alive)

    @property
    def parallelism(self) -> int:
        """One flush per live worker can be in flight at once."""
        return max(1, self.alive_workers)

    @property
    def owner(self) -> _WorkerHandle:
        return self._handles[0]

    def describe(self) -> dict:
        return {
            "workers": self.n_workers,
            "alive_workers": self.alive_workers,
            **self._info,
        }

    def _pick(self) -> _WorkerHandle:
        """An idle live worker if any, else round-robin over live workers."""
        live = [handle for handle in self._handles if handle.alive]
        if not live:
            raise BackendError("no live workers")
        for handle in live:
            if not handle.alock.locked():
                return handle
        self._rr = (self._rr + 1) % len(live)
        return live[self._rr]

    async def _call(self, handle: _WorkerHandle, message) -> object:
        loop = asyncio.get_running_loop()
        async with handle.alock:
            return await loop.run_in_executor(
                None, handle.roundtrip, message, self.call_timeout_s
            )

    async def predict(self, points: np.ndarray) -> np.ndarray:
        return await self._call(self._pick(), ("predict", points))

    async def predict_traced(self, points: np.ndarray) -> Tuple[np.ndarray, dict]:
        """Like :meth:`predict`, plus the worker-side recorder state."""
        return await self._call(self._pick(), ("predict_t", points))

    async def predict_soft(self, points: np.ndarray, top_m: int):
        return await self._call(self._pick(), ("predict_soft", points, top_m))

    async def partial_update(
        self,
        points: np.ndarray,
        labels: Optional[np.ndarray],
        save_to: Optional[str],
    ) -> Tuple[np.ndarray, int]:
        """Fold through the single owner (worker 0)."""
        if not self.owner.alive:
            raise BackendError("owner worker is dead; the write path is unavailable")
        applied, absorbed = await self._call(
            self.owner, ("partial_update", points, labels, save_to)
        )
        return applied, absorbed

    async def reload_replicas(self, path: str) -> None:
        """Point every replica (not the owner) at a new artifact generation."""
        tasks = [
            self._call(handle, ("reload", path))
            for handle in self._handles[1:]
            if handle.alive
        ]
        if tasks:
            results = await asyncio.gather(*tasks, return_exceptions=True)
            for result in results:
                if isinstance(result, BaseException):
                    obs.event("replica_reload_failed", error=str(result))


def make_backend(
    artifact_path: PathLike,
    *,
    n_workers: int,
    center: str = "median",
    mmap_mode: Optional[str] = "r",
    kernel_backend: Optional[str] = None,
) -> Union[InProcessBackend, WorkerPoolBackend]:
    """The backend the configuration asks for (``n_workers=0`` → in-process)."""
    if n_workers == 0:
        return InProcessBackend(
            artifact_path, center=center, mmap_mode=mmap_mode,
            kernel_backend=kernel_backend,
        )
    return WorkerPoolBackend(
        artifact_path, n_workers=n_workers, center=center, mmap_mode=mmap_mode,
        kernel_backend=kernel_backend,
    )
