"""``repro-server`` — boot the serving daemon from a shell.

Usage::

    repro-server artifacts/expr-v1 --port 8757 --workers 2

Prints one ``READY host=... port=...`` line to stdout once the listener
is bound (CI's daemon smoke test waits for it), then serves until
SIGINT/SIGTERM.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import Optional, Sequence

from repro.core.backends import BACKEND_NAMES
from repro.server.app import PredictServer, ServerConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-server",
        description="Serve a saved ModelArtifact over HTTP with micro-batched predicts.",
    )
    parser.add_argument("artifact", help="artifact directory (MANIFEST.json + arrays.npz)")
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default %(default)s)")
    parser.add_argument(
        "--port", type=int, default=8757, help="bind port, 0 for ephemeral (default %(default)s)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes sharing the mmap'd artifact; 0 serves in-process (default)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=64, help="micro-batcher flush size (default %(default)s)"
    )
    parser.add_argument(
        "--max-wait-us",
        type=float,
        default=2000.0,
        help="micro-batcher max coalescing wait in microseconds (default %(default)s)",
    )
    parser.add_argument(
        "--no-adaptive",
        action="store_true",
        help="always wait --max-wait-us instead of adapting to observed concurrency",
    )
    parser.add_argument(
        "--center",
        default="median",
        choices=("median", "mean"),
        help="assignment center (default %(default)s)",
    )
    parser.add_argument(
        "--kernel-backend",
        default=None,
        choices=BACKEND_NAMES,
        help="assignment-kernel backend the workers run on "
             "(default: $REPRO_ASSIGNMENT_BACKEND or reference)",
    )
    parser.add_argument(
        "--no-mmap",
        action="store_true",
        help="load the artifact eagerly instead of memory-mapping it",
    )
    parser.add_argument(
        "--state-dir",
        default=None,
        help="where partial_update generations are persisted (default: private tempdir)",
    )
    parser.add_argument(
        "--slo-availability-target",
        type=float,
        default=0.999,
        help="fraction of requests that must not be 5xx (default %(default)s)",
    )
    parser.add_argument(
        "--slo-latency-budget-ms",
        type=float,
        default=250.0,
        help="per-request latency budget in milliseconds (default %(default)s)",
    )
    parser.add_argument(
        "--slo-latency-target",
        type=float,
        default=0.99,
        help="fraction of requests that must meet the latency budget (default %(default)s)",
    )
    return parser


async def _run(config: ServerConfig, artifact: str) -> int:
    server = PredictServer(artifact, config)
    host, port = await server.start()
    print("READY host=%s port=%d workers=%d" % (host, port, config.workers), flush=True)
    loop = asyncio.get_running_loop()
    stop_event = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop_event.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
    try:
        await stop_event.wait()
    finally:
        await server.stop()
    print("STOPPED", flush=True)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_batch=args.max_batch,
        max_wait_us=args.max_wait_us,
        adaptive_batching=not args.no_adaptive,
        center=args.center,
        kernel_backend=args.kernel_backend,
        mmap_mode=None if args.no_mmap else "r",
        state_dir=args.state_dir,
        slo_availability_target=args.slo_availability_target,
        slo_latency_budget_ms=args.slo_latency_budget_ms,
        slo_latency_target=args.slo_latency_target,
    )
    try:
        return asyncio.run(_run(config, args.artifact))
    except KeyboardInterrupt:  # pragma: no cover - direct Ctrl-C fallback
        return 130


if __name__ == "__main__":
    sys.exit(main())
