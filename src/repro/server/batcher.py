"""Adaptive micro-batching: coalesce single-point requests into one kernel call.

The batch assignment kernel scores points roughly an order of magnitude
cheaper than the scalar path (PR 2 measured ~16x), so the cheapest
throughput a daemon can buy is to *stack concurrent requests*: every
single-point ``/predict`` that arrives while another is in flight rides
the same ``(n, d)`` matrix through one blocked-kernel
:meth:`~repro.serving.index.ProjectedClusterIndex.predict`.  Results are
bit-identical by construction — the grouped batch kernel equals the
single-point kernel row for row, a contract the serving tests already
pin down.

Flush policy
------------
A batch is flushed when the first of these fires:

* **full** — ``max_batch`` requests are pending;
* **quiesce** — one event-loop pass completed without a new submission.
  Every request that was reachable (parsed off a socket buffer) has
  joined the batch; waiting longer can only add latency, never batch
  size.  This is what makes the batcher *adaptive*: a lone request
  flushes on the very next pass (scalar-path latency, no timer), while
  a flood of N concurrent connections yields batches of ~N without any
  tuned wait.
* **timeout** — the oldest pending request has waited ``max_wait_us``.
  The hard upper bound for trickle traffic, where one new arrival per
  pass keeps deferring the quiesce check.
* **chained** — a previous flush just completed and requests queued up
  behind it.
* **drain** — the server is shutting down.

Self-clocking
-------------
Flushes are *busy-gated*: while ``max_concurrency`` flushes are in
flight (one per backend worker; one for the in-process executor),
quiesce and timeout triggers hold their batch instead of launching a
flush that would only queue behind the busy kernel as a fragment.
When a flush completes, everything that accumulated behind it is
flushed as one **chained** batch.  Batch size therefore self-adapts to
``arrival rate x service time`` with no tuning — the steady-state
behaviour every production batcher converges on.  Only **full**
(bounds batch size) and **drain** (shutdown) bypass the gate.

``adaptive=False`` disables the quiesce check and always waits
``max_wait_us`` — the classic fixed-wait batcher, kept for A/B
comparison and tests.

Instrumented with :mod:`repro.obs` (``server.batch_size`` /
``server.queue_wait_us`` histograms, ``server.flush.<reason>``
counters) and mirrored into a local :class:`BatcherStats` so
``/metrics`` works without a recorder installed.
"""

from __future__ import annotations

import asyncio
import inspect
import itertools
from typing import Awaitable, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.obs.histogram import LogHistogram, log_bounds

__all__ = ["BatcherStats", "MicroBatcher"]

#: Flush reasons, in the order they are reported.
FLUSH_REASONS = ("full", "quiesce", "timeout", "chained", "drain")

#: Fixed bucket bounds for the always-on batcher histograms — shared
#: with the Prometheus exposition, which requires stable boundaries.
BATCH_SIZE_BOUNDS = log_bounds(1.0, 4096.0, per_decade=10)
QUEUE_WAIT_BOUNDS_US = log_bounds(1.0, 6e7, per_decade=5)


def _accepts_meta(flush_fn: Callable) -> bool:
    """Does ``flush_fn`` take a second positional ``meta`` parameter?

    Determined once at construction; unintrospectable callables are
    treated as the classic single-argument shape.
    """
    try:
        parameters = inspect.signature(flush_fn).parameters
    except (TypeError, ValueError):
        return False
    positional = [
        p
        for p in parameters.values()
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ]
    return len(positional) >= 2


class BatcherStats:
    """Running counters the ``/metrics`` endpoint reports.

    Batch sizes and queue waits aggregate into fixed-boundary
    :class:`~repro.obs.histogram.LogHistogram` s — O(#buckets) memory
    under unbounded traffic (the previous implementation kept raw
    sample rings and re-sorted them per snapshot).  ``snapshot()`` keys
    are unchanged; counts/means/maxima stay exact, percentiles become
    bucket-interpolated estimates.
    """

    def __init__(self) -> None:
        self.n_submitted = 0
        self.n_flushes = 0
        self.flush_reasons: Dict[str, int] = {reason: 0 for reason in FLUSH_REASONS}
        self.batch_size = LogHistogram(BATCH_SIZE_BOUNDS)
        self.queue_wait_us = LogHistogram(QUEUE_WAIT_BOUNDS_US)

    def record_flush(self, reason: str, size: int, waits_us: Sequence[float]) -> None:
        self.n_flushes += 1
        self.flush_reasons[reason] = self.flush_reasons.get(reason, 0) + 1
        self.batch_size.observe(float(size))
        for wait in waits_us:
            self.queue_wait_us.observe(float(wait))

    def snapshot(self) -> Dict[str, object]:
        summary: Dict[str, object] = {
            "n_submitted": self.n_submitted,
            "n_flushes": self.n_flushes,
            "flush_reasons": dict(self.flush_reasons),
        }
        if self.batch_size.count:
            summary["mean_batch_size"] = self.batch_size.sum / self.batch_size.count
            summary["p50_batch_size"] = self.batch_size.quantile(0.50)
            summary["max_batch_size"] = int(self.batch_size.max)
            summary["n_batched"] = int(self.batch_size.sum)
        if self.queue_wait_us.count:
            summary["p50_queue_wait_us"] = self.queue_wait_us.quantile(0.50)
            summary["p99_queue_wait_us"] = self.queue_wait_us.quantile(0.99)
        return summary


class MicroBatcher:
    """Coalesce awaitable single-item submissions into batched flushes.

    Parameters
    ----------
    flush_fn:
        ``async (points: (n, d) ndarray) -> sequence of n results``.
        Called once per flush; result ``i`` resolves submission ``i``.
        Multiple flushes may be in flight at once (the worker pool
        provides the parallelism); ordering *within* a flush is
        preserved, which is all bit-identity needs.  A flush function
        accepting a second positional parameter instead receives
        ``(points, meta)`` where ``meta`` carries ``batch_id``,
        ``reason`` and ``size`` — the serving telemetry uses this to
        link flushes back to the requests that rode them.
    max_batch:
        Flush immediately at this many pending requests.
    max_wait_us:
        Upper bound on how long the oldest pending request may wait
        before the deadline timer flushes regardless.
    adaptive:
        Enable the quiesce flush (see module docstring).  ``False``
        always waits the full ``max_wait_us``.
    max_concurrency:
        How many flushes may be in flight at once before the busy gate
        holds new ones — one per kernel that can actually run in
        parallel (``backend.parallelism``).
    """

    def __init__(
        self,
        flush_fn: Callable[[np.ndarray], Awaitable[Sequence[object]]],
        *,
        max_batch: int = 64,
        max_wait_us: float = 2000.0,
        adaptive: bool = True,
        max_concurrency: int = 1,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_wait_us < 0:
            raise ValueError("max_wait_us may not be negative")
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be at least 1")
        self.flush_fn = flush_fn
        self.max_batch = int(max_batch)
        self.max_wait_us = float(max_wait_us)
        self.adaptive = bool(adaptive)
        self.max_concurrency = int(max_concurrency)
        self.stats = BatcherStats()
        self._wants_meta = _accepts_meta(flush_fn)
        self._batch_ids = itertools.count(1)
        self._pending: List[
            Tuple[np.ndarray, "asyncio.Future", float, Optional[Dict[str, object]]]
        ] = []
        self._flush_tasks: set = set()  # strong refs; asyncio keeps only weak ones
        self._timer: Optional[asyncio.TimerHandle] = None
        self._inflight = 0
        #: Epoch counter: bumped on every flush so stale quiesce checks
        #: and deadline timers from an already-flushed batch are inert.
        self._epoch = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    @property
    def depth(self) -> int:
        """Currently pending (not yet flushed) submissions."""
        return len(self._pending)

    async def submit(
        self, point: np.ndarray, ticket: Optional[Dict[str, object]] = None
    ) -> object:
        """Enqueue one point; resolves with its row of the flushed result.

        If ``ticket`` (a mutable dict) is given, the flush that serves
        this submission writes its attribution into it before the
        result resolves: ``batch_id``, ``batch_size``, ``flush_reason``,
        ``queue_wait_us``, ``kernel_s`` and ``flush_start_s`` (absolute
        ``obs.monotonic`` coordinates).
        """
        if self._closed:
            raise RuntimeError("batcher is closed")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((point, future, obs.monotonic(), ticket))
        self.stats.n_submitted += 1
        if len(self._pending) >= self.max_batch:
            self._launch_flush("full")
        elif len(self._pending) == 1:
            # First of a new batch: arm the hard deadline, and (adaptive)
            # start the quiesce watch on the next loop pass.
            self._timer = loop.call_later(
                self.max_wait_us / 1e6, self._deadline_fired, self._epoch
            )
            if self.adaptive:
                loop.call_soon(self._quiesce_check, self._epoch, len(self._pending))
        return await future

    async def drain(self) -> None:
        """Flush whatever is pending (shutdown path)."""
        self._closed = True
        if self._pending:
            await self._flush("drain")

    # ------------------------------------------------------------------ #
    # flush triggers
    # ------------------------------------------------------------------ #
    def _quiesce_check(self, epoch: int, last_depth: int) -> None:
        if epoch != self._epoch or not self._pending:
            return  # batch already flushed by full/timeout/drain
        if self._inflight >= self.max_concurrency:
            return  # busy gate: the completing flush will chain us
        if len(self._pending) == last_depth:
            self._launch_flush("quiesce")
        else:
            # Still growing: look again after the next loop pass.
            asyncio.get_running_loop().call_soon(
                self._quiesce_check, epoch, len(self._pending)
            )

    def _deadline_fired(self, epoch: int) -> None:
        if epoch != self._epoch or not self._pending:
            return
        if self._inflight >= self.max_concurrency:
            return  # busy gate: the completing flush will chain us
        self._launch_flush("timeout")

    def _launch_flush(self, reason: str) -> None:
        task = asyncio.get_running_loop().create_task(self._flush(reason))
        self._flush_tasks.add(task)
        task.add_done_callback(self._flush_tasks.discard)

    def _flush_completed(self) -> None:
        self._inflight -= 1
        if self._pending and not self._closed and self._inflight < self.max_concurrency:
            # Everything that queued up behind the busy kernel goes out
            # as one batch — the self-clocking path.
            self._launch_flush("chained")

    async def _flush(self, reason: str) -> None:
        # Take at most max_batch rows: a same-pass burst can enqueue
        # more than max_batch before the first "full" flush task runs.
        batch = self._pending[: self.max_batch]
        if not batch:
            return
        self._pending = self._pending[self.max_batch :]
        self._epoch += 1
        self._inflight += 1
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._pending:
            # Re-arm for the remainder, deadline relative to its oldest
            # entry (their original timer died with the old epoch).
            loop = asyncio.get_running_loop()
            elapsed_us = (obs.monotonic() - self._pending[0][2]) * 1e6
            self._timer = loop.call_later(
                max(0.0, self.max_wait_us - elapsed_us) / 1e6,
                self._deadline_fired,
                self._epoch,
            )
            if self.adaptive:
                loop.call_soon(self._quiesce_check, self._epoch, len(self._pending))
        now = obs.monotonic()
        waits_us = [(now - enqueued) * 1e6 for _, _, enqueued, _ in batch]
        size = len(batch)
        batch_id = next(self._batch_ids)
        self.stats.record_flush(reason, size, waits_us)
        recorder = obs.get_recorder()
        if recorder is not None:
            recorder.observe("server.batch_size", float(size))
            for wait in waits_us:
                recorder.observe("server.queue_wait_us", wait)
            recorder.incr("server.flush.%s" % reason)

        def _fill_tickets(kernel_s: float) -> None:
            for (_, _, _, ticket), wait in zip(batch, waits_us):
                if ticket is not None:
                    ticket.update(
                        batch_id=batch_id,
                        batch_size=size,
                        flush_reason=reason,
                        queue_wait_us=wait,
                        kernel_s=kernel_s,
                        flush_start_s=now,
                    )

        try:
            try:
                with obs.span("server.flush", category="server") as flush_span:
                    points = np.stack([point for point, _, _, _ in batch])
                    if self._wants_meta:
                        results = await self.flush_fn(
                            points, {"batch_id": batch_id, "reason": reason, "size": size}
                        )
                    else:
                        results = await self.flush_fn(points)
                    flush_span.set(rows=size, reason=reason, batch_id=batch_id)
            except Exception as exc:  # propagate to every waiter
                _fill_tickets(obs.monotonic() - now)
                for _, future, _, _ in batch:
                    if not future.done():
                        future.set_exception(exc)
                return
            _fill_tickets(obs.monotonic() - now)
            if len(results) != size:
                error = RuntimeError(
                    "flush_fn returned %d results for %d submissions" % (len(results), size)
                )
                for _, future, _, _ in batch:
                    if not future.done():
                        future.set_exception(error)
                return
            for (_, future, _, _), result in zip(batch, results):
                if not future.done():
                    future.set_result(result)
        finally:
            self._flush_completed()
