"""Adaptive micro-batching: coalesce single-point requests into one kernel call.

The batch assignment kernel scores points roughly an order of magnitude
cheaper than the scalar path (PR 2 measured ~16x), so the cheapest
throughput a daemon can buy is to *stack concurrent requests*: every
single-point ``/predict`` that arrives while another is in flight rides
the same ``(n, d)`` matrix through one blocked-kernel
:meth:`~repro.serving.index.ProjectedClusterIndex.predict`.  Results are
bit-identical by construction — the grouped batch kernel equals the
single-point kernel row for row, a contract the serving tests already
pin down.

Flush policy
------------
A batch is flushed when the first of these fires:

* **full** — ``max_batch`` requests are pending;
* **quiesce** — one event-loop pass completed without a new submission.
  Every request that was reachable (parsed off a socket buffer) has
  joined the batch; waiting longer can only add latency, never batch
  size.  This is what makes the batcher *adaptive*: a lone request
  flushes on the very next pass (scalar-path latency, no timer), while
  a flood of N concurrent connections yields batches of ~N without any
  tuned wait.
* **timeout** — the oldest pending request has waited ``max_wait_us``.
  The hard upper bound for trickle traffic, where one new arrival per
  pass keeps deferring the quiesce check.
* **chained** — a previous flush just completed and requests queued up
  behind it.
* **drain** — the server is shutting down.

Self-clocking
-------------
Flushes are *busy-gated*: while ``max_concurrency`` flushes are in
flight (one per backend worker; one for the in-process executor),
quiesce and timeout triggers hold their batch instead of launching a
flush that would only queue behind the busy kernel as a fragment.
When a flush completes, everything that accumulated behind it is
flushed as one **chained** batch.  Batch size therefore self-adapts to
``arrival rate x service time`` with no tuning — the steady-state
behaviour every production batcher converges on.  Only **full**
(bounds batch size) and **drain** (shutdown) bypass the gate.

``adaptive=False`` disables the quiesce check and always waits
``max_wait_us`` — the classic fixed-wait batcher, kept for A/B
comparison and tests.

Instrumented with :mod:`repro.obs` (``server.batch_size`` /
``server.queue_wait_us`` histograms, ``server.flush.<reason>``
counters) and mirrored into a local :class:`BatcherStats` so
``/metrics`` works without a recorder installed.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs

__all__ = ["BatcherStats", "MicroBatcher"]

#: Flush reasons, in the order they are reported.
FLUSH_REASONS = ("full", "quiesce", "timeout", "chained", "drain")


def _percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sequence."""
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return float(ordered[rank])


@dataclass
class BatcherStats:
    """Running counters the ``/metrics`` endpoint reports."""

    n_submitted: int = 0
    n_flushes: int = 0
    flush_reasons: Dict[str, int] = field(
        default_factory=lambda: {reason: 0 for reason in FLUSH_REASONS}
    )
    batch_sizes: List[int] = field(default_factory=list)
    queue_wait_us: List[float] = field(default_factory=list)
    _window: int = 4096  # ring-buffer bound on the percentile windows

    def record_flush(self, reason: str, size: int, waits_us: Sequence[float]) -> None:
        self.n_flushes += 1
        self.flush_reasons[reason] = self.flush_reasons.get(reason, 0) + 1
        self.batch_sizes.append(int(size))
        self.queue_wait_us.extend(float(wait) for wait in waits_us)
        if len(self.batch_sizes) > self._window:
            del self.batch_sizes[: -self._window]
        if len(self.queue_wait_us) > self._window:
            del self.queue_wait_us[: -self._window]

    def snapshot(self) -> Dict[str, object]:
        summary: Dict[str, object] = {
            "n_submitted": self.n_submitted,
            "n_flushes": self.n_flushes,
            "flush_reasons": dict(self.flush_reasons),
        }
        if self.batch_sizes:
            summary["mean_batch_size"] = float(np.mean(self.batch_sizes))
            summary["p50_batch_size"] = _percentile(self.batch_sizes, 0.50)
            summary["max_batch_size"] = int(max(self.batch_sizes))
        if self.queue_wait_us:
            summary["p50_queue_wait_us"] = _percentile(self.queue_wait_us, 0.50)
            summary["p99_queue_wait_us"] = _percentile(self.queue_wait_us, 0.99)
        return summary


class MicroBatcher:
    """Coalesce awaitable single-item submissions into batched flushes.

    Parameters
    ----------
    flush_fn:
        ``async (points: (n, d) ndarray) -> sequence of n results``.
        Called once per flush; result ``i`` resolves submission ``i``.
        Multiple flushes may be in flight at once (the worker pool
        provides the parallelism); ordering *within* a flush is
        preserved, which is all bit-identity needs.
    max_batch:
        Flush immediately at this many pending requests.
    max_wait_us:
        Upper bound on how long the oldest pending request may wait
        before the deadline timer flushes regardless.
    adaptive:
        Enable the quiesce flush (see module docstring).  ``False``
        always waits the full ``max_wait_us``.
    max_concurrency:
        How many flushes may be in flight at once before the busy gate
        holds new ones — one per kernel that can actually run in
        parallel (``backend.parallelism``).
    """

    def __init__(
        self,
        flush_fn: Callable[[np.ndarray], Awaitable[Sequence[object]]],
        *,
        max_batch: int = 64,
        max_wait_us: float = 2000.0,
        adaptive: bool = True,
        max_concurrency: int = 1,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_wait_us < 0:
            raise ValueError("max_wait_us may not be negative")
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be at least 1")
        self.flush_fn = flush_fn
        self.max_batch = int(max_batch)
        self.max_wait_us = float(max_wait_us)
        self.adaptive = bool(adaptive)
        self.max_concurrency = int(max_concurrency)
        self.stats = BatcherStats()
        self._pending: List[Tuple[np.ndarray, "asyncio.Future", float]] = []
        self._flush_tasks: set = set()  # strong refs; asyncio keeps only weak ones
        self._timer: Optional[asyncio.TimerHandle] = None
        self._inflight = 0
        #: Epoch counter: bumped on every flush so stale quiesce checks
        #: and deadline timers from an already-flushed batch are inert.
        self._epoch = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    @property
    def depth(self) -> int:
        """Currently pending (not yet flushed) submissions."""
        return len(self._pending)

    async def submit(self, point: np.ndarray) -> object:
        """Enqueue one point; resolves with its row of the flushed result."""
        if self._closed:
            raise RuntimeError("batcher is closed")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((point, future, obs.monotonic()))
        self.stats.n_submitted += 1
        if len(self._pending) >= self.max_batch:
            self._launch_flush("full")
        elif len(self._pending) == 1:
            # First of a new batch: arm the hard deadline, and (adaptive)
            # start the quiesce watch on the next loop pass.
            self._timer = loop.call_later(
                self.max_wait_us / 1e6, self._deadline_fired, self._epoch
            )
            if self.adaptive:
                loop.call_soon(self._quiesce_check, self._epoch, len(self._pending))
        return await future

    async def drain(self) -> None:
        """Flush whatever is pending (shutdown path)."""
        self._closed = True
        if self._pending:
            await self._flush("drain")

    # ------------------------------------------------------------------ #
    # flush triggers
    # ------------------------------------------------------------------ #
    def _quiesce_check(self, epoch: int, last_depth: int) -> None:
        if epoch != self._epoch or not self._pending:
            return  # batch already flushed by full/timeout/drain
        if self._inflight >= self.max_concurrency:
            return  # busy gate: the completing flush will chain us
        if len(self._pending) == last_depth:
            self._launch_flush("quiesce")
        else:
            # Still growing: look again after the next loop pass.
            asyncio.get_running_loop().call_soon(
                self._quiesce_check, epoch, len(self._pending)
            )

    def _deadline_fired(self, epoch: int) -> None:
        if epoch != self._epoch or not self._pending:
            return
        if self._inflight >= self.max_concurrency:
            return  # busy gate: the completing flush will chain us
        self._launch_flush("timeout")

    def _launch_flush(self, reason: str) -> None:
        task = asyncio.get_running_loop().create_task(self._flush(reason))
        self._flush_tasks.add(task)
        task.add_done_callback(self._flush_tasks.discard)

    def _flush_completed(self) -> None:
        self._inflight -= 1
        if self._pending and not self._closed and self._inflight < self.max_concurrency:
            # Everything that queued up behind the busy kernel goes out
            # as one batch — the self-clocking path.
            self._launch_flush("chained")

    async def _flush(self, reason: str) -> None:
        # Take at most max_batch rows: a same-pass burst can enqueue
        # more than max_batch before the first "full" flush task runs.
        batch = self._pending[: self.max_batch]
        if not batch:
            return
        self._pending = self._pending[self.max_batch :]
        self._epoch += 1
        self._inflight += 1
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._pending:
            # Re-arm for the remainder, deadline relative to its oldest
            # entry (their original timer died with the old epoch).
            loop = asyncio.get_running_loop()
            elapsed_us = (obs.monotonic() - self._pending[0][2]) * 1e6
            self._timer = loop.call_later(
                max(0.0, self.max_wait_us - elapsed_us) / 1e6,
                self._deadline_fired,
                self._epoch,
            )
            if self.adaptive:
                loop.call_soon(self._quiesce_check, self._epoch, len(self._pending))
        now = obs.monotonic()
        waits_us = [(now - enqueued) * 1e6 for _, _, enqueued in batch]
        size = len(batch)
        self.stats.record_flush(reason, size, waits_us)
        recorder = obs.get_recorder()
        if recorder is not None:
            recorder.observe("server.batch_size", float(size))
            for wait in waits_us:
                recorder.observe("server.queue_wait_us", wait)
            recorder.incr("server.flush.%s" % reason)
        try:
            try:
                with obs.span("server.flush", category="server") as flush_span:
                    points = np.stack([point for point, _, _ in batch])
                    results = await self.flush_fn(points)
                    flush_span.set(rows=size, reason=reason)
            except Exception as exc:  # propagate to every waiter
                for _, future, _ in batch:
                    if not future.done():
                        future.set_exception(exc)
                return
            if len(results) != size:
                error = RuntimeError(
                    "flush_fn returned %d results for %d submissions" % (len(results), size)
                )
                for _, future, _ in batch:
                    if not future.done():
                        future.set_exception(error)
                return
            for (_, future, _), result in zip(batch, results):
                if not future.done():
                    future.set_result(result)
        finally:
            self._flush_completed()
