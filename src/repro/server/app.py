"""The routed serving application: ``PredictServer``.

One asyncio event loop accepts connections, parses requests
(:mod:`repro.server.http`), and dispatches:

``POST /predict``
    ``{"point": [..]}`` rides the :class:`~repro.server.batcher.MicroBatcher`
    — concurrent single-point requests coalesce into one blocked-kernel
    call.  ``{"points": [[..], ..]}`` is already a batch and goes straight
    to the backend.  Labels are bit-identical to
    :meth:`~repro.serving.index.ProjectedClusterIndex.predict` — the
    batcher only *stacks* requests, and JSON round-trips floats exactly.
``POST /predict_soft``
    Top-``m`` soft assignments (labels, cluster ids, gains); ``-inf``
    gain padding is emitted as JSON ``-Infinity``.
``POST /partial_update``
    The write path.  Serialised by an application-level lock, folded
    through the backend's single owner (worker 0), persisted as a new
    artifact generation under ``state_dir`` (crash-safe save + atomic
    ``CURRENT`` pointer), then rebroadcast to replicas.  The response
    carries the new generation number.
``GET /healthz``
    Liveness + shape: generation, worker counts, cluster/dimension
    counts, uptime.
``GET /metrics``
    Batcher statistics (batch-size / queue-wait percentiles, flush
    reasons), per-route request counters, and error counts.

Every response carries the artifact ``generation`` it was served from,
so a client interleaving folds and predicts can tell which state
answered.
"""

from __future__ import annotations

import asyncio
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro import obs
from repro.reliability import atomic_write_text
from repro.server.batcher import MicroBatcher
from repro.server.http import HTTPError, HTTPRequest, json_response, read_request
from repro.server.pool import BackendError, make_backend

PathLike = Union[str, Path]

__all__ = ["PredictServer", "ServerConfig"]


@dataclass
class ServerConfig:
    """Tunables for one :class:`PredictServer`."""

    host: str = "127.0.0.1"
    #: ``0`` binds an ephemeral port (reported by :meth:`PredictServer.start`).
    port: int = 0
    #: ``0`` runs the index in-process; ``N >= 1`` forks N pool workers.
    workers: int = 0
    #: Micro-batcher: flush at this many pending single-point requests.
    max_batch: int = 64
    #: Micro-batcher: oldest pending request waits at most this long.
    max_wait_us: float = 2000.0
    #: Adapt the batching wait to observed concurrency (see batcher docs).
    adaptive_batching: bool = True
    #: Assignment center the index is built with.
    center: str = "median"
    #: ``"r"`` maps the artifact (shared pages); ``None`` loads eagerly.
    mmap_mode: Optional[str] = "r"
    #: Where ``partial_update`` generations land; ``None`` = private tempdir.
    state_dir: Optional[str] = None
    #: Reject request bodies larger than this.
    max_body_bytes: int = 8 * 1024 * 1024
    #: Close keep-alive connections idle longer than this.
    idle_timeout_s: float = 300.0


class PredictServer:
    """The serving daemon: routes, batcher, backend, and lifecycle."""

    def __init__(self, artifact_path: PathLike, config: Optional[ServerConfig] = None) -> None:
        self.artifact_path = str(artifact_path)
        self.config = config or ServerConfig()
        self.backend = make_backend(
            self.artifact_path,
            n_workers=self.config.workers,
            center=self.config.center,
            mmap_mode=self.config.mmap_mode,
        )
        self.batcher = MicroBatcher(
            self._flush_predict,
            max_batch=self.config.max_batch,
            max_wait_us=self.config.max_wait_us,
            adaptive=self.config.adaptive_batching,
        )
        self.generation = 0
        # Route table is hot (hit once per request) — build it once.
        self._routes = {
            ("POST", "/predict"): self._handle_predict,
            ("POST", "/predict_soft"): self._handle_predict_soft,
            ("POST", "/partial_update"): self._handle_partial_update,
            ("GET", "/healthz"): self._handle_healthz,
            ("GET", "/metrics"): self._handle_metrics,
        }
        self._known_paths = {path for _, path in self._routes}
        self.request_counts: Dict[Tuple[str, str], int] = {}
        self.error_counts: Dict[str, int] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: set = set()
        self._conn_last_active: Dict[object, Tuple[float, asyncio.StreamWriter]] = {}
        self._sweeper: Optional[asyncio.Task] = None
        self._write_lock = asyncio.Lock()
        self._tempdir: Optional[tempfile.TemporaryDirectory] = None
        self._started_at: Optional[float] = None
        self._n_dimensions: Optional[int] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> Tuple[str, int]:
        """Boot the backend and bind the listener; returns ``(host, port)``."""
        with obs.span("server.start", category="server"):
            await self.backend.start()
            # Workers exist only now, so the flush gate is set post-boot.
            self.batcher.max_concurrency = self.backend.parallelism
            description = self.backend.describe()
            self._n_dimensions = int(description.get("n_dimensions", 0)) or None
            if self.config.state_dir is None:
                self._tempdir = tempfile.TemporaryDirectory(prefix="repro-server-")
                self._state_dir = Path(self._tempdir.name)
            else:
                self._state_dir = Path(self.config.state_dir)
                self._state_dir.mkdir(parents=True, exist_ok=True)
            self._server = await asyncio.start_server(
                self._handle_client, self.config.host, self.config.port
            )
            self._started_at = obs.monotonic()
            if self.config.idle_timeout_s > 0:
                self._sweeper = asyncio.get_running_loop().create_task(self._sweep_idle())
        sockets = self._server.sockets or ()
        host, port = sockets[0].getsockname()[:2]
        obs.event("server_started", host=host, port=port, workers=self.config.workers)
        return host, port

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("server is not started")
        await self._server.serve_forever()

    async def _sweep_idle(self) -> None:
        """Close connections idle past ``idle_timeout_s`` (periodic sweep)."""
        interval = max(1.0, self.config.idle_timeout_s / 4.0)
        while True:
            await asyncio.sleep(interval)
            deadline = obs.monotonic() - self.config.idle_timeout_s
            for last_seen, writer in list(self._conn_last_active.values()):
                if last_seen < deadline:
                    writer.close()  # the handler's blocked read returns EOF

    async def stop(self) -> None:
        """Drain the batcher, stop the listener and the backend."""
        if self._sweeper is not None:
            self._sweeper.cancel()
            self._sweeper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Idle keep-alive connections never EOF on their own; cancel
        # their handler tasks so shutdown does not hang or log spew.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        await self.batcher.drain()
        await self.backend.stop()
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        # Idle reaping is a sweep over connection timestamps, NOT an
        # asyncio.wait_for per request — wrapping every read in a timer
        # costs tens of µs/request, which under micro-batched load is
        # comparable to the amortised kernel itself.
        self._conn_last_active[task] = (obs.monotonic(), writer)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body_bytes=self.config.max_body_bytes
                    )
                except HTTPError as exc:
                    self._count_error(exc.status)
                    writer.write(
                        json_response(
                            {"error": exc.message}, status=exc.status, keep_alive=False
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                self._conn_last_active[task] = (obs.monotonic(), writer)
                response = await self._dispatch(request)
                writer.write(response)
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass  # server shutdown closing an idle keep-alive connection
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
                self._conn_last_active.pop(task, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _dispatch(self, request: HTTPRequest) -> bytes:
        route = (request.method, request.path)
        self.request_counts[route] = self.request_counts.get(route, 0) + 1
        keep = request.keep_alive
        try:
            handler = self._route(request)
            payload, status = await handler(request)
            return json_response(payload, status=status, keep_alive=keep)
        except HTTPError as exc:
            self._count_error(exc.status)
            return json_response({"error": exc.message}, status=exc.status, keep_alive=keep)
        except BackendError as exc:
            self._count_error(503)
            obs.event("backend_error", route="%s %s" % route, error=str(exc))
            return json_response({"error": str(exc)}, status=503, keep_alive=keep)
        except Exception as exc:  # noqa: BLE001 - the daemon must not die per-request
            self._count_error(500)
            obs.event("server_error", route="%s %s" % route, error=repr(exc))
            return json_response(
                {"error": "internal error: %r" % exc}, status=500, keep_alive=keep
            )

    def _route(self, request: HTTPRequest):
        handler = self._routes.get((request.method, request.path))
        if handler is None:
            if request.path in self._known_paths:
                raise HTTPError(405, "method %s not allowed on %s" % (request.method, request.path))
            raise HTTPError(404, "no route for %s" % request.path)
        return handler

    def _count_error(self, status: int) -> None:
        key = str(status)
        self.error_counts[key] = self.error_counts.get(key, 0) + 1

    # ------------------------------------------------------------------ #
    # request parsing helpers
    # ------------------------------------------------------------------ #
    def _parse_points(self, payload: object) -> Tuple[np.ndarray, bool]:
        """``(points_2d, is_single)`` from a ``point`` / ``points`` body."""
        if not isinstance(payload, dict):
            raise HTTPError(400, "request body must be a JSON object")
        if ("point" in payload) == ("points" in payload):
            raise HTTPError(400, "provide exactly one of 'point' or 'points'")
        single = "point" in payload
        raw = payload["point"] if single else payload["points"]
        try:
            points = np.asarray(raw, dtype=float)
        except (TypeError, ValueError) as exc:
            raise HTTPError(400, "points are not numeric: %s" % exc) from exc
        if single:
            if points.ndim != 1:
                raise HTTPError(400, "'point' must be a flat list of numbers")
            points = points[None, :]
        elif points.ndim != 2:
            raise HTTPError(400, "'points' must be a list of equal-length rows")
        if points.size == 0:
            raise HTTPError(400, "empty point set")
        if self._n_dimensions is not None and points.shape[1] != self._n_dimensions:
            raise HTTPError(
                400,
                "points have %d dimensions, the artifact has %d"
                % (points.shape[1], self._n_dimensions),
            )
        return points, single

    async def _flush_predict(self, points: np.ndarray) -> np.ndarray:
        return await self.backend.predict(points)

    # ------------------------------------------------------------------ #
    # handlers — each returns (payload, status)
    # ------------------------------------------------------------------ #
    async def _handle_predict(self, request: HTTPRequest):
        points, single = self._parse_points(request.json())
        if single:
            label = await self.batcher.submit(points[0])
            return {"label": int(label), "generation": self.generation}, 200
        labels = await self.backend.predict(points)
        return {
            "labels": [int(label) for label in labels],
            "generation": self.generation,
        }, 200

    async def _handle_predict_soft(self, request: HTTPRequest):
        payload = request.json()
        points, single = self._parse_points(payload)
        top_m = payload.get("top_m", 3) if isinstance(payload, dict) else 3
        if not isinstance(top_m, int) or top_m < 1:
            raise HTTPError(400, "'top_m' must be a positive integer")
        labels, clusters, gains = await self.backend.predict_soft(points, top_m)
        body = {
            "labels": [int(label) for label in labels],
            "clusters": [[int(c) for c in row] for row in clusters],
            "gains": [[float(g) for g in row] for row in gains],
            "generation": self.generation,
        }
        if single:
            body.update(
                label=body["labels"][0],
                clusters=body["clusters"][0],
                gains=body["gains"][0],
            )
            del body["labels"]
        return body, 200

    async def _handle_partial_update(self, request: HTTPRequest):
        payload = request.json()
        points, _ = self._parse_points(payload)
        labels = None
        if isinstance(payload, dict) and payload.get("labels") is not None:
            labels = np.asarray(payload["labels"], dtype=int).ravel()
            if labels.shape[0] != points.shape[0]:
                raise HTTPError(400, "'labels' must match 'points' row for row")
        async with self._write_lock:
            next_generation = self.generation + 1
            generation_dir = self._state_dir / ("gen-%06d" % next_generation)
            with obs.span("server.partial_update", category="server") as update_span:
                applied, absorbed = await self.backend.partial_update(
                    points, labels, str(generation_dir)
                )
                # The generation is durable before anyone is told about it:
                # owner saved above (atomic), pointer flip below (atomic).
                atomic_write_text(self._state_dir / "CURRENT", generation_dir.name)
                await self.backend.reload_replicas(str(generation_dir))
                self.generation = next_generation
                update_span.set(rows=int(points.shape[0]), absorbed=absorbed)
        return {
            "applied_labels": [int(label) for label in applied],
            "absorbed": int(absorbed),
            "generation": self.generation,
        }, 200

    async def _handle_healthz(self, request: HTTPRequest):
        description = self.backend.describe()
        uptime = 0.0
        if self._started_at is not None:
            uptime = obs.monotonic() - self._started_at
        status = 200 if self.backend.alive_workers > 0 else 503
        return {
            "status": "ok" if status == 200 else "degraded",
            "generation": self.generation,
            "uptime_s": round(uptime, 3),
            **description,
        }, status

    async def _handle_metrics(self, request: HTTPRequest):
        return {
            "batcher": self.batcher.stats.snapshot(),
            "requests": {
                "%s %s" % route: count for route, count in self.request_counts.items()
            },
            "errors": dict(self.error_counts),
            "generation": self.generation,
            "batcher_depth": self.batcher.depth,
            "batcher_max_wait_us": self.batcher.max_wait_us,
        }, 200
