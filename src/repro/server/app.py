"""The routed serving application: ``PredictServer``.

One asyncio event loop accepts connections, parses requests
(:mod:`repro.server.http`), and dispatches:

``POST /predict``
    ``{"point": [..]}`` rides the :class:`~repro.server.batcher.MicroBatcher`
    — concurrent single-point requests coalesce into one blocked-kernel
    call.  ``{"points": [[..], ..]}`` is already a batch and goes straight
    to the backend.  Labels are bit-identical to
    :meth:`~repro.serving.index.ProjectedClusterIndex.predict` — the
    batcher only *stacks* requests, and JSON round-trips floats exactly.
``POST /predict_soft``
    Top-``m`` soft assignments (labels, cluster ids, gains); ``-inf``
    gain padding is emitted as JSON ``-Infinity``.
``POST /partial_update``
    The write path.  Serialised by an application-level lock, folded
    through the backend's single owner (worker 0), persisted as a new
    artifact generation under ``state_dir`` (crash-safe save + atomic
    ``CURRENT`` pointer), then rebroadcast to replicas.  The response
    carries the new generation number.
``GET /healthz``
    Liveness + shape: generation, worker counts, cluster/dimension
    counts, uptime, and the SLO report — the status degrades to 503
    when the error budget is fast-burning (see :mod:`repro.obs.slo`).
``GET /metrics``
    Batcher statistics (batch-size / queue-wait percentiles, flush
    reasons), per-route request counters, error counts, and the
    telemetry snapshot (per route × status-class latency histograms,
    SLO windows).  ``?format=prometheus`` renders the same state as
    Prometheus text exposition instead.
``GET /debug/tail_trace``
    Chrome trace of the tail capture: the slowest and errored requests
    with their full span trees — each ``server.request`` span linked to
    the ``server.flush`` that served it and the worker-side
    ``worker.predict`` kernel span, all stamped with the request id.

Every request carries an id: an inbound ``X-Request-Id`` header is
honored, otherwise one is generated, and every response — including
4xx/5xx and pre-routing parse errors — echoes it back.  Every response
also carries the artifact ``generation`` it was served from, so a
client interleaving folds and predicts can tell which state answered.
"""

from __future__ import annotations

import asyncio
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union
from urllib.parse import parse_qsl

import numpy as np

from repro import obs
from repro.obs.prom import CONTENT_TYPE, PromWriter, write_histogram, write_telemetry
from repro.obs.slo import SLOConfig
from repro.obs.telemetry import RequestTrace, Telemetry
from repro.reliability import atomic_write_text
from repro.server.batcher import FLUSH_REASONS, MicroBatcher
from repro.server.http import (
    HTTPError,
    HTTPRequest,
    json_response,
    read_request,
    render_response,
)
from repro.server.pool import BackendError, make_backend

PathLike = Union[str, Path]

__all__ = ["PredictServer", "ServerConfig"]

#: Bounded-cardinality telemetry labels per path; anything unknown
#: aggregates as "other" so a path-scanning client cannot explode the
#: per-route histogram space.
ROUTE_LABELS = {
    "/predict": "predict",
    "/predict_soft": "predict_soft",
    "/partial_update": "partial_update",
    "/healthz": "healthz",
    "/metrics": "metrics",
    "/debug/tail_trace": "tail_trace",
}


@dataclass
class RawResponse:
    """A handler result that is already rendered (non-JSON payloads)."""

    body: bytes
    content_type: str


@dataclass
class ServerConfig:
    """Tunables for one :class:`PredictServer`."""

    host: str = "127.0.0.1"
    #: ``0`` binds an ephemeral port (reported by :meth:`PredictServer.start`).
    port: int = 0
    #: ``0`` runs the index in-process; ``N >= 1`` forks N pool workers.
    workers: int = 0
    #: Micro-batcher: flush at this many pending single-point requests.
    max_batch: int = 64
    #: Micro-batcher: oldest pending request waits at most this long.
    max_wait_us: float = 2000.0
    #: Adapt the batching wait to observed concurrency (see batcher docs).
    adaptive_batching: bool = True
    #: Assignment center the index is built with.
    center: str = "median"
    #: Assignment-kernel backend the indexes run on (a
    #: :mod:`repro.core.backends` name; ``None`` defers to
    #: ``REPRO_ASSIGNMENT_BACKEND`` and then the reference kernel).
    kernel_backend: Optional[str] = None
    #: ``"r"`` maps the artifact (shared pages); ``None`` loads eagerly.
    mmap_mode: Optional[str] = "r"
    #: Where ``partial_update`` generations land; ``None`` = private tempdir.
    state_dir: Optional[str] = None
    #: Reject request bodies larger than this.
    max_body_bytes: int = 8 * 1024 * 1024
    #: Close keep-alive connections idle longer than this.
    idle_timeout_s: float = 300.0
    #: SLO: fraction of requests that must not be server errors (5xx).
    slo_availability_target: float = 0.999
    #: SLO: per-request latency budget in milliseconds.
    slo_latency_budget_ms: float = 250.0
    #: SLO: fraction of requests that must land within the budget.
    slo_latency_target: float = 0.99
    #: Tail capture: slowest-N requests retained per rolling window.
    tail_slow_requests: int = 32
    #: Tail capture: errored requests retained.
    tail_error_requests: int = 64


class PredictServer:
    """The serving daemon: routes, batcher, backend, and lifecycle."""

    def __init__(self, artifact_path: PathLike, config: Optional[ServerConfig] = None) -> None:
        self.artifact_path = str(artifact_path)
        self.config = config or ServerConfig()
        self.backend = make_backend(
            self.artifact_path,
            n_workers=self.config.workers,
            center=self.config.center,
            mmap_mode=self.config.mmap_mode,
            kernel_backend=self.config.kernel_backend,
        )
        self.batcher = MicroBatcher(
            self._flush_predict,
            max_batch=self.config.max_batch,
            max_wait_us=self.config.max_wait_us,
            adaptive=self.config.adaptive_batching,
        )
        self.generation = 0
        self.telemetry = Telemetry(
            SLOConfig(
                availability_target=self.config.slo_availability_target,
                latency_budget_ms=self.config.slo_latency_budget_ms,
                latency_target=self.config.slo_latency_target,
            ),
            tail_slow=self.config.tail_slow_requests,
            tail_errors=self.config.tail_error_requests,
        )
        # Route table is hot (hit once per request) — build it once.
        self._routes = {
            ("POST", "/predict"): self._handle_predict,
            ("POST", "/predict_soft"): self._handle_predict_soft,
            ("POST", "/partial_update"): self._handle_partial_update,
            ("GET", "/healthz"): self._handle_healthz,
            ("GET", "/metrics"): self._handle_metrics,
            ("GET", "/debug/tail_trace"): self._handle_tail_trace,
        }
        self._known_paths = {path for _, path in self._routes}
        self.request_counts: Dict[Tuple[str, str], int] = {}
        self.error_counts: Dict[str, int] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: set = set()
        self._conn_last_active: Dict[object, Tuple[float, asyncio.StreamWriter]] = {}
        self._sweeper: Optional[asyncio.Task] = None
        self._write_lock = asyncio.Lock()
        self._tempdir: Optional[tempfile.TemporaryDirectory] = None
        self._started_at: Optional[float] = None
        self._n_dimensions: Optional[int] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> Tuple[str, int]:
        """Boot the backend and bind the listener; returns ``(host, port)``."""
        with obs.span("server.start", category="server"):
            await self.backend.start()
            # Workers exist only now, so the flush gate is set post-boot.
            self.batcher.max_concurrency = self.backend.parallelism
            description = self.backend.describe()
            self._n_dimensions = int(description.get("n_dimensions", 0)) or None
            if self.config.state_dir is None:
                self._tempdir = tempfile.TemporaryDirectory(prefix="repro-server-")
                self._state_dir = Path(self._tempdir.name)
            else:
                self._state_dir = Path(self.config.state_dir)
                self._state_dir.mkdir(parents=True, exist_ok=True)
            self._server = await asyncio.start_server(
                self._handle_client, self.config.host, self.config.port
            )
            self._started_at = obs.monotonic()
            if self.config.idle_timeout_s > 0:
                self._sweeper = asyncio.get_running_loop().create_task(self._sweep_idle())
        sockets = self._server.sockets or ()
        host, port = sockets[0].getsockname()[:2]
        obs.event("server_started", host=host, port=port, workers=self.config.workers)
        return host, port

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("server is not started")
        await self._server.serve_forever()

    async def _sweep_idle(self) -> None:
        """Close connections idle past ``idle_timeout_s`` (periodic sweep)."""
        interval = max(1.0, self.config.idle_timeout_s / 4.0)
        while True:
            await asyncio.sleep(interval)
            deadline = obs.monotonic() - self.config.idle_timeout_s
            for last_seen, writer in list(self._conn_last_active.values()):
                if last_seen < deadline:
                    writer.close()  # the handler's blocked read returns EOF

    async def stop(self) -> None:
        """Drain the batcher, stop the listener and the backend."""
        if self._sweeper is not None:
            self._sweeper.cancel()
            self._sweeper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Idle keep-alive connections never EOF on their own; cancel
        # their handler tasks so shutdown does not hang or log spew.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        await self.batcher.drain()
        await self.backend.stop()
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        # Idle reaping is a sweep over connection timestamps, NOT an
        # asyncio.wait_for per request — wrapping every read in a timer
        # costs tens of µs/request, which under micro-batched load is
        # comparable to the amortised kernel itself.
        self._conn_last_active[task] = (obs.monotonic(), writer)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body_bytes=self.config.max_body_bytes
                    )
                except HTTPError as exc:
                    # Pre-routing failure (malformed request, oversized
                    # body): still assign a request id (honoring any
                    # inbound one the parser salvaged), and still count
                    # the request — unaccounted traffic is invisible
                    # traffic.
                    request_id = self._request_id(exc.headers)
                    route = ("*", "bad_request")
                    self.request_counts[route] = self.request_counts.get(route, 0) + 1
                    self._count_error(exc.status)
                    trace = self.telemetry.begin_request("*", "bad_request", request_id)
                    self.telemetry.finish_request(trace, exc.status, error=exc.message)
                    writer.write(
                        json_response(
                            {"error": exc.message},
                            status=exc.status,
                            keep_alive=False,
                            request_id=request_id,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                self._conn_last_active[task] = (obs.monotonic(), writer)
                response = await self._dispatch(request)
                writer.write(response)
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass  # server shutdown closing an idle keep-alive connection
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
                self._conn_last_active.pop(task, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    def _request_id(self, headers: Dict[str, str]) -> str:
        """Honor an inbound ``X-Request-Id`` (length-capped) or mint one."""
        inbound = headers.get("x-request-id", "").strip()
        if inbound:
            return inbound[:128]
        return self.telemetry.next_request_id()

    async def _dispatch(self, request: HTTPRequest) -> bytes:
        route = (request.method, request.path)
        self.request_counts[route] = self.request_counts.get(route, 0) + 1
        keep = request.keep_alive
        request_id = self._request_id(request.headers)
        trace = self.telemetry.begin_request(
            request.method, ROUTE_LABELS.get(request.path, "other"), request_id
        )
        status = 500
        try:
            try:
                handler = self._route(request)
                payload, status = await handler(request, trace)
                if isinstance(payload, RawResponse):
                    return render_response(
                        status,
                        payload.body,
                        content_type=payload.content_type,
                        keep_alive=keep,
                        request_id=request_id,
                    )
                serialize_start = obs.monotonic()
                response = json_response(
                    payload, status=status, keep_alive=keep, request_id=request_id
                )
                trace.add_phase(
                    "server.serialize",
                    self.telemetry.to_timeline(serialize_start),
                    obs.monotonic() - serialize_start,
                )
                return response
            except HTTPError as exc:
                status = exc.status
                self._count_error(status)
                trace.error = exc.message
                return json_response(
                    {"error": exc.message},
                    status=status,
                    keep_alive=keep,
                    request_id=request_id,
                )
            except BackendError as exc:
                status = 503
                self._count_error(503)
                trace.error = str(exc)
                obs.event("backend_error", route="%s %s" % route, error=str(exc))
                return json_response(
                    {"error": str(exc)}, status=503, keep_alive=keep, request_id=request_id
                )
            except Exception as exc:  # noqa: BLE001 - the daemon must not die per-request
                status = 500
                self._count_error(500)
                trace.error = repr(exc)
                obs.event("server_error", route="%s %s" % route, error=repr(exc))
                return json_response(
                    {"error": "internal error: %r" % exc},
                    status=500,
                    keep_alive=keep,
                    request_id=request_id,
                )
        finally:
            self.telemetry.finish_request(trace, status)

    def _route(self, request: HTTPRequest):
        handler = self._routes.get((request.method, request.path))
        if handler is None:
            if request.path in self._known_paths:
                raise HTTPError(405, "method %s not allowed on %s" % (request.method, request.path))
            raise HTTPError(404, "no route for %s" % request.path)
        return handler

    def _count_error(self, status: int) -> None:
        key = str(status)
        self.error_counts[key] = self.error_counts.get(key, 0) + 1

    # ------------------------------------------------------------------ #
    # request parsing helpers
    # ------------------------------------------------------------------ #
    def _parse_points(self, payload: object) -> Tuple[np.ndarray, bool]:
        """``(points_2d, is_single)`` from a ``point`` / ``points`` body."""
        if not isinstance(payload, dict):
            raise HTTPError(400, "request body must be a JSON object")
        if ("point" in payload) == ("points" in payload):
            raise HTTPError(400, "provide exactly one of 'point' or 'points'")
        single = "point" in payload
        raw = payload["point"] if single else payload["points"]
        try:
            points = np.asarray(raw, dtype=float)
        except (TypeError, ValueError) as exc:
            raise HTTPError(400, "points are not numeric: %s" % exc) from exc
        if single:
            if points.ndim != 1:
                raise HTTPError(400, "'point' must be a flat list of numbers")
            points = points[None, :]
        elif points.ndim != 2:
            raise HTTPError(400, "'points' must be a list of equal-length rows")
        if points.size == 0:
            raise HTTPError(400, "empty point set")
        if self._n_dimensions is not None and points.shape[1] != self._n_dimensions:
            raise HTTPError(
                400,
                "points have %d dimensions, the artifact has %d"
                % (points.shape[1], self._n_dimensions),
            )
        return points, single

    async def _flush_predict(self, points: np.ndarray, meta: Dict[str, object]) -> np.ndarray:
        """Batcher flush: traced predict, flush recorded for telemetry.

        The backend's traced path runs the kernel under a private
        worker-side recorder; its exported state is retained with the
        flush so tail traces can splice the actual kernel span into
        every request that rode this batch.
        """
        start = obs.monotonic()
        labels, worker_state = await self.backend.predict_traced(points)
        self.telemetry.observe_flush(
            int(meta["batch_id"]),
            str(meta["reason"]),
            int(points.shape[0]),
            start,
            obs.monotonic() - start,
            worker_state,
        )
        return labels

    # ------------------------------------------------------------------ #
    # handlers — each returns (payload, status)
    # ------------------------------------------------------------------ #
    async def _handle_predict(self, request: HTTPRequest, trace: RequestTrace):
        points, single = self._parse_points(request.json())
        if single:
            ticket: Dict[str, object] = {}
            submitted = obs.monotonic()
            label = await self.batcher.submit(points[0], ticket)
            trace.link_batch(ticket, self.telemetry.to_timeline(submitted))
            return {"label": int(label), "generation": self.generation}, 200
        kernel_start = obs.monotonic()
        labels = await self.backend.predict(points)
        trace.add_phase(
            "server.kernel",
            self.telemetry.to_timeline(kernel_start),
            obs.monotonic() - kernel_start,
            rows=int(points.shape[0]),
        )
        return {
            "labels": [int(label) for label in labels],
            "generation": self.generation,
        }, 200

    async def _handle_predict_soft(self, request: HTTPRequest, trace: RequestTrace):
        payload = request.json()
        points, single = self._parse_points(payload)
        top_m = payload.get("top_m", 3) if isinstance(payload, dict) else 3
        if not isinstance(top_m, int) or top_m < 1:
            raise HTTPError(400, "'top_m' must be a positive integer")
        labels, clusters, gains = await self.backend.predict_soft(points, top_m)
        body = {
            "labels": [int(label) for label in labels],
            "clusters": [[int(c) for c in row] for row in clusters],
            "gains": [[float(g) for g in row] for row in gains],
            "generation": self.generation,
        }
        if single:
            body.update(
                label=body["labels"][0],
                clusters=body["clusters"][0],
                gains=body["gains"][0],
            )
            del body["labels"]
        return body, 200

    async def _handle_partial_update(self, request: HTTPRequest, trace: RequestTrace):
        payload = request.json()
        points, _ = self._parse_points(payload)
        labels = None
        if isinstance(payload, dict) and payload.get("labels") is not None:
            labels = np.asarray(payload["labels"], dtype=int).ravel()
            if labels.shape[0] != points.shape[0]:
                raise HTTPError(400, "'labels' must match 'points' row for row")
        async with self._write_lock:
            next_generation = self.generation + 1
            generation_dir = self._state_dir / ("gen-%06d" % next_generation)
            with obs.span("server.partial_update", category="server") as update_span:
                applied, absorbed = await self.backend.partial_update(
                    points, labels, str(generation_dir)
                )
                # The generation is durable before anyone is told about it:
                # owner saved above (atomic), pointer flip below (atomic).
                atomic_write_text(self._state_dir / "CURRENT", generation_dir.name)
                await self.backend.reload_replicas(str(generation_dir))
                self.generation = next_generation
                update_span.set(rows=int(points.shape[0]), absorbed=absorbed)
        return {
            "applied_labels": [int(label) for label in applied],
            "absorbed": int(absorbed),
            "generation": self.generation,
        }, 200

    async def _handle_healthz(self, request: HTTPRequest, trace: RequestTrace):
        description = self.backend.describe()
        uptime = 0.0
        if self._started_at is not None:
            uptime = obs.monotonic() - self._started_at
        slo = self.telemetry.slo.report()
        reason = None
        if self.backend.alive_workers == 0:
            reason = "no_live_workers"
        elif slo["fast_burn"]:
            # The declared objectives are burning fast enough to page on;
            # degrade so load balancers shed traffic before it gets worse.
            reason = "slo_fast_burn"
        body = {
            "status": "ok" if reason is None else "degraded",
            "generation": self.generation,
            "uptime_s": round(uptime, 3),
            "slo": slo,
            **description,
        }
        if reason is not None:
            body["reason"] = reason
        return body, (200 if reason is None else 503)

    async def _handle_metrics(self, request: HTTPRequest, trace: RequestTrace):
        if dict(parse_qsl(request.query)).get("format") == "prometheus":
            return RawResponse(self.render_prometheus().encode("utf-8"), CONTENT_TYPE), 200
        return {
            "batcher": self.batcher.stats.snapshot(),
            "requests": {
                "%s %s" % route: count for route, count in self.request_counts.items()
            },
            "errors": dict(self.error_counts),
            "generation": self.generation,
            "batcher_depth": self.batcher.depth,
            "batcher_max_wait_us": self.batcher.max_wait_us,
            "telemetry": self.telemetry.snapshot(),
        }, 200

    async def _handle_tail_trace(self, request: HTTPRequest, trace: RequestTrace):
        return self.telemetry.tail_trace(), 200

    def render_prometheus(self) -> str:
        """The whole server state as Prometheus text exposition."""
        writer = PromWriter()
        write_telemetry(writer, self.telemetry)
        writer.family(
            "repro_http_requests_total", "counter", "Requests by method and path."
        )
        for (method, path), count in sorted(self.request_counts.items()):
            writer.sample(
                "repro_http_requests_total", {"method": method, "path": path}, count
            )
        writer.family(
            "repro_http_errors_total", "counter", "Error responses by status code."
        )
        for status_code, count in sorted(self.error_counts.items()):
            writer.sample("repro_http_errors_total", {"status": status_code}, count)
        stats = self.batcher.stats
        writer.family(
            "repro_batcher_flush_total", "counter", "Micro-batch flushes by reason."
        )
        for flush_reason in FLUSH_REASONS:
            writer.sample(
                "repro_batcher_flush_total",
                {"reason": flush_reason},
                stats.flush_reasons.get(flush_reason, 0),
            )
        writer.family(
            "repro_batcher_submitted_total",
            "counter",
            "Single-point submissions that entered the micro-batcher.",
        )
        writer.sample("repro_batcher_submitted_total", None, stats.n_submitted)
        writer.family("repro_batch_size", "histogram", "Rows per micro-batch flush.")
        write_histogram(writer, "repro_batch_size", {}, stats.batch_size)
        writer.family(
            "repro_queue_wait_seconds",
            "histogram",
            "Time a submission waited in the batcher queue.",
        )
        write_histogram(
            writer, "repro_queue_wait_seconds", {}, stats.queue_wait_us, scale=1e-6
        )
        writer.family(
            "repro_batcher_depth", "gauge", "Submissions pending in the batcher."
        )
        writer.sample("repro_batcher_depth", None, self.batcher.depth)
        writer.family("repro_generation", "gauge", "Artifact generation being served.")
        writer.sample("repro_generation", None, self.generation)
        writer.family("repro_workers_alive", "gauge", "Live backend workers.")
        writer.sample("repro_workers_alive", None, self.backend.alive_workers)
        uptime = 0.0
        if self._started_at is not None:
            uptime = obs.monotonic() - self._started_at
        writer.family("repro_uptime_seconds", "gauge", "Seconds since the daemon booted.")
        writer.sample("repro_uptime_seconds", None, uptime)
        return writer.render()
