"""``repro.server`` — the asyncio micro-batching serving daemon.

The serving subsystem's network layer: a single-process asyncio event
loop speaking hand-rolled HTTP/1.1 (no dependencies beyond the standard
library) in front of a fleet of worker processes that share one
memory-mapped :class:`~repro.serving.artifact.ModelArtifact`.

Layers, bottom up:

* :mod:`repro.server.http` — minimal HTTP/1.1 request parsing and
  response rendering over :mod:`asyncio` streams (keep-alive,
  content-length bodies, nothing else — the daemon speaks exactly as
  much HTTP as a load balancer needs).
* :mod:`repro.server.batcher` — :class:`~repro.server.batcher.MicroBatcher`,
  the adaptive request coalescer: concurrent single-point ``/predict``
  requests are stacked into one blocked-kernel
  :meth:`~repro.serving.index.ProjectedClusterIndex.predict` call
  (flush on max-batch or max-wait, with the wait adapting to observed
  concurrency so solo traffic pays no batching latency).
* :mod:`repro.server.pool` — the compute backends: an in-process index
  (``workers=0``) or N worker processes each mapping the same artifact
  (``load_artifact(..., mmap_mode="r")``), with worker 0 as the single
  *owner* of the write path — ``partial_update`` folds there, a new
  artifact generation is persisted crash-safely, and replicas reload it.
* :mod:`repro.server.app` — :class:`~repro.server.app.PredictServer`,
  the routed application (``/predict``, ``/predict_soft``,
  ``/partial_update``, ``/healthz``, ``/metrics`` — JSON or
  ``?format=prometheus`` — and ``/debug/tail_trace``), with
  request-scoped telemetry (:mod:`repro.obs.telemetry`) always on.
* :mod:`repro.server.cli` — the ``repro-server`` console script.

Start one from Python::

    from repro.server import PredictServer, ServerConfig
    server = PredictServer("artifacts/expr-v1", ServerConfig(port=0))
    host, port = await server.start()

or from a shell::

    repro-server artifacts/expr-v1 --port 8757 --workers 2
"""

from repro.server.app import PredictServer, ServerConfig
from repro.server.batcher import BatcherStats, MicroBatcher
from repro.server.pool import InProcessBackend, WorkerPoolBackend, make_backend

__all__ = [
    "BatcherStats",
    "InProcessBackend",
    "MicroBatcher",
    "PredictServer",
    "ServerConfig",
    "WorkerPoolBackend",
    "make_backend",
]
