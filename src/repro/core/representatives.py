"""Cluster-representative replacement (Section 4.3 of the paper).

After each iteration SSPC improves the clustering by

* identifying one *bad* cluster — typically the loser of two clusters
  whose medoids fall in the same real cluster (detected by a very low
  ``phi_i`` score, or by two clusters being very similar) — and drawing a
  brand new medoid for it from its seed group, and
* replacing the representative of every other cluster by the cluster
  *median*, which is likely closer to the real cluster centre than the
  current medoid along some relevant dimensions.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.assignment import ClusterState
from repro.core.objective import ObjectiveFunction


def find_bad_cluster(
    objective: ObjectiveFunction,
    states: Sequence[ClusterState],
    phi_scores: Sequence[float],
    *,
    similarity_threshold: float = 0.8,
) -> int:
    """Pick the cluster whose representative should be replaced.

    Two signals are combined, following Section 4.3:

    1. If two clusters are *very similar* — their selected dimension sets
       overlap heavily (Jaccard similarity above ``similarity_threshold``)
       and their representatives nearly coincide in the shared subspace —
       the one with the lower ``phi_i`` is the bad cluster (it is losing
       the competition for the same real cluster).
    2. Otherwise the cluster with the lowest ``phi_i`` score is returned;
       empty clusters count as having the worst possible score.

    Returns
    -------
    int
        Index of the bad cluster.
    """
    phi_scores = np.asarray(phi_scores, dtype=float)
    n_clusters = len(states)
    if n_clusters == 0:
        raise ValueError("cannot pick a bad cluster from an empty clustering")

    # Signal 2 default: lowest score, empty clusters worst of all.
    effective = phi_scores.copy()
    for index, state in enumerate(states):
        if state.members.size == 0:
            effective[index] = -np.inf

    # Signal 1: similar cluster pairs.
    worst_similar: Optional[int] = None
    for i in range(n_clusters):
        for j in range(i + 1, n_clusters):
            if _clusters_similar(objective, states[i], states[j], similarity_threshold):
                loser = i if effective[i] <= effective[j] else j
                if worst_similar is None or effective[loser] < effective[worst_similar]:
                    worst_similar = loser
    if worst_similar is not None:
        return int(worst_similar)
    return int(np.argmin(effective))


def _clusters_similar(
    objective: ObjectiveFunction,
    first: ClusterState,
    second: ClusterState,
    similarity_threshold: float,
) -> bool:
    """Whether two clusters look like duplicates of the same real cluster."""
    dims_first = set(int(j) for j in first.dimensions)
    dims_second = set(int(j) for j in second.dimensions)
    if not dims_first or not dims_second:
        return False
    union = dims_first | dims_second
    jaccard = len(dims_first & dims_second) / len(union)
    if jaccard < similarity_threshold:
        return False
    shared = np.asarray(sorted(dims_first & dims_second), dtype=int)
    if shared.size == 0:
        return False
    # Representatives close in the shared subspace relative to the global
    # spread of those dimensions indicates the same underlying centre.
    global_std = np.sqrt(objective.threshold.global_variance[shared])
    gap = np.abs(first.representative[shared] - second.representative[shared])
    return bool(np.mean(gap / global_std) < 0.5)


def replace_representatives(
    objective: ObjectiveFunction,
    states: Sequence[ClusterState],
    bad_cluster: int,
    new_medoid: Optional[int],
    new_medoid_dimensions: Optional[np.ndarray],
) -> List[ClusterState]:
    """Produce the next iteration's cluster states.

    The bad cluster receives the new medoid (and its seed group's
    estimated dimensions); every other cluster's representative becomes
    the median of its current members (keeping its selected dimensions),
    or stays unchanged when the cluster is empty.  Member lists are
    cleared — the next assignment pass repopulates them (Listing 2,
    step 6).

    Parameters
    ----------
    objective:
        The fitted objective function (provides the data).
    states:
        Current cluster states.
    bad_cluster:
        Index of the cluster whose representative is replaced by a new
        medoid.
    new_medoid:
        Object index of the new medoid, or ``None`` when the seed group
        is exhausted (the bad cluster then also falls back to its
        median).
    new_medoid_dimensions:
        Estimated relevant dimensions associated with the new medoid's
        seed group (``None`` keeps the cluster's current dimensions).
    """
    next_states: List[ClusterState] = []
    for cluster_index, state in enumerate(states):
        if cluster_index == bad_cluster and new_medoid is not None:
            dimensions = (
                np.asarray(new_medoid_dimensions, dtype=int)
                if new_medoid_dimensions is not None and len(new_medoid_dimensions) > 0
                else state.dimensions.copy()
            )
            next_states.append(
                ClusterState(
                    representative=objective.data[int(new_medoid)].copy(),
                    dimensions=dimensions,
                    members=np.empty(0, dtype=int),
                    size_hint=max(state.members.size, 2),
                )
            )
            continue
        if state.members.size > 0:
            # Served by the shared statistics cache: the same member set
            # was already profiled by SelectDim / the phi evaluation this
            # iteration, so no extra statistics pass happens here.
            median = objective.cluster_statistics(state.members).median.copy()
        else:
            median = state.representative.copy()
        next_states.append(
            ClusterState(
                representative=median,
                dimensions=state.dimensions.copy(),
                members=np.empty(0, dtype=int),
                size_hint=max(state.members.size, 2),
            )
        )
    return next_states


def compute_phi_scores(
    objective: ObjectiveFunction,
    states: Sequence[ClusterState],
) -> Tuple[List[float], float]:
    """Per-cluster ``phi_i`` scores and the overall ``phi``.

    Uses each cluster's *actual* members and medians (Listing 2, step 4),
    i.e. the canonical Eq. 4 evaluation rather than the representative
    substitution used during assignment.
    """
    per_cluster: List[float] = []
    for state in states:
        per_cluster.append(objective.phi_i(state.members, state.dimensions))
    overall = float(sum(per_cluster) / (objective.n_objects * objective.n_dimensions))
    return per_cluster, overall
