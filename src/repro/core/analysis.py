"""Knowledge-requirement analysis (Section 4.5, Figures 1 and 2).

The paper analyses how much input knowledge is needed before SSPC's
initialisation reliably builds a grid whose building dimensions are all
relevant to the target cluster.  The closed-form expressions live in the
authors' technical report (TR-2004-08), which is not available offline;
this module derives equivalent expressions from the same model and the
same parameters (documented below), preserving the qualitative behaviour
the paper reports:

* more labeled objects/dimensions -> higher success probability, with a
  sharp rise followed by a plateau;
* labeled objects work better when the fraction of relevant dimensions
  ``d_i / d`` is large;
* labeled dimensions work better when ``d_i / d`` is small (a single
  dimension is then unlikely to be relevant to several clusters).

Model and derivation
--------------------

**Labeled objects only** (Figure 1).  The ``|Io_i|`` labeled objects form
a temporary cluster ``C_i'``.  A dimension enters the grid-building
candidate set when ``SelectDim(C_i')`` picks it under the chi-square
scheme with parameter ``p``:

* an *irrelevant* dimension is picked with probability ``p`` by the very
  definition of the scheme;
* a *relevant* dimension has its local variance around ``rho`` times the
  global variance (``rho`` = ``variance_ratio``, 0.15 in the paper's
  example), so ``(n'-1) s^2 / sigma_global^2`` is approximately
  ``rho * chi2(n'-1)`` and the dimension is picked with probability
  ``P[chi2(n'-1) < chi2_inv(p, n'-1) / rho]``
  (:func:`relevant_dimension_retention_probability`).

The candidate set therefore contains on average ``R = d_i * q_rel``
relevant and ``W = (d - d_i) * p`` irrelevant dimensions.  Grid-building
dimensions are drawn with probability proportional to ``phi_i'j``; since
relevant candidates have systematically higher scores than irrelevant
ones that slipped in by chance, drawing ``c`` building dimensions
uniformly from the candidate set is the conservative approximation we
use.  One grid is then all-relevant with probability
``P_1 = prod_{t=0..c-1} max(R - t, 0) / (R + W - t)`` and at least one of
the ``g`` independent grids is all-relevant with probability
``1 - (1 - P_1)^g``.

**Labeled dimensions only** (Figure 2).  Building dimensions are drawn
from the ``|Iv_i|`` labeled dimensions, all of which are relevant to
``C_i`` by assumption; the question is whether they are relevant to
``C_i`` *only*.  With ``k`` clusters whose relevant sets are drawn
independently, a given dimension of ``C_i`` is also relevant to at least
one other cluster with probability ``q_shared = 1 - (1 - d_i/d)^(k-1)``.
A grid needs ``c`` of the ``|Iv_i|`` labeled dimensions (when fewer are
available no grid can be formed and the probability is 0); modelling the
number of exclusive labeled dimensions as Binomial(|Iv_i|, 1-q_shared)
and drawing without replacement gives the hypergeometric-style product
used in :func:`grid_success_probability_labeled_dimensions`, and the
``g``-grid success probability follows as before.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import stats

from repro.utils.validation import check_fraction, check_positive_int, check_probability


def relevant_dimension_retention_probability(
    n_labeled_objects: int,
    p: float,
    variance_ratio: float,
) -> float:
    """Probability that a truly relevant dimension passes ``SelectDim(C_i')``.

    Parameters
    ----------
    n_labeled_objects:
        Number of labeled objects ``|Io_i|`` (at least 2 for a variance to
        exist; below that the probability is 0).
    p:
        The chi-square threshold parameter.
    variance_ratio:
        Ratio of the local population variance to the global population
        variance (the paper's example uses 0.15).

    Returns
    -------
    float
        ``P[s^2_rel < s_hat^2]`` under the model above.
    """
    p = check_probability(p, name="p")
    variance_ratio = check_fraction(variance_ratio, name="variance_ratio", inclusive_low=False)
    if n_labeled_objects < 2:
        return 0.0
    dof = n_labeled_objects - 1
    critical = stats.chi2.ppf(p, dof)
    return float(stats.chi2.cdf(critical / variance_ratio, dof))


def _all_relevant_single_grid_probability(
    n_relevant_candidates: float,
    n_irrelevant_candidates: float,
    grid_dimensions: int,
) -> float:
    """Probability that one grid draws only relevant candidates.

    Sequential draws without replacement from a candidate pool with
    (expected) ``R`` relevant and ``W`` irrelevant members.
    """
    total = n_relevant_candidates + n_irrelevant_candidates
    if total <= 0:
        return 0.0
    probability = 1.0
    for draw in range(grid_dimensions):
        numerator = n_relevant_candidates - draw
        denominator = total - draw
        if numerator <= 0 or denominator <= 0:
            return 0.0
        probability *= numerator / denominator
    return float(min(max(probability, 0.0), 1.0))


def grid_success_probability_labeled_objects(
    n_labeled_objects: int,
    *,
    n_dimensions: int = 3000,
    relevant_fraction: float = 0.05,
    p: float = 0.01,
    grid_dimensions: int = 3,
    n_grids: int = 20,
    variance_ratio: float = 0.15,
) -> float:
    """Probability that at least one grid uses only relevant dimensions (Figure 1).

    Parameters mirror the example values quoted in Section 4.5 of the
    paper: ``d = 3000``, ``p = 0.01``, ``c = 3`` building dimensions,
    ``g = 20`` grids, local/global variance ratio 0.15.

    Parameters
    ----------
    n_labeled_objects:
        Number of labeled objects supplied for the cluster, ``|Io_i|``.
    n_dimensions:
        Dataset dimensionality ``d``.
    relevant_fraction:
        The ratio ``d_i / d``.
    p:
        Chi-square threshold parameter used by ``SelectDim``.
    grid_dimensions:
        Building dimensions per grid, ``c``.
    n_grids:
        Number of grids built per seed group, ``g``.
    variance_ratio:
        Local-to-global variance ratio of relevant dimensions.

    Returns
    -------
    float
        Probability in ``[0, 1]``.
    """
    n_dimensions = check_positive_int(n_dimensions, name="n_dimensions", minimum=1)
    relevant_fraction = check_fraction(
        relevant_fraction, name="relevant_fraction", inclusive_low=False
    )
    grid_dimensions = check_positive_int(grid_dimensions, name="grid_dimensions", minimum=1)
    n_grids = check_positive_int(n_grids, name="n_grids", minimum=1)
    if n_labeled_objects < 2:
        return 0.0

    n_relevant = relevant_fraction * n_dimensions
    n_irrelevant = n_dimensions - n_relevant
    q_relevant = relevant_dimension_retention_probability(n_labeled_objects, p, variance_ratio)

    expected_relevant_candidates = n_relevant * q_relevant
    expected_irrelevant_candidates = n_irrelevant * p
    single = _all_relevant_single_grid_probability(
        expected_relevant_candidates, expected_irrelevant_candidates, grid_dimensions
    )
    return float(1.0 - (1.0 - single) ** n_grids)


def grid_success_probability_labeled_dimensions(
    n_labeled_dimensions: int,
    *,
    n_dimensions: int = 3000,
    relevant_fraction: float = 0.05,
    n_clusters: int = 5,
    grid_dimensions: int = 3,
    n_grids: int = 20,
) -> float:
    """Probability that at least one grid uses dimensions relevant to ``C_i`` only (Figure 2).

    Parameters
    ----------
    n_labeled_dimensions:
        Number of labeled dimensions supplied for the cluster, ``|Iv_i|``.
    n_dimensions:
        Dataset dimensionality ``d``.
    relevant_fraction:
        The ratio ``d_i / d``.
    n_clusters:
        Number of hidden classes ``k`` (a labeled dimension may also be
        relevant to any of the other ``k - 1`` clusters).
    grid_dimensions:
        Building dimensions per grid, ``c``.
    n_grids:
        Number of grids built per seed group, ``g``.

    Returns
    -------
    float
        Probability in ``[0, 1]``.  Zero when fewer labeled dimensions
        than ``grid_dimensions`` are supplied (no grid can be formed from
        labeled dimensions alone).
    """
    n_dimensions = check_positive_int(n_dimensions, name="n_dimensions", minimum=1)
    relevant_fraction = check_fraction(
        relevant_fraction, name="relevant_fraction", inclusive_low=False
    )
    n_clusters = check_positive_int(n_clusters, name="n_clusters", minimum=1)
    grid_dimensions = check_positive_int(grid_dimensions, name="grid_dimensions", minimum=1)
    n_grids = check_positive_int(n_grids, name="n_grids", minimum=1)
    if n_labeled_dimensions < grid_dimensions:
        return 0.0

    # Probability that one labeled dimension of C_i is exclusive to C_i.
    q_exclusive = (1.0 - relevant_fraction) ** (n_clusters - 1)
    expected_exclusive = n_labeled_dimensions * q_exclusive
    expected_shared = n_labeled_dimensions * (1.0 - q_exclusive)
    single = _all_relevant_single_grid_probability(
        expected_exclusive, expected_shared, grid_dimensions
    )
    return float(1.0 - (1.0 - single) ** n_grids)


def knowledge_requirement_curve_objects(
    input_sizes: Sequence[int],
    relevant_fractions: Sequence[float],
    **kwargs,
) -> np.ndarray:
    """Matrix of Figure-1 probabilities over input sizes x relevant fractions.

    Rows follow ``relevant_fractions``, columns follow ``input_sizes``.
    Keyword arguments are forwarded to
    :func:`grid_success_probability_labeled_objects`.
    """
    matrix = np.zeros((len(relevant_fractions), len(input_sizes)))
    for row, fraction in enumerate(relevant_fractions):
        for column, size in enumerate(input_sizes):
            matrix[row, column] = grid_success_probability_labeled_objects(
                int(size), relevant_fraction=float(fraction), **kwargs
            )
    return matrix


def knowledge_requirement_curve_dimensions(
    input_sizes: Sequence[int],
    relevant_fractions: Sequence[float],
    **kwargs,
) -> np.ndarray:
    """Matrix of Figure-2 probabilities over input sizes x relevant fractions.

    Rows follow ``relevant_fractions``, columns follow ``input_sizes``.
    Keyword arguments are forwarded to
    :func:`grid_success_probability_labeled_dimensions`.
    """
    matrix = np.zeros((len(relevant_fractions), len(input_sizes)))
    for row, fraction in enumerate(relevant_fractions):
        for column, size in enumerate(input_sizes):
            matrix[row, column] = grid_success_probability_labeled_dimensions(
                int(size), relevant_fraction=float(fraction), **kwargs
            )
    return matrix
