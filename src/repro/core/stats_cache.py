"""Shared per-iteration statistics engine for the SSPC hot loop.

Every pass of the SSPC main loop (Listing 2) needs the same per-cluster,
per-dimension statistics — mean, median and variance of the member
block — in three different places:

* ``SelectDim`` compares the dispersion against the selection threshold
  (:mod:`repro.core.dimension_selection`),
* the objective evaluation computes ``phi_ij`` from the same dispersion
  (:mod:`repro.core.objective`), and
* the representative-replacement step takes the cluster median
  (:mod:`repro.core.representatives`).

The seed implementation recomputed the full statistics from scratch at
each site — three full passes over every cluster's data block per
iteration, with the median (a sort-based :math:`O(m d \\log m)`
operation) dominating.  :class:`ClusterStatsCache` removes the
redundancy: statistics are computed **exactly once per distinct member
set** and shared by every consumer.

Design
------
The cache is keyed on a cheap fingerprint of the member index array (its
raw bytes).  Two lookups hit the same entry exactly when the member
arrays are byte-identical, which also guarantees the returned statistics
are *bit-identical* to a direct :meth:`ClusterStatistics.from_members`
call — the single-statistics-pass invariant never changes results, only
how often they are computed.  A membership change produces a different
byte string, so stale entries are never returned; old entries are
evicted in insertion order once ``max_entries`` is exceeded (the SSPC
loop only ever needs the current iteration's ``k`` member sets plus the
best-so-far snapshot, so a small bound suffices).

The cache is shared beyond SSPC: :class:`~repro.core.objective.ObjectiveFunction`
creates one by default (so ``SelectDim``, ``phi`` and the seed-group
builder all hit the same store), and the baselines
(:mod:`repro.baselines.harp`, :mod:`repro.baselines.proclus`) reuse the
same engine for their own per-cluster statistics.

Setting ``max_entries=0`` disables storage entirely (every call computes
fresh statistics); the micro-benchmark
(``benchmarks/bench_hotpath.py``) uses this to time the naive reference
path against the cached path on identical code.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.objective import ClusterStatistics

__all__ = ["ClusterStatsCache", "merge_mean_variance"]


def merge_mean_variance(
    size_a: int,
    mean_a: np.ndarray,
    variance_a: np.ndarray,
    size_b: int,
    mean_b: np.ndarray,
    variance_b: np.ndarray,
) -> Tuple[int, np.ndarray, np.ndarray]:
    """Pool two disjoint blocks' (size, mean, variance) without their data.

    Implements Chan et al.'s parallel update of the sum of squared
    deviations: with ``M2 = (n - 1) * variance`` (``ddof=1``, and ``M2 = 0``
    for blocks of fewer than two rows, matching
    :meth:`~repro.core.objective.ClusterStatistics.from_members`)::

        n      = n_a + n_b
        delta  = mean_b - mean_a
        mean   = mean_a + delta * n_b / n
        M2     = M2_a + M2_b + delta^2 * n_a * n_b / n

    This is the serving-side ``partial_update`` primitive: a cluster's
    cached statistics are folded together with a batch of newly accepted
    points in O(d), no refit over the historical members required.  The
    result agrees with a from-scratch pass over the concatenated blocks
    up to floating-point rounding.

    Parameters
    ----------
    size_a, mean_a, variance_a:
        Statistics of the first block (``size_a >= 0``; the mean/variance
        of an empty block are ignored).
    size_b, mean_b, variance_b:
        Statistics of the second block.

    Returns
    -------
    (int, numpy.ndarray, numpy.ndarray)
        Merged ``(size, mean, variance)`` with ``ddof=1`` variance
        (zeros when the merged block has fewer than two rows).
    """
    size_a = int(size_a)
    size_b = int(size_b)
    if size_a < 0 or size_b < 0:
        raise ValueError("block sizes must be non-negative")
    mean_a = np.asarray(mean_a, dtype=float)
    mean_b = np.asarray(mean_b, dtype=float)
    variance_a = np.asarray(variance_a, dtype=float)
    variance_b = np.asarray(variance_b, dtype=float)
    if size_a == 0:
        return size_b, mean_b.copy(), variance_b.copy()
    if size_b == 0:
        return size_a, mean_a.copy(), variance_a.copy()
    size = size_a + size_b
    delta = mean_b - mean_a
    mean = mean_a + delta * (size_b / size)
    m2 = (
        variance_a * max(size_a - 1, 0)
        + variance_b * max(size_b - 1, 0)
        + delta ** 2 * (size_a * size_b / size)
    )
    if size > 1:
        variance = m2 / (size - 1)
    else:
        variance = np.zeros_like(mean)
    return size, mean, variance


class ClusterStatsCache:
    """Compute-once store of :class:`ClusterStatistics` per member set.

    Parameters
    ----------
    data:
        The ``(n, d)`` dataset all statistics are computed against.
    max_entries:
        Upper bound on stored entries; the oldest entry is evicted when
        the bound is exceeded.  ``0`` disables caching (pass-through
        mode, used as the naive reference in benchmarks and tests).

    Attributes
    ----------
    hits, misses:
        Lookup counters.  ``misses`` equals the number of full-data
        statistics passes actually performed, so consumers (tests, the
        hot-path benchmark) can assert the single-pass invariant.
    evictions:
        Entries dropped by the LRU bound.  A non-trivial eviction count
        with a low :attr:`hit_rate` means the working set outgrew
        ``max_entries`` (streaming membership churn does this) and the
        bound should be raised by whoever constructed the cache —
        ``SSPC(stats_cache_max_entries=...)`` plumbs it through for the
        fit path.
    """

    def __init__(self, data: np.ndarray, *, max_entries: int = 128) -> None:
        # Statistics must be computed at the same dtype every consumer
        # uses (float64), or the bit-identity contract breaks for
        # float32 / list inputs.
        self.data = np.asarray(data, dtype=float)
        if self.data.ndim != 2:
            raise ValueError("data must be a 2-d array")
        if max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        self.max_entries = int(max_entries)
        self._store: "OrderedDict[bytes, ClusterStatistics]" = OrderedDict()
        self._mean_store: "OrderedDict[bytes, np.ndarray]" = OrderedDict()
        self._global: Optional[ClusterStatistics] = None
        self._global_variance: Optional[np.ndarray] = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def statistics(self, members: Sequence[int]) -> ClusterStatistics:
        """Statistics of ``members``, computed at most once per member set.

        The key is the byte representation of the (order-preserving)
        ``int64`` member array, so cached results are bit-identical to a
        direct computation and a membership change can never alias a
        stale entry.
        """
        members = np.ascontiguousarray(members, dtype=np.int64)
        if self.max_entries == 0:
            self.misses += 1
            return ClusterStatistics.from_members(self.data, members)
        key = members.tobytes()
        cached = self._store.get(key)
        if cached is not None:
            self.hits += 1
            self._store.move_to_end(key)
            return cached
        self.misses += 1
        stats = ClusterStatistics.from_members(self.data, members)
        self._store[key] = stats
        while len(self._store) > self.max_entries:
            self._store.popitem(last=False)
            self.evictions += 1
        return stats

    def median(self, members: Sequence[int]) -> np.ndarray:
        """Per-dimension median of ``members`` (shares the cached pass)."""
        return self.statistics(members).median

    def mean(self, members: Sequence[int]) -> np.ndarray:
        """Per-dimension mean of ``members`` without a full statistics pass.

        A lighter entry point for consumers that never need the median or
        variance (e.g. the PROCLUS cost evaluation): a full cached
        statistics entry is reused when one exists, otherwise only the
        mean is computed and memoized — the expensive sort-based median
        is never triggered.
        """
        members = np.ascontiguousarray(members, dtype=np.int64)
        if members.size == 0:
            return np.zeros(self.data.shape[1])
        if self.max_entries == 0:
            return self.data[members].mean(axis=0)
        key = members.tobytes()
        full = self._store.get(key)
        if full is not None:
            self.hits += 1
            return full.mean
        cached = self._mean_store.get(key)
        if cached is not None:
            self.hits += 1
            self._mean_store.move_to_end(key)
            return cached
        mean = self.data[members].mean(axis=0)
        self._mean_store[key] = mean
        while len(self._mean_store) > self.max_entries:
            self._mean_store.popitem(last=False)
            self.evictions += 1
        return mean

    @property
    def global_statistics(self) -> ClusterStatistics:
        """Statistics of the full dataset (computed once, never evicted)."""
        if self._global is None:
            self._global = ClusterStatistics.from_members(
                self.data, np.arange(self.data.shape[0], dtype=np.int64)
            )
        return self._global

    @property
    def global_variance(self) -> np.ndarray:
        """Global per-column variance (``ddof=1``), computed once.

        Cheaper than :attr:`global_statistics` for consumers that never
        need the global median (HARP's relevance index, threshold
        fitting): no sort-based median pass is triggered.
        """
        if self._global is not None:
            return self._global.variance
        if self._global_variance is None:
            self._global_variance = self.data.var(axis=0, ddof=1)
        return self._global_variance

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def n_stat_passes(self) -> int:
        """Number of full statistics computations performed so far."""
        return self.misses

    @property
    def n_entries(self) -> int:
        """Number of member sets currently stored."""
        return len(self._store)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counters(self) -> dict:
        """Snapshot of the lookup counters (diagnostics / bench payloads)."""
        return {
            "hits": int(self.hits),
            "misses": int(self.misses),
            "evictions": int(self.evictions),
            "entries": int(len(self._store)),
            "hit_rate": float(self.hit_rate),
        }

    def reset_counters(self) -> None:
        """Zero the lookup counters while keeping every cached entry.

        :meth:`SSPC.fit` calls this at the start of every run so
        :meth:`counters` / :attr:`hit_rate` describe exactly one fit —
        even when a ``_stats_cache_factory`` override shares one cache
        across estimators (warm entries stay warm; the tally restarts).
        """
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def clear(self) -> None:
        """Drop every stored entry and reset the counters."""
        self._store.clear()
        self._mean_store.clear()
        self._global = None
        self._global_variance = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __repr__(self) -> str:
        return "ClusterStatsCache(entries=%d, hits=%d, misses=%d, evictions=%d)" % (
            len(self._store),
            self.hits,
            self.misses,
            self.evictions,
        )
