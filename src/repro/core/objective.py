"""The SSPC objective function ``phi`` (Section 3, Eq. 1-4).

The objective combines object clustering and dimension selection in a
single optimisation problem.  For a clustering ``{C_i}`` with selected
dimension sets ``{V_i}``::

    phi     = (1 / (n d)) * sum_i phi_i                           (Eq. 1)
    phi_i   = sum_{v_j in V_i} phi_ij                             (Eq. 2)
    phi_ij  = n_i - 1 - (1 / s_hat^2_ij) * sum_{x in C_i} (x_j - median_ij)^2   (Eq. 3)
            = (n_i - 1) (1 - (s^2_ij + (mu_ij - median_ij)^2) / s_hat^2_ij)     (Eq. 4)

where ``n_i`` is the cluster size, ``median_ij`` / ``mu_ij`` / ``s^2_ij``
are the sample median / mean / variance of the cluster's projection on
dimension ``v_j``, and ``s_hat^2_ij`` is the selection threshold
(:mod:`repro.core.thresholds`).

Design properties (matching the three design goals in the paper):

1. Dimension selection follows directly from the data properties of each
   cluster/dimension pair (Lemma 1): select ``v_j`` exactly when
   ``s^2_ij + (mu_ij - median_ij)^2 < s_hat^2_ij``.
2. Better (lower variance) dimensions contribute *more* to ``phi_i``
   because ``phi_ij`` grows as ``s^2_ij`` shrinks, so the score cannot be
   dominated by accidentally selected irrelevant dimensions.
3. Dispersion is measured around the cluster *median*, making the score
   robust to outliers.

Note on Eq. 3 vs Eq. 4: expanding the sum of squared deviations from the
median gives ``sum (x_j - median)^2 = (n_i - 1) s^2_ij + n_i (mu_ij -
median_ij)^2``, so the two forms differ by whether the mean-median offset
is weighted by ``n_i`` or ``n_i - 1``.  The paper states them as equal;
we follow Eq. 4 (the form Lemma 1 and SelectDim are built on) as the
canonical definition and expose Eq. 3 separately for comparison.  The
difference vanishes as ``n_i`` grows and never changes which dimensions
are selected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.thresholds import SelectionThreshold
from repro.utils.validation import check_array_2d


def grouped_assignment_gains(
    points: np.ndarray,
    cluster_dimensions: Sequence[np.ndarray],
    cluster_centers: Sequence[np.ndarray],
    cluster_thresholds: Sequence[np.ndarray],
) -> np.ndarray:
    """The grouped broadcast kernel shared by training and serving.

    Computes the ``(n, k)`` matrix of assignment gains ::

        gain_i(x) = sum_{v_j in V_i} (1 - (x_j - c_ij)^2 / s_hat^2_ij)

    for every point/cluster pair at once.  Clusters are grouped by
    selected-dimension count and each group is evaluated in one
    broadcasted pass over a contiguous ``(n, g, c)`` gather of
    ``points``; grouping (rather than padding) keeps every per-cluster
    reduction over exactly the same elements in the same order as a
    scalar one-cluster evaluation, so the matrix is **bit-identical** to
    ``k`` separate passes.

    This function is the *reference* kernel and the single source of
    truth for the gain arithmetic.  The hot paths — the training loop
    (:meth:`ObjectiveFunction.assignment_gains_matrix`), the serving
    index (:meth:`repro.serving.index.ProjectedClusterIndex.gains_matrix`)
    and, through the index, the streaming engine — are backed by the
    stateful :class:`~repro.core.assignment_engine.AssignmentEngine`,
    which holds the grouped stacks persistently, recomputes only dirty
    columns against a fixed point set and evaluates in bounded row
    blocks; its results are bit-identical to this kernel (enforced by
    the equivalence suite and the ``perf_assignment`` bench scenario).

    Parameters
    ----------
    points:
        ``(n, d)`` rows to score.  Callers are expected to pass the
        canonical representation (C-contiguous float64, e.g. via
        :func:`repro.utils.validation.check_array_2d`) — the kernel
        indexes columns directly and performs no coercion of its own.
    cluster_dimensions:
        Per-cluster selected dimension index arrays.  Clusters with an
        empty array receive a ``-inf`` column (they can never win).
    cluster_centers, cluster_thresholds:
        Per-cluster center values and thresholds, each *already
        restricted* to the cluster's selected dimensions (length
        ``|V_i|`` arrays aligned with ``cluster_dimensions``),
        preferably already contiguous float64 — list-of-array inputs are
        coerced here on every call, which is exactly the per-call cost
        the persistent engine plan exists to avoid.
    """
    k = len(cluster_dimensions)
    if not (len(cluster_centers) == len(cluster_thresholds) == k):
        raise ValueError("cluster_dimensions, cluster_centers and cluster_thresholds must align")
    gains = np.full((points.shape[0], k), -np.inf)
    groups: dict = {}
    for index in range(k):
        count = int(np.asarray(cluster_dimensions[index]).size)
        if count:
            groups.setdefault(count, []).append(index)
    for count, cluster_ids in groups.items():
        dims_stack = np.stack(
            [np.asarray(cluster_dimensions[index], dtype=int) for index in cluster_ids]
        )
        centers = np.stack(
            [np.asarray(cluster_centers[index], dtype=float) for index in cluster_ids]
        )
        thresholds = np.stack(
            [np.asarray(cluster_thresholds[index], dtype=float) for index in cluster_ids]
        )
        deltas = points[:, dims_stack] - centers[None, :, :]
        gains[:, cluster_ids] = (1.0 - (deltas ** 2) / thresholds[None, :, :]).sum(axis=2)
    return gains


@dataclass
class ClusterStatistics:
    """Per-dimension statistics of one cluster used by the objective.

    Attributes
    ----------
    size:
        Number of member objects ``n_i``.
    mean, median, variance:
        Per-dimension sample mean ``mu_ij``, median and variance
        ``s^2_ij`` (``ddof=1``; zero when fewer than two members).
    """

    size: int
    mean: np.ndarray
    median: np.ndarray
    variance: np.ndarray

    @classmethod
    def from_members(cls, data: np.ndarray, members: Sequence[int]) -> "ClusterStatistics":
        """Compute the statistics of ``members`` over every dimension."""
        members = np.asarray(members, dtype=int)
        n_dimensions = data.shape[1]
        if members.size == 0:
            zeros = np.zeros(n_dimensions)
            return cls(size=0, mean=zeros.copy(), median=zeros.copy(), variance=zeros.copy())
        block = data[members]
        mean = block.mean(axis=0)
        median = np.median(block, axis=0)
        if members.size > 1:
            variance = block.var(axis=0, ddof=1)
        else:
            variance = np.zeros(n_dimensions)
        return cls(size=int(members.size), mean=mean, median=median, variance=variance)

    def dispersion(self) -> np.ndarray:
        """The quantity compared against the threshold: ``s^2_ij + (mu_ij - median_ij)^2``."""
        return self.variance + (self.mean - self.median) ** 2


class ObjectiveFunction:
    """Evaluator for the SSPC objective on a fixed dataset.

    Parameters
    ----------
    data:
        The ``(n, d)`` dataset.
    threshold:
        A fitted (or to-be-fitted) :class:`SelectionThreshold`; when it is
        not yet fitted the constructor fits it on ``data``.
    stats_cache:
        A :class:`~repro.core.stats_cache.ClusterStatsCache` shared by
        every statistics consumer.  ``None`` (default) creates a fresh
        cache for this evaluator; pass an explicit cache to share one
        workspace across evaluators, or a cache with ``max_entries=0``
        to disable caching (the naive reference path).

    Notes
    -----
    The evaluator is stateless with respect to clusterings: every method
    receives explicit member / dimension index arrays so the SSPC main
    loop, the tests and the ablation benches can all share one instance.
    Cached statistics are keyed on the exact member byte sequence, so
    results are bit-identical with and without the cache.
    """

    def __init__(
        self, data, threshold: SelectionThreshold, *,
        stats_cache=None, assignment_backend=None,
    ) -> None:
        self.data = check_array_2d(data, name="data", min_rows=2)
        if not threshold.is_fitted:
            threshold.fit(self.data)
        elif threshold.global_variance.shape[0] != self.data.shape[1]:
            raise ValueError(
                "threshold was fitted on %d dimensions but the data has %d"
                % (threshold.global_variance.shape[0], self.data.shape[1])
            )
        self.threshold = threshold
        if stats_cache is None:
            from repro.core.stats_cache import ClusterStatsCache

            stats_cache = ClusterStatsCache(self.data)
        elif stats_cache.data is not self.data:
            # A cache keyed against different data would silently serve
            # statistics of the wrong dataset.
            if stats_cache.data.shape != self.data.shape or not np.array_equal(
                stats_cache.data, self.data
            ):
                raise ValueError("stats_cache was built for different data")
        self.stats_cache = stats_cache
        # Lazily built incremental backend of assignment_gains_matrix:
        # a persistent grouped plan plus a cached (n, k) gain matrix
        # whose columns are recomputed only for clusters that changed.
        self._assignment_engine = None
        self._assignment_backend = assignment_backend
        self._assignment_dirty_hints: set = set()

    # ------------------------------------------------------------------ #
    # basic shapes
    # ------------------------------------------------------------------ #
    @property
    def n_objects(self) -> int:
        """Number of objects ``n``."""
        return int(self.data.shape[0])

    @property
    def n_dimensions(self) -> int:
        """Number of dimensions ``d``."""
        return int(self.data.shape[1])

    # ------------------------------------------------------------------ #
    # per-dimension scores
    # ------------------------------------------------------------------ #
    def cluster_statistics(self, members: Sequence[int]) -> ClusterStatistics:
        """Statistics of a member set over all dimensions.

        Served from the shared :class:`ClusterStatsCache`, so repeated
        queries for the same member set (``SelectDim``, the ``phi``
        evaluation and the representative replacement all need it every
        iteration) cost a single statistics pass.
        """
        return self.stats_cache.statistics(members)

    def phi_ij_all(
        self,
        members: Sequence[int],
        *,
        statistics: Optional[ClusterStatistics] = None,
    ) -> np.ndarray:
        """Vector of ``phi_ij`` (Eq. 4) over every dimension for one cluster."""
        stats_ = statistics if statistics is not None else self.cluster_statistics(members)
        if stats_.size == 0:
            return np.zeros(self.n_dimensions)
        thresholds = self.threshold.values(stats_.size)
        return (stats_.size - 1) * (1.0 - stats_.dispersion() / thresholds)

    def phi_ij_all_eq3(
        self,
        members: Sequence[int],
        *,
        center: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Vector of ``phi_ij`` following Eq. 3 literally.

        ``phi_ij = n_i - 1 - (1/s_hat^2_ij) sum_x (x_j - c_j)^2`` where the
        center ``c`` defaults to the member median but may be overridden —
        the SSPC assignment step substitutes the cluster representative's
        projection for the median (Listing 2, step 3).
        """
        members = np.asarray(members, dtype=int)
        if members.size == 0:
            return np.zeros(self.n_dimensions)
        block = self.data[members]
        if center is None:
            center = np.median(block, axis=0)
        center = np.asarray(center, dtype=float).ravel()
        if center.shape[0] != self.n_dimensions:
            raise ValueError("center must have one value per dimension")
        squared = ((block - center) ** 2).sum(axis=0)
        thresholds = self.threshold.values(members.size)
        return members.size - 1.0 - squared / thresholds

    def phi_i(
        self,
        members: Sequence[int],
        dimensions: Sequence[int],
        *,
        statistics: Optional[ClusterStatistics] = None,
    ) -> float:
        """Per-cluster score ``phi_i`` (Eq. 2) over the selected dimensions."""
        dimensions = np.asarray(dimensions, dtype=int)
        if dimensions.size == 0:
            return 0.0
        scores = self.phi_ij_all(members, statistics=statistics)
        return float(scores[dimensions].sum())

    def phi(
        self,
        clusters: Iterable[Sequence[int]],
        dimensions: Iterable[Sequence[int]],
    ) -> float:
        """Overall objective ``phi`` (Eq. 1) for a full clustering.

        Parameters
        ----------
        clusters:
            Iterable of member index arrays, one per cluster.
        dimensions:
            Iterable of selected dimension index arrays, aligned with
            ``clusters``.
        """
        clusters = list(clusters)
        dimensions = list(dimensions)
        if len(clusters) != len(dimensions):
            raise ValueError(
                "got %d clusters but %d dimension sets" % (len(clusters), len(dimensions))
            )
        total = 0.0
        for members, dims in zip(clusters, dimensions):
            total += self.phi_i(members, dims)
        return float(total / (self.n_objects * self.n_dimensions))

    # ------------------------------------------------------------------ #
    # assignment support
    # ------------------------------------------------------------------ #
    def assignment_gains(
        self,
        representative: np.ndarray,
        dimensions: Sequence[int],
        cluster_size: int,
    ) -> np.ndarray:
        """Improvement of ``phi_i`` from adding each object to a cluster.

        During the assignment step the cluster median is temporarily
        substituted by the representative's projection (Listing 2,
        step 3).  With that substitution, Eq. 3 makes the contribution of
        a newly added object ``x`` to ``phi_i`` equal to::

            sum_{v_j in V_i} (1 - (x_j - rep_j)^2 / s_hat^2_ij)

        which is what this method returns for every object at once.
        Objects whose gain is not positive for any cluster are placed on
        the outlier list by the caller.

        Parameters
        ----------
        representative:
            The cluster representative's full ``d``-vector.
        dimensions:
            The cluster's currently selected dimensions ``V_i``.
        cluster_size:
            Current size of the cluster, used by cluster-size dependent
            threshold schemes (the chi-square scheme).  The paper's
            assignment step evaluates candidates against the cluster as
            it grows; using the size at the start of the pass is the
            stable choice and is what we do here.

        Returns
        -------
        numpy.ndarray
            Length-``n`` vector of score gains.
        """
        dimensions = np.asarray(dimensions, dtype=int)
        representative = np.asarray(representative, dtype=float).ravel()
        if representative.shape[0] != self.n_dimensions:
            raise ValueError("representative must have one value per dimension")
        if dimensions.size == 0:
            return np.zeros(self.n_objects)
        thresholds = self.threshold.values(max(cluster_size, 2))[dimensions]
        deltas = self.data[:, dimensions] - representative[dimensions]
        return (1.0 - (deltas ** 2) / thresholds).sum(axis=1)

    def assignment_gains_matrix(
        self,
        representatives: Sequence[np.ndarray],
        dimension_sets: Sequence[Sequence[int]],
        cluster_sizes: Sequence[int],
    ) -> np.ndarray:
        """Fused assignment kernel: the full ``(n, k)`` gains matrix.

        Evaluates :meth:`assignment_gains` for every cluster at once,
        backed by the incremental
        :class:`~repro.core.assignment_engine.AssignmentEngine`: the
        grouped per-cluster stacks persist across calls, the submitted
        clusters are diffed against that plan (clusters hinted via
        :meth:`mark_assignment_dirty` skip the diff), and only the gain
        columns of clusters that actually changed are recomputed — the
        rest are served from the cached ``(n, k)`` matrix.  Columns are
        evaluated in bounded row blocks through preallocated workspaces,
        so no ``(n, g, c)`` broadcast is ever materialized.

        The matrix is **bit-identical** to stacking ``k``
        :meth:`assignment_gains` calls (and to
        :func:`grouped_assignment_gains`): grouping keeps every
        per-cluster reduction over exactly the same elements in the same
        order as the one-cluster kernel, and neither caching, row
        blocking nor dirty-only recomputation changes a single bit.

        Clusters with an empty dimension set receive ``-inf`` (they can
        never win an assignment), matching the assignment step's
        skip-and-keep--inf behaviour.

        Parameters
        ----------
        representatives:
            Per-cluster full ``d``-vectors.
        dimension_sets:
            Per-cluster selected dimension index arrays.
        cluster_sizes:
            Per-cluster sizes for the size-dependent threshold schemes;
            values below 2 are clamped to 2 as in the scalar kernel.

        Returns
        -------
        numpy.ndarray
            Read-only ``(n, k)`` matrix of per-object score gains.  The
            buffer is the engine's live cache: consume it before the
            next ``assignment_gains_matrix`` call (copy it to keep it).
        """
        from repro.core.assignment_engine import AssignmentEngine

        k = len(dimension_sets)
        if not (len(representatives) == len(cluster_sizes) == k):
            raise ValueError("representatives, dimension_sets and cluster_sizes must align")
        dimensions = [np.asarray(dims, dtype=int) for dims in dimension_sets]
        centers = [
            np.asarray(representatives[index], dtype=float).ravel()[dimensions[index]]
            for index in range(k)
        ]
        thresholds = [
            self.threshold.values(max(int(cluster_sizes[index]), 2))[dimensions[index]]
            for index in range(k)
        ]
        engine = self._assignment_engine
        if engine is None:
            engine = self._assignment_engine = AssignmentEngine(
                self.data, backend=self._assignment_backend
            )
        hints = self._assignment_dirty_hints
        self._assignment_dirty_hints = set()
        if engine.n_clusters != k:
            engine.set_clusters(dimensions, centers, thresholds)
        else:
            for index in range(k):
                engine.update_cluster(
                    index,
                    dimensions[index],
                    centers[index],
                    thresholds[index],
                    force=index in hints,
                )
        gains = engine.gains().view()
        gains.flags.writeable = False
        return gains

    def mark_assignment_dirty(self, indices) -> None:
        """Hint that these clusters changed since the last gains call.

        The dirty-tracking contract of the incremental assignment
        backend: callers that *know* a cluster mutated (membership
        change, median replacement, ``SelectDim`` re-run, threshold
        refresh) report it here and the next
        :meth:`assignment_gains_matrix` call recomputes those columns
        unconditionally.  Unhinted clusters are still value-diffed
        against the persistent plan, so missing a hint can never produce
        a stale result — hints only skip the comparison.
        """
        self._assignment_dirty_hints.update(int(index) for index in indices)
