"""Object assignment step of the SSPC main loop (Listing 2, step 3).

Every object in the dataset is assigned to the cluster that gives the
greatest improvement to the objective score, where the cluster median in
Eq. 3/4 is temporarily substituted by the projection of the current
cluster representative (medoid or median).  Objects that do not improve
the score of any cluster are placed on the outlier list.

The per-object improvement of adding ``x`` to cluster ``C_i`` with
representative ``r`` and selected dimensions ``V_i`` is

    gain_i(x) = sum_{v_j in V_i} (1 - (x_j - r_j)^2 / s_hat^2_ij)

(see :meth:`repro.core.objective.ObjectiveFunction.assignment_gains`).
An optional pairwise-constraint set (extension) restricts which clusters
an object may join.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.model import OUTLIER_LABEL
from repro.core.objective import ObjectiveFunction
from repro.semisupervision.constraints import PairwiseConstraints
from repro.semisupervision.knowledge import Knowledge


@dataclass
class ClusterState:
    """Mutable per-cluster state carried across SSPC iterations.

    Attributes
    ----------
    representative:
        Full ``d``-vector of the current representative (a medoid's row
        or the cluster median).
    dimensions:
        Currently selected dimensions ``V_i``.
    members:
        Member indices from the latest assignment (empty before the first
        assignment of an iteration).
    size_hint:
        Cluster size used for size-dependent thresholds during the next
        assignment pass (the previous iteration's size, or a prior guess).
    """

    representative: np.ndarray
    dimensions: np.ndarray
    members: np.ndarray
    size_hint: int

    def copy(self) -> "ClusterState":
        """Deep copy (used to snapshot the best clustering found so far)."""
        return ClusterState(
            representative=self.representative.copy(),
            dimensions=self.dimensions.copy(),
            members=self.members.copy(),
            size_hint=int(self.size_hint),
        )


def compute_gains_matrix(
    objective: ObjectiveFunction,
    states: Sequence[ClusterState],
    *,
    fused: bool = True,
) -> np.ndarray:
    """The ``(n, k)`` assignment-gain matrix for the current states.

    With ``fused=True`` (default) the matrix comes from the incremental
    assignment engine behind
    :meth:`~repro.core.objective.ObjectiveFunction.assignment_gains_matrix`:
    a persistent grouped plan, blocked evaluation, and per-cluster dirty
    tracking so that between iterations only the columns of clusters
    that actually changed are recomputed (the returned matrix is the
    engine's read-only cache).  ``fused=False`` keeps the
    one-cluster-at-a-time reference loop, which always recomputes
    everything.  The two paths are bit-identical — the naive path exists
    for the equivalence tests and the hot-path benchmark.
    """
    n_objects = objective.n_objects
    if not fused:
        gains = np.full((n_objects, len(states)), -np.inf)
        for cluster_index, state in enumerate(states):
            if state.dimensions.size == 0:
                continue
            gains[:, cluster_index] = objective.assignment_gains(
                state.representative, state.dimensions, max(state.size_hint, 2)
            )
        return gains
    return objective.assignment_gains_matrix(
        [state.representative for state in states],
        [state.dimensions for state in states],
        [max(state.size_hint, 2) for state in states],
    )


def assign_objects(
    objective: ObjectiveFunction,
    states: Sequence[ClusterState],
    *,
    knowledge: Optional[Knowledge] = None,
    constraints: Optional[PairwiseConstraints] = None,
    return_gains: bool = False,
):
    """Assign every object to the best cluster or the outlier list.

    Parameters
    ----------
    objective:
        The fitted objective function.
    states:
        Current per-cluster states (representative + selected dimensions).
    knowledge:
        When supplied, labeled objects are pinned to their labeled class —
        the input knowledge is assumed correct (Section 3 assumption 4),
        so the assignment never contradicts it.
    constraints:
        Optional must-link / cannot-link constraints (extension); applied
        after the gain computation by masking forbidden clusters.
    return_gains:
        When ``True`` also return the ``(n, k)`` gain matrix so callers
        (``SSPC._force_assign``, diagnostics) can reuse it instead of
        recomputing the same gains cluster by cluster.

    Returns
    -------
    numpy.ndarray or (numpy.ndarray, numpy.ndarray)
        Length-``n`` label vector (``-1`` marks outliers), plus the gain
        matrix when ``return_gains`` is set.
    """
    n_objects = objective.n_objects
    n_clusters = len(states)
    if n_clusters == 0:
        labels = np.full(n_objects, OUTLIER_LABEL, dtype=int)
        if return_gains:
            return labels, np.full((n_objects, 0), -np.inf)
        return labels

    gains = compute_gains_matrix(objective, states)

    labels = np.full(n_objects, OUTLIER_LABEL, dtype=int)
    best_cluster = np.argmax(gains, axis=1)
    best_gain = gains[np.arange(n_objects), best_cluster]
    positive = best_gain > 0.0
    labels[positive] = best_cluster[positive]

    if constraints is not None and not constraints.is_empty():
        labels = _apply_constraints(labels, gains, constraints)

    if knowledge is not None and not knowledge.objects.is_empty():
        for class_label in knowledge.objects.classes():
            if class_label < n_clusters:
                labels[knowledge.objects.for_class(class_label)] = class_label

    if return_gains:
        return labels, gains
    return labels


def _apply_constraints(
    labels: np.ndarray,
    gains: np.ndarray,
    constraints: PairwiseConstraints,
) -> np.ndarray:
    """Re-assign constrained objects so the constraints are honoured.

    Objects are revisited in decreasing order of their best gain so that
    strongly attracted objects anchor their must-link partners.  An
    object whose allowed clusters all have non-positive gain is forced
    into the best allowed cluster anyway when a must-link partner is
    already assigned there (keeping the pair together outranks the
    outlier rule), otherwise it stays an outlier.

    The object→partners maps are built once up front, so the whole pass
    costs ``O(objects + links)`` instead of rescanning every link list
    for every constrained object.
    """
    labels = labels.copy()
    n_clusters = gains.shape[1]
    must_partners, cannot_partners = constraints.partner_maps()
    constrained_objects = sorted(set(must_partners) | set(cannot_partners))
    order = sorted(
        constrained_objects,
        key=lambda index: -float(np.max(gains[index])) if np.isfinite(np.max(gains[index])) else 0.0,
    )
    for object_index in order:
        allowed = constraints.allowed_clusters(
            object_index, labels, n_clusters, partner_maps=(must_partners, cannot_partners)
        )
        allowed_gains = gains[object_index, allowed]
        best_position = int(np.argmax(allowed_gains))
        best_cluster = int(allowed[best_position])
        has_assigned_partner = any(
            labels[partner] == best_cluster
            for partner in must_partners.get(object_index, ())
        )
        if allowed_gains[best_position] > 0.0 or has_assigned_partner:
            labels[object_index] = best_cluster
        else:
            labels[object_index] = OUTLIER_LABEL
    return labels


def members_from_labels(labels: np.ndarray, n_clusters: int) -> List[np.ndarray]:
    """Split a label vector into per-cluster member index arrays."""
    return [np.flatnonzero(labels == cluster_index) for cluster_index in range(n_clusters)]
