"""Incremental assignment engine for the SSPC gain kernel.

The ``(n, k)`` assignment-gain matrix (Listing 2 step 3; see
:func:`repro.core.objective.grouped_assignment_gains`) is the hot path of
every layer built on the reproduction: the training loop re-evaluates it
once per iteration, the serving index once per query batch and the
streaming engine once per micro-batch.  The shared kernel is a pure
function — every call re-stacks the per-cluster ``dims`` / ``centers`` /
``thresholds`` lists into grouped arrays, allocates the full ``(n, g,
c)`` gather/delta temporaries and recomputes **all** ``k`` columns, even
when nothing changed since the previous call.

:class:`AssignmentEngine` makes the kernel *stateful* around three
observations:

1. **Persistent plan** — the grouped stacks are built once
   (:meth:`set_clusters`) and surgically patched when a cluster mutates
   (:meth:`update_cluster` / :meth:`add_cluster` /
   :meth:`remove_cluster`): an unchanged cluster costs nothing per call,
   a changed one a single row write (or a two-group restack when its
   selected-dimension *count* changes).
2. **Dirty-cluster tracking** — a gain column is a pure function of
   ``(points, dims_i, center_i, thresholds_i)``, so when the engine is
   bound to a *fixed* point set (the training data) it caches the
   ``(n, k)`` matrix and recomputes only the columns of clusters marked
   dirty.  Callers may mark clusters dirty explicitly (membership
   change, median replacement, ``SelectDim`` re-run, threshold refresh)
   via ``force=True`` / :meth:`mark_dirty`; otherwise
   :meth:`update_cluster` diffs the submitted values against the plan
   and leaves bit-identical clusters clean — the exact backstop that
   makes the cache safe no matter what the caller forgets to report.
3. **Blocked, preallocated evaluation** — columns are evaluated in
   bounded row blocks through reusable flat workspaces filled with
   ``out=`` ufuncs, so peak memory is capped at
   ``block_rows * g * c`` elements instead of the full ``(n, g, c)``
   broadcast, and steady-state evaluation allocates nothing beyond the
   result itself.

Bit-identity contract
---------------------
Results are **bit-identical** to
:func:`~repro.core.objective.grouped_assignment_gains`: the grouping by
selected-dimension count is the same, the element-wise operation
sequence (gather, subtract, square, divide, subtract-from-one) is the
same, and each per-cluster reduction runs over the same ``c`` contiguous
elements with numpy's pairwise summation — which is independent of both
the row blocking and of which other clusters share the stack.  The
equivalence suite (``tests/test_assignment_engine.py``) and the
``perf_assignment`` bench scenario enforce this after every mutation.

Kernel backends
---------------
The column evaluator itself is a pluggable strategy
(:mod:`repro.core.backends`): ``reference`` (the blocked numpy loop,
the bit-identity oracle), ``threaded`` (row-chunk thread pool,
bit-identical), ``compiled`` (optional Numba kernel, bit-identical,
loud fallback to threaded) and ``float32`` (opt-in low precision,
tolerance-banded).  Whenever a non-reference backend is active the
engine re-evaluates a small sample of rows through a private reference
oracle on every recompute — exact comparison for float64 backends,
the backend's declared ``rtol``/``atol`` band for float32 — so a
kernel that drifts from the contract fails fast instead of serving
wrong gains.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.backends import resolve_backend
from repro.core.backends.reference import (
    MAX_WORKSPACE_ELEMENTS,
    ReferenceBackend,
)

__all__ = ["AssignmentEngine", "DEFAULT_BLOCK_ROWS", "MAX_WORKSPACE_ELEMENTS"]

#: Default number of rows evaluated per block.  The effective block also
#: honours :data:`MAX_WORKSPACE_ELEMENTS`, so wide plans shrink it.
DEFAULT_BLOCK_ROWS = 2048


class _GroupPlan:
    """The stacked arrays of every cluster sharing one dimension count."""

    __slots__ = ("cluster_ids", "dims", "centers", "thresholds")

    def __init__(
        self,
        cluster_ids: np.ndarray,
        dims: np.ndarray,
        centers: np.ndarray,
        thresholds: np.ndarray,
    ) -> None:
        self.cluster_ids = cluster_ids
        self.dims = dims
        self.centers = centers
        self.thresholds = thresholds


def _as_dims(dimensions) -> np.ndarray:
    # Always a fresh owning copy: the plan diffs future submissions
    # against these arrays, so storing a caller's array by reference
    # would make an in-place mutation + resubmission compare the array
    # against itself and silently serve stale cached gains.
    return np.array(np.asarray(dimensions, dtype=np.intp).ravel(), copy=True)


def _as_values(values, size: int, name: str) -> np.ndarray:
    array = np.array(np.asarray(values, dtype=float).ravel(), copy=True)
    if array.shape[0] != size:
        raise ValueError(
            "%s has %d values but the cluster selects %d dimensions"
            % (name, array.shape[0], size)
        )
    return array


class AssignmentEngine:
    """Stateful, incrementally maintained assignment-gain kernel.

    Parameters
    ----------
    points:
        Optional fixed ``(n, d)`` float64 C-contiguous point set.  When
        bound, :meth:`gains` caches the ``(n, k)`` matrix and recomputes
        only dirty columns; :meth:`compute` always works for arbitrary
        batches (the serving / streaming mode) using the same persistent
        plan and workspaces.  The engine never copies or validates
        ``points`` — callers own the
        canonical-representation contract (see
        :func:`repro.utils.validation.check_array_2d`).
    block_rows:
        Row-block bound of the evaluation loop (peak workspace memory is
        ``min(block_rows, cap // (g c)) * g * c`` floats per plan group).
    backend:
        Kernel backend: ``None`` (the ``REPRO_ASSIGNMENT_BACKEND``
        environment variable, defaulting to ``"reference"``), a
        registered name (``"reference"`` / ``"threaded"`` /
        ``"compiled"`` / ``"float32"``, see
        :func:`repro.core.backends.get_backend`) or a ready-made
        backend instance.

    Notes
    -----
    The matrix returned by :meth:`gains` is the engine's live cache —
    callers must treat it as read-only (the consumers in this repository
    wrap it in a non-writeable view).  :meth:`compute` returns a fresh
    array the caller owns.
    """

    def __init__(
        self,
        points: Optional[np.ndarray] = None,
        *,
        block_rows: int = DEFAULT_BLOCK_ROWS,
        backend=None,
    ) -> None:
        if block_rows < 1:
            raise ValueError("block_rows must be at least 1")
        self._points = points
        self.block_rows = int(block_rows)
        self._backend = resolve_backend(backend)
        self._backend.bind_points(points)
        # Non-reference kernels are spot-checked against a private
        # reference oracle on every recompute (the value-diff backstop).
        self._verify_backend = getattr(self._backend, "name", "custom") != "reference"
        self._oracle: Optional[ReferenceBackend] = None
        self._dims: List[np.ndarray] = []
        self._centers: List[np.ndarray] = []
        self._thresholds: List[np.ndarray] = []
        self._slot: List[Optional[Tuple[int, int]]] = []  # (count, row) or None
        self._groups: Dict[int, _GroupPlan] = {}
        self._dirty: set = set()
        self._gains: Optional[np.ndarray] = None
        # Observability counters (tests, the perf_assignment bench and
        # the dirty-fraction sweep read these).
        self.n_gains_calls = 0
        self.n_columns_recomputed = 0
        self.n_updates_changed = 0
        self.n_updates_clean = 0

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def points(self) -> Optional[np.ndarray]:
        """The bound fixed point set (``None`` in per-batch mode)."""
        return self._points

    @property
    def backend(self):
        """The active kernel backend instance."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """The active kernel backend's registered name."""
        return getattr(self._backend, "name", "custom")

    @property
    def n_clusters(self) -> int:
        """Number of clusters in the plan."""
        return len(self._dims)

    @property
    def n_dirty(self) -> int:
        """Number of columns awaiting recomputation."""
        return len(self._dirty)

    def cluster_plan(self, index: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Copies of one cluster's planned ``(dims, center, thresholds)``."""
        return (
            self._dims[index].copy(),
            self._centers[index].copy(),
            self._thresholds[index].copy(),
        )

    # ------------------------------------------------------------------ #
    # plan maintenance
    # ------------------------------------------------------------------ #
    def set_clusters(
        self,
        dimensions: Sequence[np.ndarray],
        centers: Sequence[np.ndarray],
        thresholds: Sequence[np.ndarray],
    ) -> None:
        """(Re)build the full plan; every column becomes dirty.

        ``centers`` and ``thresholds`` are the per-cluster values
        *already restricted* to the cluster's selected dimensions, as in
        :func:`~repro.core.objective.grouped_assignment_gains`.
        """
        k = len(dimensions)
        if not (len(centers) == len(thresholds) == k):
            raise ValueError("dimensions, centers and thresholds must align")
        self._dims = [_as_dims(dims) for dims in dimensions]
        self._centers = [
            _as_values(centers[i], self._dims[i].size, "centers[%d]" % i) for i in range(k)
        ]
        self._thresholds = [
            _as_values(thresholds[i], self._dims[i].size, "thresholds[%d]" % i)
            for i in range(k)
        ]
        self._slot = [None] * k
        self._groups = {}
        for count in {dims.size for dims in self._dims}:
            self._rebuild_group(count)
        self._dirty = set(range(k))
        self._gains = None

    def update_cluster(
        self,
        index: int,
        dimensions,
        center,
        threshold,
        *,
        force: bool = False,
    ) -> bool:
        """Patch one cluster's plan entry; returns whether it changed.

        With ``force=False`` (default) the submitted values are diffed
        against the plan and a bit-identical cluster stays clean — the
        safety net behind implicit callers.  ``force=True`` skips the
        comparison and marks the column dirty unconditionally (the
        explicit dirty-report path: membership change, median
        replacement, ``SelectDim`` re-run, threshold refresh).
        """
        if not (0 <= index < self.n_clusters):
            raise IndexError("cluster index %d out of range" % index)
        dims = _as_dims(dimensions)
        center_ = _as_values(center, dims.size, "center")
        threshold_ = _as_values(threshold, dims.size, "threshold")
        if not force and (
            np.array_equal(self._dims[index], dims)
            and np.array_equal(self._centers[index], center_)
            and np.array_equal(self._thresholds[index], threshold_)
        ):
            self.n_updates_clean += 1
            return False
        old_count = self._dims[index].size
        self._dims[index] = dims
        self._centers[index] = center_
        self._thresholds[index] = threshold_
        if dims.size == old_count and dims.size > 0:
            # Surgical in-place row patch: the common mutation keeps the
            # selected-dimension count, so no restack is needed.
            count, row = self._slot[index]
            group = self._groups[count]
            group.dims[row] = dims
            group.centers[row] = center_
            group.thresholds[row] = threshold_
        elif dims.size != old_count:
            # The cluster moves between groups: restack only the two
            # affected counts.  An empty dimension set belongs to no
            # group (its column is pinned to -inf).
            self._slot[index] = None
            self._rebuild_group(old_count)
            self._rebuild_group(dims.size)
        self._dirty.add(index)
        self.n_updates_changed += 1
        return True

    def mark_dirty(self, indices: Iterable[int]) -> None:
        """Explicitly flag columns for recomputation on the next :meth:`gains`."""
        for index in indices:
            index = int(index)
            if not (0 <= index < self.n_clusters):
                raise IndexError("cluster index %d out of range" % index)
            self._dirty.add(index)

    def invalidate(self) -> None:
        """Mark every column dirty (full recomputation on next :meth:`gains`)."""
        self._dirty = set(range(self.n_clusters))

    def add_cluster(self, dimensions, center, threshold) -> int:
        """Append a cluster to the plan; returns its index (column)."""
        dims = _as_dims(dimensions)
        self._dims.append(dims)
        self._centers.append(_as_values(center, dims.size, "center"))
        self._thresholds.append(_as_values(threshold, dims.size, "threshold"))
        self._slot.append(None)
        index = self.n_clusters - 1
        self._rebuild_group(dims.size)
        if self._gains is not None:
            column = np.full((self._gains.shape[0], 1), -np.inf)
            self._gains = np.ascontiguousarray(np.hstack([self._gains, column]))
        self._dirty.add(index)
        return index

    def remove_cluster(self, index: int) -> None:
        """Drop a cluster; later columns shift down, clean columns survive."""
        if not (0 <= index < self.n_clusters):
            raise IndexError("cluster index %d out of range" % index)
        del self._dims[index]
        del self._centers[index]
        del self._thresholds[index]
        self._slot = [None] * self.n_clusters
        self._groups = {}
        for count in {dims.size for dims in self._dims}:
            self._rebuild_group(count)
        self._dirty = {i if i < index else i - 1 for i in self._dirty if i != index}
        if self._gains is not None:
            self._gains = np.ascontiguousarray(np.delete(self._gains, index, axis=1))

    def _rebuild_group(self, count: int) -> None:
        """Restack the group of one dimension count from the plan lists."""
        if count == 0:
            return
        ids = [i for i, dims in enumerate(self._dims) if dims.size == count]
        if not ids:
            self._groups.pop(count, None)
            return
        group = _GroupPlan(
            cluster_ids=np.asarray(ids, dtype=np.intp),
            dims=np.stack([self._dims[i] for i in ids]),
            centers=np.stack([self._centers[i] for i in ids]),
            thresholds=np.stack([self._thresholds[i] for i in ids]),
        )
        self._groups[count] = group
        for row, cluster in enumerate(ids):
            self._slot[cluster] = (count, row)

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def gains(self) -> np.ndarray:
        """The cached ``(n, k)`` matrix over the bound fixed point set.

        Recomputes only dirty columns (all of them on the first call).
        The returned array is the engine's live cache — treat it as
        read-only and do not hold it across plan mutations.
        """
        if self._points is None:
            raise RuntimeError(
                "engine has no bound point set; use compute(points) instead"
            )
        n = self._points.shape[0]
        k = self.n_clusters
        if self._gains is None or self._gains.shape != (n, k):
            self._gains = np.full((n, k), -np.inf)
            self._dirty = set(range(k))
        recorder = obs.get_recorder()
        if recorder is not None:
            recorder.incr("engine.gains_calls")
            recorder.incr("engine.columns_recomputed", float(len(self._dirty)))
            recorder.observe("engine.dirty_fraction", len(self._dirty) / k if k else 0.0)
        if self._dirty:
            with obs.span("engine.recompute", category="engine",
                          dirty=len(self._dirty), n_clusters=k, rows=n,
                          backend=self.backend_name):
                by_count: Dict[int, List[int]] = {}
                for index in sorted(self._dirty):
                    count = self._dims[index].size
                    if count == 0:
                        self._gains[:, index] = -np.inf
                    else:
                        by_count.setdefault(count, []).append(index)
                points = self._backend.prepare_points(self._points)
                with obs.span("engine.kernel", category="engine",
                              backend=self.backend_name, rows=n,
                              groups=len(by_count)):
                    for count, ids in by_count.items():
                        group = self._groups[count]
                        if len(ids) == group.cluster_ids.shape[0]:
                            dims, centers, thresholds = (
                                group.dims, group.centers, group.thresholds
                            )
                        else:
                            rows = [self._slot[i][1] for i in ids]
                            dims = group.dims[rows]
                            centers = group.centers[rows]
                            thresholds = group.thresholds[rows]
                        self._evaluate_columns(
                            points, np.asarray(ids, dtype=np.intp), dims, centers,
                            thresholds, self._gains,
                        )
                self.n_columns_recomputed += len(self._dirty)
                self._dirty.clear()
                if self._verify_backend:
                    self._verify_against_oracle(self._points, self._gains)
        self.n_gains_calls += 1
        return self._gains

    def compute(self, points: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """The ``(n, k)`` gains of an arbitrary batch against the plan.

        The per-batch mode used by serving and streaming: the persistent
        plan and the blocked workspaces are reused, only the result array
        is (by default) freshly allocated and owned by the caller.
        """
        n = points.shape[0]
        k = self.n_clusters
        if out is None:
            out = np.full((n, k), -np.inf)
        else:
            if out.shape != (n, k):
                raise ValueError("out has shape %s, expected %s" % (out.shape, (n, k)))
            out.fill(-np.inf)
        recorder = obs.get_recorder()
        if recorder is not None:
            recorder.incr("engine.compute_calls")
            recorder.observe("engine.compute_rows", float(n))
        with obs.span("engine.compute", category="engine", rows=n, n_clusters=k,
                      backend=self.backend_name):
            prepared = self._backend.prepare_points(points)
            with obs.span("engine.kernel", category="engine",
                          backend=self.backend_name, rows=n,
                          groups=len(self._groups)):
                for group in self._groups.values():
                    self._evaluate_columns(
                        prepared, group.cluster_ids, group.dims, group.centers,
                        group.thresholds, out,
                    )
            if self._verify_backend:
                self._verify_against_oracle(points, out)
        return out

    def _evaluate_columns(
        self,
        points: np.ndarray,
        cluster_ids: np.ndarray,
        dims: np.ndarray,
        centers: np.ndarray,
        thresholds: np.ndarray,
        out: np.ndarray,
    ) -> None:
        """Evaluate one stacked group through the active kernel backend."""
        self._backend.evaluate_columns(
            points, cluster_ids, dims, centers, thresholds, out,
            block_rows=self.block_rows,
        )

    # ------------------------------------------------------------------ #
    # value-diff backstop
    # ------------------------------------------------------------------ #
    def _verify_against_oracle(self, points: np.ndarray, out: np.ndarray) -> None:
        """Spot-check the active backend against the reference kernel.

        A small row sample (first / middle / last) is re-evaluated
        through a private :class:`ReferenceBackend` and compared to what
        the active backend wrote: bitwise for float64 backends,
        within the backend's declared ``rtol``/``atol`` for float32.
        Row subsetting cannot change the reference bits (see the
        bit-identity contract), so exact comparison is sound.  A
        mismatch raises — wrong gains must never be served silently.
        """
        n = points.shape[0]
        k = self.n_clusters
        if n == 0 or k == 0 or not self._groups:
            return
        if n == 1:
            sample = np.array([0])
        else:
            sample = np.unique([0, n // 2, n - 1])
        subset = np.ascontiguousarray(points[sample])
        expected = np.full((sample.size, k), -np.inf)
        if self._oracle is None:
            self._oracle = ReferenceBackend()
        for group in self._groups.values():
            self._oracle.evaluate_columns(
                subset, group.cluster_ids, group.dims, group.centers,
                group.thresholds, expected, block_rows=self.block_rows,
            )
        actual = out[sample]
        recorder = obs.get_recorder()
        if recorder is not None:
            recorder.incr("engine.backend.verify_rows", float(sample.size))
        if getattr(self._backend, "bit_identical", False):
            ok = np.array_equal(actual, expected)
        else:
            ok = np.allclose(
                actual, expected,
                rtol=getattr(self._backend, "rtol", 0.0),
                atol=getattr(self._backend, "atol", 0.0),
            )
        if not ok:
            if recorder is not None:
                recorder.incr("engine.backend.mismatch")
            finite = np.isfinite(expected) & np.isfinite(actual)
            deviation = (
                float(np.max(np.abs(actual[finite] - expected[finite])))
                if finite.any() else float("nan")
            )
            raise RuntimeError(
                "backend %r diverged from the reference kernel on the "
                "sampled backstop rows (max |deviation| %.3g)"
                % (self.backend_name, deviation)
            )

    def __repr__(self) -> str:
        return "AssignmentEngine(k=%d, fixed=%s, dirty=%d, block_rows=%d, backend=%s)" % (
            self.n_clusters,
            self._points is not None,
            len(self._dirty),
            self.block_rows,
            self.backend_name,
        )
