"""Core SSPC algorithm: the paper's primary contribution.

The subpackage is organised around the components of Section 3 and 4 of
the paper:

* :mod:`repro.core.thresholds` — the two schemes for the selection
  threshold ``s_hat^2_ij`` (parameter ``m`` and parameter ``p``).
* :mod:`repro.core.objective` — the objective function ``phi`` (Eq. 1-4)
  and its per-cluster / per-dimension components, including the fused
  assignment kernel producing the full ``(n, k)`` gain matrix.
* :mod:`repro.core.stats_cache` — the shared per-iteration statistics
  workspace: each cluster's statistics are computed once per membership
  change and reused by ``SelectDim``, ``phi`` and the representative
  replacement (see the README's Performance notes).
* :mod:`repro.core.dimension_selection` — the ``SelectDim`` procedure
  (Lemma 1).
* :mod:`repro.core.grid` — the multi-dimensional histogram (grid) engine
  with localized hill-climbing used during initialisation.
* :mod:`repro.core.seed_groups` — seed-group construction for the four
  knowledge cases (Section 4.2) including the max-min mechanism.
* :mod:`repro.core.assignment` / :mod:`repro.core.representatives` — the
  object-assignment and cluster-representative-replacement steps of the
  iterative optimisation.
* :mod:`repro.core.sspc` — the :class:`~repro.core.sspc.SSPC` estimator
  tying everything together (Listing 2 of the paper).
* :mod:`repro.core.analysis` — closed-form knowledge-requirement analysis
  behind Figures 1 and 2.
"""

from repro.core.model import OUTLIER_LABEL, ClusteringResult, ProjectedCluster
from repro.core.thresholds import (
    ChiSquareThreshold,
    SelectionThreshold,
    VarianceRatioThreshold,
    make_threshold,
)
from repro.core.objective import (
    ClusterStatistics,
    ObjectiveFunction,
    grouped_assignment_gains,
)
from repro.core.stats_cache import ClusterStatsCache
from repro.core.dimension_selection import select_dimensions
from repro.core.grid import Grid, GridSearchResult
from repro.core.seed_groups import SeedGroup, SeedGroupBuilder
from repro.core.sspc import SSPC
from repro.core.analysis import (
    grid_success_probability_labeled_dimensions,
    grid_success_probability_labeled_objects,
    relevant_dimension_retention_probability,
)

__all__ = [
    "OUTLIER_LABEL",
    "ClusteringResult",
    "ProjectedCluster",
    "SelectionThreshold",
    "VarianceRatioThreshold",
    "ChiSquareThreshold",
    "make_threshold",
    "ObjectiveFunction",
    "ClusterStatistics",
    "grouped_assignment_gains",
    "ClusterStatsCache",
    "select_dimensions",
    "Grid",
    "GridSearchResult",
    "SeedGroup",
    "SeedGroupBuilder",
    "SSPC",
    "grid_success_probability_labeled_objects",
    "grid_success_probability_labeled_dimensions",
    "relevant_dimension_retention_probability",
]
