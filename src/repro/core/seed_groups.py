"""Seed-group construction (Section 4.2 of the paper).

A *seed group* is a set of seed objects expected to come from a single
real cluster, together with an estimated set of relevant dimensions.
Whenever a cluster needs a (new) medoid it draws one of the seeds of its
seed group and adopts the group's estimated dimensions as its selected
dimensions.

SSPC builds two kinds of seed groups:

* **private** groups for clusters with input knowledge (labeled objects
  and/or labeled dimensions), used exclusively by those clusters, and
* **public** groups shared by all clusters without knowledge, so that
  medoids can be drawn from different seed-group combinations.

The construction differs per knowledge case (Sections 4.2.1-4.2.4):

1. *Both kinds of inputs*: the labeled objects form a temporary cluster
   ``C_i'``; grid-building dimensions are drawn (with probability
   proportional to ``phi_i'j``) from the candidate set ``SelectDim(C_i')
   union Iv_i``; the seeds are the objects in the densest peak cell found
   by hill-climbing from the cell containing the median of the labeled
   objects; the group's dimensions are ``SelectDim(G_i) union Iv_i``.
2. *Labeled objects only*: as case 1 but the candidate set and the
   group's dimensions omit ``Iv_i``.
3. *Labeled dimensions only*: grids are built from ``Iv_i`` only (uniform
   probabilities); the seeds come from the absolute peak of the grid; the
   group's dimensions are ``SelectDim(G_i)`` plus ``Iv_i``.
4. *No inputs*: a max-min object (remote from every already-picked seed
   in the corresponding subspaces) replaces the labeled-object median as
   the anchor; a one-dimensional histogram per dimension measures the
   density around the anchor and sets the probability of the dimension
   being used for grid building; then the procedure of case 2 runs.

Clusters with more knowledge are initialised first (both > objects only >
dimensions only > none; more items first within a category) because
accurately created groups let later groups exclude their likely members.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.dimension_selection import select_dimensions
from repro.core.grid import Grid, one_dimensional_density_profile
from repro.core.objective import ObjectiveFunction
from repro.core.thresholds import ChiSquareThreshold
from repro.semisupervision.knowledge import Knowledge
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_positive_int, check_probability


@dataclass
class SeedGroup:
    """A set of seeds plus estimated relevant dimensions for one cluster.

    Attributes
    ----------
    seeds:
        Object indices expected to come from one real cluster.
    dimensions:
        Estimated relevant dimensions of that cluster.
    cluster:
        Index of the cluster that owns the group, or ``None`` for public
        groups.
    knowledge_kind:
        Which of the four construction cases produced the group.
    peak_density:
        Density of the winning grid cell (diagnostics).
    """

    seeds: np.ndarray
    dimensions: np.ndarray
    cluster: Optional[int] = None
    knowledge_kind: str = "none"
    peak_density: int = 0
    _untried: List[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self.seeds = np.asarray(sorted(set(int(i) for i in np.asarray(self.seeds).ravel())), dtype=int)
        self.dimensions = np.asarray(
            sorted(set(int(j) for j in np.asarray(self.dimensions).ravel())), dtype=int
        )
        self._untried = list(self.seeds)

    @property
    def is_private(self) -> bool:
        """Whether the group belongs to a specific cluster."""
        return self.cluster is not None

    @property
    def n_seeds(self) -> int:
        """Number of seed objects in the group."""
        return int(self.seeds.size)

    def draw_medoid(self, rng: np.random.Generator) -> int:
        """Draw a seed to serve as a medoid, preferring untried seeds.

        Seeds are drawn without replacement until exhausted, after which
        the full seed list is recycled; this gives the representative-
        replacement step fresh medoid candidates for as long as possible.
        """
        if self.seeds.size == 0:
            raise RuntimeError("cannot draw a medoid from an empty seed group")
        if not self._untried:
            self._untried = list(self.seeds)
        position = int(rng.integers(len(self._untried)))
        return self._untried.pop(position)


class SeedGroupBuilder:
    """Builds private and public seed groups for SSPC's initialisation.

    Parameters
    ----------
    objective:
        The fitted objective function (provides the data, the thresholds
        and ``SelectDim``).
    n_clusters:
        The target number of clusters ``k``.
    knowledge:
        The semi-supervision inputs (possibly empty).
    grid_dimensions:
        Number of building dimensions per grid (the paper's ``c``,
        default 3).
    grids_per_group:
        Number of grids tried per seed group (the paper's ``g``,
        default 20).
    bins_per_dimension:
        Histogram resolution of each grid dimension; ``None`` (default)
        picks the resolution from the number of available objects so a
        background cell is expected to hold a handful of objects.
    public_group_factor:
        Number of public seed groups created per knowledge-free cluster
        ("some large number of public seed groups" in the paper).
    seed_selection_p:
        Significance level of the chi-square criterion used to estimate
        the relevant dimensions of a seed group (and the grid-building
        candidate set).  Seed groups are small object sets, so the
        size-adaptive chi-square criterion is used here regardless of the
        main optimisation's threshold scheme — this is the criterion the
        paper's own knowledge-requirement analysis (Section 4.5) is
        phrased in.
    """

    def __init__(
        self,
        objective: ObjectiveFunction,
        n_clusters: int,
        knowledge: Optional[Knowledge] = None,
        *,
        grid_dimensions: int = 3,
        grids_per_group: int = 20,
        bins_per_dimension: Optional[int] = None,
        public_group_factor: int = 3,
        seed_selection_p: float = 0.01,
    ) -> None:
        self.objective = objective
        self.n_clusters = check_positive_int(n_clusters, name="n_clusters", minimum=1)
        self.knowledge = knowledge if knowledge is not None else Knowledge.empty()
        self.grid_dimensions = check_positive_int(grid_dimensions, name="grid_dimensions", minimum=1)
        self.grids_per_group = check_positive_int(grids_per_group, name="grids_per_group", minimum=1)
        if bins_per_dimension is not None:
            bins_per_dimension = check_positive_int(
                bins_per_dimension, name="bins_per_dimension", minimum=2
            )
        self.bins_per_dimension = bins_per_dimension
        self.public_group_factor = check_positive_int(
            public_group_factor, name="public_group_factor", minimum=1
        )
        self.seed_selection_p = check_probability(seed_selection_p, name="seed_selection_p")
        self._seed_threshold = ChiSquareThreshold(p=self.seed_selection_p)
        self._seed_threshold.fit_from_variance(objective.threshold.global_variance)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def build(self, random_state: RandomState = None) -> Tuple[Dict[int, SeedGroup], List[SeedGroup]]:
        """Create all seed groups.

        Returns
        -------
        (private_groups, public_groups)
            ``private_groups`` maps a cluster index to its private seed
            group; ``public_groups`` is the shared pool for clusters
            without knowledge.
        """
        rng = ensure_rng(random_state)
        order = self._initialisation_order()

        private_groups: Dict[int, SeedGroup] = {}
        existing_groups: List[SeedGroup] = []
        excluded_objects: set = set()

        for cluster_index in order:
            kind = self.knowledge.knowledge_kind(cluster_index)
            if kind == "none":
                continue
            group = self._build_private_group(cluster_index, kind, excluded_objects, rng)
            private_groups[cluster_index] = group
            existing_groups.append(group)
            excluded_objects.update(int(seed) for seed in group.seeds)

        n_without_knowledge = sum(
            1 for cluster_index in range(self.n_clusters) if cluster_index not in private_groups
        )
        public_groups: List[SeedGroup] = []
        n_public = self.public_group_factor * max(n_without_knowledge, 0)
        for _ in range(n_public):
            group = self._build_public_group(existing_groups, excluded_objects, rng)
            if group.n_seeds == 0:
                continue
            public_groups.append(group)
            existing_groups.append(group)
            excluded_objects.update(int(seed) for seed in group.seeds)
        return private_groups, public_groups

    # ------------------------------------------------------------------ #
    # ordering
    # ------------------------------------------------------------------ #
    def _initialisation_order(self) -> List[int]:
        """Order clusters by knowledge kind then amount (Section 4.2)."""
        kind_rank = {"both": 0, "objects": 1, "dimensions": 2, "none": 3}

        def sort_key(cluster_index: int) -> Tuple[int, int, int]:
            kind = self.knowledge.knowledge_kind(cluster_index)
            return (kind_rank[kind], -self.knowledge.amount(cluster_index), cluster_index)

        return sorted(range(self.n_clusters), key=sort_key)

    # ------------------------------------------------------------------ #
    # private groups (cases 1-3)
    # ------------------------------------------------------------------ #
    def _build_private_group(
        self,
        cluster_index: int,
        kind: str,
        excluded_objects: set,
        rng: np.random.Generator,
    ) -> SeedGroup:
        labeled_objects = self.knowledge.objects.for_class(cluster_index)
        labeled_dimensions = self.knowledge.dimensions.for_class(cluster_index)

        if kind in ("both", "objects"):
            candidate_dims, candidate_weights = self._candidates_from_labeled_objects(
                labeled_objects,
                labeled_dimensions if kind == "both" else np.empty(0, dtype=int),
            )
            anchor = self._labeled_object_anchor(labeled_objects)
            seeds, peak_density = self._search_grids(
                candidate_dims, candidate_weights, anchor, excluded_objects, rng
            )
        else:  # kind == "dimensions"
            candidate_dims = labeled_dimensions
            candidate_weights = np.ones(candidate_dims.size)
            seeds, peak_density = self._search_grids(
                candidate_dims, candidate_weights, None, excluded_objects, rng
            )

        if seeds.size == 0:
            # Degenerate fall-back: use the labeled objects themselves (if
            # any) so the cluster still has a medoid to draw.
            seeds = labeled_objects if labeled_objects.size else np.empty(0, dtype=int)

        forced = labeled_dimensions if kind in ("both", "dimensions") else None
        dimensions = select_dimensions(
            self.objective, seeds, forced_dimensions=forced, threshold=self._seed_threshold
        )
        if dimensions.size == 0 and labeled_dimensions.size:
            dimensions = labeled_dimensions
        return SeedGroup(
            seeds=seeds,
            dimensions=dimensions,
            cluster=cluster_index,
            knowledge_kind=kind,
            peak_density=peak_density,
        )

    def _candidates_from_labeled_objects(
        self,
        labeled_objects: np.ndarray,
        labeled_dimensions: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Candidate grid-building dimensions and their selection weights.

        The candidate set is ``SelectDim(C_i')`` (the temporary cluster of
        labeled objects) plus any labeled dimensions; each candidate's
        probability of being used in a grid is proportional to its
        ``phi_i'j`` score.
        """
        if labeled_objects.size >= 2:
            statistics = self.objective.cluster_statistics(labeled_objects)
            selected = select_dimensions(
                self.objective,
                labeled_objects,
                statistics=statistics,
                threshold=self._seed_threshold,
            )
            phi_scores = self.objective.phi_ij_all(labeled_objects, statistics=statistics)
        else:
            selected = np.empty(0, dtype=int)
            phi_scores = np.zeros(self.objective.n_dimensions)

        candidates = np.union1d(selected, labeled_dimensions).astype(int)
        if candidates.size < self.grid_dimensions:
            # Too few candidates to form a grid — pad with the dimensions
            # along which the labeled objects are tightest (best phi scores).
            needed = self.grid_dimensions - candidates.size
            order = np.argsort(-phi_scores)
            extra = [int(j) for j in order if int(j) not in set(candidates.tolist())][:needed]
            candidates = np.union1d(candidates, np.asarray(extra, dtype=int)).astype(int)
        if candidates.size == 0:
            # No information at all — fall back to all dimensions, uniform.
            candidates = np.arange(self.objective.n_dimensions)
            return candidates, np.ones(candidates.size)
        weights = phi_scores[candidates]
        # phi scores can be negative (worse than threshold); shift to keep a
        # valid probability vector while preserving the ordering.
        weights = weights - weights.min() + 1e-9
        return candidates, weights

    def _labeled_object_anchor(self, labeled_objects: np.ndarray) -> Optional[np.ndarray]:
        """The median of the labeled objects (hill-climbing start point).

        Shares the statistics pass already performed for the candidate
        dimensions via the objective's :class:`ClusterStatsCache`.
        """
        if labeled_objects.size == 0:
            return None
        return self.objective.cluster_statistics(labeled_objects).median.copy()

    # ------------------------------------------------------------------ #
    # public groups (case 4)
    # ------------------------------------------------------------------ #
    def _build_public_group(
        self,
        existing_groups: List[SeedGroup],
        excluded_objects: set,
        rng: np.random.Generator,
    ) -> SeedGroup:
        available = self._available_objects(excluded_objects)
        if available.size == 0:
            # Every object is already claimed by earlier seed groups; there is
            # nothing left to anchor a new public group on.
            return SeedGroup(seeds=[], dimensions=[], cluster=None, knowledge_kind="none")
        anchor_index = self._max_min_object(existing_groups, excluded_objects, rng)
        anchor = self.objective.data[anchor_index]

        histogram_bins = max(2 * self._effective_bins(available.size), 8)
        densities = one_dimensional_density_profile(
            self.objective.data,
            anchor,
            bins=histogram_bins,
            restrict_to=available,
        )
        candidates = np.arange(self.objective.n_dimensions)
        # Weight dimensions by their density *excess* over the uniform
        # baseline (1/bins): a dimension relevant to the cluster centred at
        # the anchor shows a clear excess, while irrelevant dimensions hover
        # around the baseline and receive only a small residual weight.
        baseline = 1.0 / histogram_bins
        weights = np.maximum(densities - baseline, 0.0) + 0.1 * baseline

        seeds, peak_density = self._search_grids(candidates, weights, anchor, excluded_objects, rng)
        if seeds.size == 0:
            seeds = np.asarray([anchor_index], dtype=int)
        dimensions = select_dimensions(self.objective, seeds, threshold=self._seed_threshold)
        return SeedGroup(
            seeds=seeds,
            dimensions=dimensions,
            cluster=None,
            knowledge_kind="none",
            peak_density=peak_density,
        )

    def _max_min_object(
        self,
        existing_groups: List[SeedGroup],
        excluded_objects: set,
        rng: np.random.Generator,
    ) -> int:
        """Object whose minimum distance to all picked seeds is maximal.

        Distances to each group's seeds are computed in the group's
        estimated relevant subspace and normalised by the number of
        dimensions (Section 4.2.4).  With no existing groups the anchor
        is a random object.
        """
        available = self._available_objects(excluded_objects)
        if available.size == 0:
            available = np.arange(self.objective.n_objects)
        groups_with_seeds = [
            group for group in existing_groups if group.n_seeds > 0 and group.dimensions.size > 0
        ]
        if not groups_with_seeds:
            return int(available[rng.integers(available.size)])

        min_distance = np.full(available.size, np.inf)
        for group in groups_with_seeds:
            dims = group.dimensions
            seeds = self.objective.data[np.ix_(group.seeds, dims)]
            candidates = self.objective.data[np.ix_(available, dims)]
            # normalised squared Euclidean distance to every seed of the group
            diffs = candidates[:, None, :] - seeds[None, :, :]
            distances = (diffs ** 2).sum(axis=2).min(axis=1) / dims.size
            min_distance = np.minimum(min_distance, distances)
        return int(available[int(np.argmax(min_distance))])

    def _available_objects(self, excluded_objects: set) -> np.ndarray:
        """Objects not yet claimed as seeds by previously built groups."""
        if not excluded_objects:
            return np.arange(self.objective.n_objects)
        mask = np.ones(self.objective.n_objects, dtype=bool)
        mask[list(excluded_objects)] = False
        return np.flatnonzero(mask)

    def _effective_bins(self, n_available: int) -> int:
        """Bins per grid dimension.

        When ``bins_per_dimension`` is not fixed by the caller, the
        resolution is chosen so that a cell of the ``c``-dimensional grid
        is expected to hold a handful of background objects (about five):
        with ``b`` bins per dimension there are ``b**c`` cells, so
        ``b ~= (n / 5) ** (1/c)``, clipped to a sane range.  A cluster
        whose local spread is a few percent of the value range then falls
        almost entirely inside one cell and shows up as a strong peak.
        """
        if self.bins_per_dimension is not None:
            return self.bins_per_dimension
        target = (max(n_available, 1) / 5.0) ** (1.0 / self.grid_dimensions)
        return int(np.clip(round(target), 2, 8))

    # ------------------------------------------------------------------ #
    # grid search shared by all cases
    # ------------------------------------------------------------------ #
    def _search_grids(
        self,
        candidate_dimensions: np.ndarray,
        weights: np.ndarray,
        anchor: Optional[np.ndarray],
        excluded_objects: set,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, int]:
        """Build ``grids_per_group`` grids and return the densest peak's members."""
        candidate_dimensions = np.asarray(candidate_dimensions, dtype=int)
        if candidate_dimensions.size == 0:
            return np.empty(0, dtype=int), 0
        weights = np.asarray(weights, dtype=float)
        probabilities = weights / weights.sum() if weights.sum() > 0 else None

        available = self._available_objects(excluded_objects)
        if available.size == 0:
            return np.empty(0, dtype=int), 0

        n_building = min(self.grid_dimensions, candidate_dimensions.size)
        bins = self._effective_bins(available.size)
        best_members = np.empty(0, dtype=int)
        best_density = 0
        for _ in range(self.grids_per_group):
            building = rng.choice(
                candidate_dimensions,
                size=n_building,
                replace=False,
                p=probabilities,
            )
            grid = Grid(
                self.objective.data,
                building,
                bins_per_dimension=bins,
                restrict_to=available,
            )
            if anchor is not None:
                result = grid.hill_climb(anchor)
            else:
                result = grid.absolute_peak()
            if result.density > best_density:
                best_density = result.density
                best_members = result.members
        return best_members, best_density
