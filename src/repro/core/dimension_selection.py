"""The ``SelectDim`` procedure (Listing 1 / Lemma 1 of the paper).

Lemma 1 states that, for a fixed set of clusters, the objective ``phi``
is maximised by selecting exactly the dimensions whose dispersion
``s^2_ij + (mu_ij - median_ij)^2`` falls below the selection threshold
``s_hat^2_ij``.  ``SelectDim`` therefore needs no search: it evaluates
the inequality per dimension.

Performance note: the cluster statistics backing the dispersion come
from the objective's shared :class:`~repro.core.stats_cache.ClusterStatsCache`,
so running ``SelectDim`` on a member set that the same iteration already
profiled (for ``phi`` or the representative replacement) costs no
additional statistics pass.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.objective import ClusterStatistics, ObjectiveFunction
from repro.core.thresholds import SelectionThreshold


def select_dimensions(
    objective: ObjectiveFunction,
    members: Sequence[int],
    *,
    forced_dimensions: Optional[Sequence[int]] = None,
    statistics: Optional[ClusterStatistics] = None,
    threshold: Optional[SelectionThreshold] = None,
) -> np.ndarray:
    """Run ``SelectDim`` for one cluster.

    Parameters
    ----------
    objective:
        The fitted :class:`ObjectiveFunction` (provides data and
        thresholds).
    members:
        Member object indices of the target cluster ``C_i``.
    forced_dimensions:
        Dimensions that must be selected regardless of the criterion —
        SSPC forces the labeled dimensions ``Iv_i`` into the selection of
        the corresponding cluster's seed group (Section 4.2.1).
    statistics:
        Optional precomputed :class:`ClusterStatistics` for ``members``.
    threshold:
        Optional :class:`SelectionThreshold` overriding the objective's
        own threshold.  The initialisation (Section 4.2 / 4.5) estimates
        seed-group dimensions from very small object sets, where the
        size-adaptive chi-square scheme is the appropriate criterion even
        when the main optimisation runs with the ``m`` scheme.

    Returns
    -------
    numpy.ndarray
        Sorted array of selected dimension indices.  Empty when the
        cluster has fewer than two members (no variance can be measured)
        and no forced dimensions are given.
    """
    members = np.asarray(members, dtype=int)
    forced = (
        np.asarray(forced_dimensions, dtype=int)
        if forced_dimensions is not None
        else np.empty(0, dtype=int)
    )
    if members.size < 2:
        return np.unique(forced)

    stats_ = statistics if statistics is not None else objective.cluster_statistics(members)
    scheme = threshold if threshold is not None else objective.threshold
    if not scheme.is_fitted:
        scheme.fit_from_variance(objective.threshold.global_variance)
    thresholds = scheme.values(stats_.size)
    selected = np.flatnonzero(stats_.dispersion() < thresholds)
    if forced.size:
        selected = np.union1d(selected, forced)
    return selected


def selection_margin(
    objective: ObjectiveFunction,
    members: Sequence[int],
) -> Tuple[np.ndarray, np.ndarray]:
    """Dispersion and threshold vectors for one cluster (diagnostic helper).

    Returns ``(dispersion, thresholds)`` so callers can inspect how far
    each dimension is from being selected — used by the examples to show
    *why* a dimension was (not) selected, and by tests to verify Lemma 1.
    """
    members = np.asarray(members, dtype=int)
    stats_ = objective.cluster_statistics(members)
    thresholds = objective.threshold.values(max(stats_.size, 2))
    return stats_.dispersion(), thresholds
