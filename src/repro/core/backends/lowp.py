"""Low-precision kernel backend: opt-in float32 evaluation.

For serving and streaming deployments where bit-identity to training is
not the contract, halving the kernel's memory traffic roughly doubles
the effective bandwidth of the gather-heavy loop.  The precision
contract is *tolerance-banded* instead of bitwise: the declared
``rtol`` / ``atol`` below are what the engine's sampled value-diff
backstop, the cross-backend test suite and the ``perf_assignment``
accuracy gates all enforce, the same way throughput metrics are already
tolerance-gated in the bench compare machinery.

Casting is paid once, not per block: an engine-bound point set is cast
to float32 on :meth:`bind_points` and reused for every :meth:`gains`
call; per-batch :meth:`compute` points are cast once per engine call
via :meth:`prepare_points` (with the last batch cached, so the
serving pattern of several group evaluations per batch casts once).
The small per-group plan rows are cast per call.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.backends.reference import MAX_WORKSPACE_ELEMENTS

__all__ = ["Float32Backend"]


class Float32Backend:
    """Blocked float32 evaluation; tolerance-banded, not bit-identical."""

    name = "float32"
    bit_identical = False
    #: Declared accuracy band vs the float64 oracle.  Gains are sums of
    #: ``c`` O(1) terms, so absolute error grows with the subspace size;
    #: these bounds hold with an order of magnitude to spare for the
    #: paper-scale plans (c <= 100, |x| = O(10)) measured in
    #: ``perf_assignment``'s float32 deviation sweep.
    rtol = 1e-4
    atol = 1e-2

    def __init__(self) -> None:
        self._workspace = np.empty(0, dtype=np.float32)
        self._reduce_buffer = np.empty(0, dtype=np.float32)
        self._bound: Optional[np.ndarray] = None
        self._bound_cast: Optional[np.ndarray] = None
        self._last_batch: Optional[np.ndarray] = None
        self._last_cast: Optional[np.ndarray] = None

    def bind_points(self, points) -> None:
        """Cache the float32 cast of the engine's fixed point set."""
        if points is None:
            self._bound = self._bound_cast = None
        else:
            self._bound = points
            self._bound_cast = np.ascontiguousarray(points, dtype=np.float32)

    def prepare_points(self, points: np.ndarray) -> np.ndarray:
        """Float32 view of this call's points, cast at most once."""
        if points is self._bound and self._bound_cast is not None:
            return self._bound_cast
        if points is self._last_batch and self._last_cast is not None:
            return self._last_cast
        cast = np.ascontiguousarray(points, dtype=np.float32)
        self._last_batch = points
        self._last_cast = cast
        return cast

    def evaluate_columns(
        self,
        points: np.ndarray,
        cluster_ids: np.ndarray,
        dims: np.ndarray,
        centers: np.ndarray,
        thresholds: np.ndarray,
        out: np.ndarray,
        *,
        block_rows: int,
    ) -> None:
        g, c = dims.shape
        n = points.shape[0]
        if g == 0 or c == 0 or n == 0:
            return
        if points.dtype != np.float32:
            # Defensive: the engine routes through prepare_points, but a
            # direct caller gets correct (slower) behaviour, not garbage.
            points = np.ascontiguousarray(points, dtype=np.float32)
        centers32 = centers.astype(np.float32)
        thresholds32 = thresholds.astype(np.float32)
        # float32 halves the element size, so the same element cap costs
        # half the bytes; keeping the cap in elements keeps the row
        # blocks identical to the reference path for like plans.
        block = max(2, min(block_rows, MAX_WORKSPACE_ELEMENTS // (g * c)))
        flat_dims = dims.reshape(-1)
        if self._workspace.size < (block + 1) * g * c:
            self._workspace = np.empty((block + 1) * g * c, dtype=np.float32)
        if self._reduce_buffer.size < (block + 1) * g:
            self._reduce_buffer = np.empty((block + 1) * g, dtype=np.float32)
        one = np.float32(1.0)
        start = 0
        while start < n:
            stop = min(start + block, n)
            if n - stop == 1:
                stop = n
            rows = stop - start
            gathered = self._workspace[: rows * g * c].reshape(g * c, rows)
            np.take(points[start:stop].T, flat_dims, axis=0, out=gathered)
            cube = gathered.reshape(g, c, rows).transpose(2, 0, 1)
            np.subtract(cube, centers32[None, :, :], out=cube)
            np.square(cube, out=cube)
            np.divide(cube, thresholds32[None, :, :], out=cube)
            np.subtract(one, cube, out=cube)
            reduced = self._reduce_buffer[: rows * g].reshape(g, rows).T
            cube.sum(axis=2, out=reduced)
            # Assigning the float32 block into the float64 result widens
            # each value exactly.
            out[start:stop, cluster_ids] = reduced
            start = stop
