"""Threaded kernel backend: row-chunk parallelism over the blocked loop.

The row blocks of the reference evaluator are embarrassingly parallel —
every block reads a disjoint row slice of ``points`` and writes a
disjoint row slice of ``out`` — and the heavy ``out=`` ufunc calls
release the GIL, so a plain :class:`~concurrent.futures.ThreadPoolExecutor`
scales the same zero-allocation loop across cores with no extra copies.

Bit-identity survives the parallelism for the same reason row blocking
never changed a bit in the first place (see
:mod:`repro.core.backends.reference`): numpy's strided pairwise-sum
grouping depends only on the reduction length and (non-)contiguity,
never on the row count or stride value, so any partition into chunks of
at least two rows evaluates to exactly the same bits.  Each worker slot
keeps its own gather/reduce workspace pair, reused across calls.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional

import numpy as np

from repro.core.backends.reference import MAX_WORKSPACE_ELEMENTS

__all__ = ["ThreadedBackend", "default_workers"]

#: Env override for the worker count (also honoured by the registry's
#: ``REPRO_ASSIGNMENT_BACKEND`` selection, see ``backends/__init__``).
THREADS_ENV_VAR = "REPRO_ASSIGNMENT_THREADS"

#: Below this many rows per would-be chunk the pool dispatch overhead
#: beats the parallel win, so the chunk count shrinks (possibly to an
#: inline single-chunk call).
MIN_CHUNK_ROWS = 192


def default_workers() -> int:
    """Worker count: ``REPRO_ASSIGNMENT_THREADS`` or ``min(8, cores)``."""
    env = os.environ.get(THREADS_ENV_VAR)
    if env:
        return max(1, int(env))
    try:
        cores = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        cores = os.cpu_count() or 1
    return max(1, min(8, cores))


class _Workspace:
    """One worker slot's persistent gather/reduce buffer pair."""

    __slots__ = ("gather", "reduce")

    def __init__(self) -> None:
        self.gather = np.empty(0)
        self.reduce = np.empty(0)


def _evaluate_rows(
    points: np.ndarray,
    cluster_ids: np.ndarray,
    flat_dims: np.ndarray,
    centers: np.ndarray,
    thresholds: np.ndarray,
    out: np.ndarray,
    start: int,
    stop: int,
    block: int,
    workspace: _Workspace,
) -> None:
    """The reference blocked loop over one contiguous row chunk."""
    g = centers.shape[0]
    c = centers.shape[1]
    if workspace.gather.size < (block + 1) * g * c:
        workspace.gather = np.empty((block + 1) * g * c)
    if workspace.reduce.size < (block + 1) * g:
        workspace.reduce = np.empty((block + 1) * g)
    while start < stop:
        end = min(start + block, stop)
        if stop - end == 1:
            end = stop
        rows = end - start
        gathered = workspace.gather[: rows * g * c].reshape(g * c, rows)
        np.take(points[start:end].T, flat_dims, axis=0, out=gathered)
        cube = gathered.reshape(g, c, rows).transpose(2, 0, 1)
        np.subtract(cube, centers[None, :, :], out=cube)
        np.square(cube, out=cube)
        np.divide(cube, thresholds[None, :, :], out=cube)
        np.subtract(1.0, cube, out=cube)
        reduced = workspace.reduce[: rows * g].reshape(g, rows).T
        cube.sum(axis=2, out=reduced)
        out[start:end, cluster_ids] = reduced
        start = end


class ThreadedBackend:
    """Row-chunked thread-pool evaluation; bit-identical float64."""

    name = "threaded"
    bit_identical = True
    rtol = 0.0
    atol = 0.0

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = int(workers) if workers is not None else default_workers()
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        self._pool: Optional[ThreadPoolExecutor] = None
        self._workspaces: List[_Workspace] = [_Workspace() for _ in range(self.workers)]

    # The executor is process-local runtime state: drop it when a host
    # object (objective, index) travels across a pickle boundary.
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_pool"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    def prepare_points(self, points: np.ndarray) -> np.ndarray:
        return points

    def bind_points(self, points) -> None:
        pass

    def close(self) -> None:
        """Shut the pool down (it is lazily recreated on next use)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _chunks(self, n: int) -> List[int]:
        """Balanced contiguous row-chunk boundaries (each chunk >= 2 rows)."""
        width = max(2, MIN_CHUNK_ROWS)
        w = min(self.workers, max(1, n // width))
        base, extra = divmod(n, w)
        bounds = [0]
        for i in range(w):
            bounds.append(bounds[-1] + base + (1 if i < extra else 0))
        return bounds

    def evaluate_columns(
        self,
        points: np.ndarray,
        cluster_ids: np.ndarray,
        dims: np.ndarray,
        centers: np.ndarray,
        thresholds: np.ndarray,
        out: np.ndarray,
        *,
        block_rows: int,
    ) -> None:
        g, c = dims.shape
        n = points.shape[0]
        if g == 0 or c == 0 or n == 0:
            return
        block = max(2, min(block_rows, MAX_WORKSPACE_ELEMENTS // (g * c)))
        flat_dims = dims.reshape(-1)
        bounds = self._chunks(n)
        if len(bounds) == 2:
            # Single chunk: evaluate inline, no pool round trip.
            _evaluate_rows(
                points, cluster_ids, flat_dims, centers, thresholds, out,
                0, n, block, self._workspaces[0],
            )
            return
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-kernel"
            )
        futures = [
            self._pool.submit(
                _evaluate_rows,
                points, cluster_ids, flat_dims, centers, thresholds, out,
                bounds[i], bounds[i + 1], block, self._workspaces[i],
            )
            for i in range(len(bounds) - 1)
        ]
        for future in futures:
            future.result()
