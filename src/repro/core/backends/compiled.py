"""Compiled kernel backend: an optional Numba gather+reduce kernel.

Numba is an *optional* dependency — this module always imports; when the
wheel is missing :func:`compiled_available` reports ``(False, reason)``
and the registry falls back to the threaded backend (loudly: an obs
event plus an ``engine.backend.fallback`` counter, see
``backends/__init__``).

Bit-identity story: on this numpy generation (2.x) the reference path's
*strided* add-reduce over the dimension axis is plain sequential
accumulation in dimension order — verified empirically against the
reference kernel across dimension counts from 1 to 300 — so a scalar
``s += 1 - (x - c)^2 / t`` loop reproduces it exactly (Numba without
``fastmath`` emits strict IEEE double ops in program order, the same
arithmetic the interpreter does).  Because that grouping is a numpy
implementation detail, availability is gated on a runtime probe
(:func:`grouping_probe_ok`) that replays the scalar loop against the
reference backend and demands bitwise equality; on a numpy build with a
different strided-reduce grouping the compiled backend reports itself
unavailable instead of silently breaking the contract.  The engine's
sampled value-diff backstop then re-checks live calls in production.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "CompiledBackend",
    "compiled_available",
    "gather_reduce_python",
    "grouping_probe_ok",
]

try:  # pragma: no cover - exercised only where the wheel exists
    from numba import njit, prange

    _NUMBA_IMPORT_ERROR: Optional[str] = None
except ImportError as exc:  # the supported, tested default environment
    njit = None
    prange = range
    _NUMBA_IMPORT_ERROR = str(exc)


def _gather_reduce(points, dims, centers, thresholds, result):
    # The jitted hot loop (also runs as plain Python for the probe and
    # the no-numba tests, where ``prange`` is ``range``).  Rows are
    # independent, so ``parallel=True`` never reassociates the
    # per-(row, cluster) accumulation below.
    n = points.shape[0]
    g = dims.shape[0]
    c = dims.shape[1]
    for i in prange(n):
        for a in range(g):
            acc = 0.0
            for b in range(c):
                delta = points[i, dims[a, b]] - centers[a, b]
                acc += 1.0 - (delta * delta) / thresholds[a, b]
            result[i, a] = acc


#: The probe-friendly plain-Python spelling of the compiled kernel.
gather_reduce_python = _gather_reduce

if njit is not None:  # pragma: no cover - requires the optional wheel
    _gather_reduce_jit = njit(parallel=True, cache=True)(_gather_reduce)
else:
    _gather_reduce_jit = None

_PROBE_RESULT: Optional[bool] = None


def grouping_probe_ok() -> bool:
    """Does sequential accumulation match numpy's strided reduce here?

    Replays the scalar kernel against the reference backend on
    deterministic cases spanning the pairwise-sum-sensitive dimension
    counts (< 8, 8..128, > 128) and demands bitwise equality.  Cached
    per process.
    """
    global _PROBE_RESULT
    if _PROBE_RESULT is None:
        from repro.core.backends.reference import ReferenceBackend

        rng = np.random.default_rng(20050405)
        ok = True
        for c in (3, 16, 150):
            n, d, g = 7, c + 4, 2
            points = rng.standard_normal((n, d))
            dims = np.stack(
                [np.sort(rng.choice(d, size=c, replace=False)) for _ in range(g)]
            ).astype(np.intp)
            centers = rng.standard_normal((g, c))
            thresholds = rng.uniform(0.5, 2.0, (g, c))
            ids = np.arange(g, dtype=np.intp)
            expected = np.full((n, g), -np.inf)
            ReferenceBackend().evaluate_columns(
                points, ids, dims, centers, thresholds, expected, block_rows=4
            )
            got = np.empty((n, g))
            gather_reduce_python(points, dims, centers, thresholds, got)
            if not np.array_equal(expected, got):
                ok = False
                break
        _PROBE_RESULT = ok
    return _PROBE_RESULT


def compiled_available() -> Tuple[bool, str]:
    """``(available, reason)`` for the compiled backend on this host."""
    if _NUMBA_IMPORT_ERROR is not None:
        return False, "numba is not installed (%s)" % _NUMBA_IMPORT_ERROR
    if not grouping_probe_ok():
        return False, (
            "this numpy build's strided reduction grouping is not plain "
            "sequential accumulation, so the compiled kernel cannot "
            "honour the bit-identity contract"
        )
    return True, "numba %s" % __import__("numba").__version__


class CompiledBackend:
    """Numba ``@njit(parallel=True, cache=True)`` gather+reduce kernel."""

    name = "compiled"
    bit_identical = True
    rtol = 0.0
    atol = 0.0

    def __init__(self) -> None:
        available, reason = compiled_available()
        if not available:
            raise RuntimeError("compiled backend unavailable: %s" % reason)
        self._result = np.empty(0)

    def prepare_points(self, points: np.ndarray) -> np.ndarray:
        return points

    def bind_points(self, points) -> None:
        pass

    def evaluate_columns(
        self,
        points: np.ndarray,
        cluster_ids: np.ndarray,
        dims: np.ndarray,
        centers: np.ndarray,
        thresholds: np.ndarray,
        out: np.ndarray,
        *,
        block_rows: int,
    ) -> None:
        # block_rows is a workspace bound for the numpy paths; the
        # compiled kernel writes one (n, g) result directly, which is
        # the smaller of the two footprints for every real plan.
        g, c = dims.shape
        n = points.shape[0]
        if g == 0 or c == 0 or n == 0:
            return
        if self._result.size < n * g:
            self._result = np.empty(n * g)
        result = self._result[: n * g].reshape(n, g)
        _gather_reduce_jit(points, dims, centers, thresholds, result)
        out[:, cluster_ids] = result
