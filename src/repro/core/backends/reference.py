"""The reference kernel backend: the blocked pure-numpy evaluator.

This is the bit-identity oracle every other backend is diffed against —
the blocked zero-allocation loop moved verbatim out of
``AssignmentEngine._evaluate_columns`` (PR 5).  Results are bit-identical
to :func:`repro.core.objective.grouped_assignment_gains`; see the module
docstring of :mod:`repro.core.assignment_engine` for the contract and
the in-line comments below for why the blocking cannot change a bit.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ReferenceBackend", "MAX_WORKSPACE_ELEMENTS"]

#: Cap on the gather workspace size (float64 elements, 16 MiB): the
#: effective row block is ``min(block_rows, cap // (g * c))``.
MAX_WORKSPACE_ELEMENTS = 1 << 21


class ReferenceBackend:
    """Blocked, preallocated float64 evaluation of one stacked group.

    Single-threaded pure numpy; the precision contract is *bit identity*
    with the stateless reference kernel.  One instance per engine: the
    flat gather/reduce workspaces persist across calls and are grown
    monotonically, so steady-state evaluation allocates nothing.
    """

    name = "reference"
    #: Float64 backends promise bit-identical results to the oracle.
    bit_identical = True
    rtol = 0.0
    atol = 0.0

    def __init__(self) -> None:
        self._workspace = np.empty(0)
        self._reduce_buffer = np.empty(0)

    def prepare_points(self, points: np.ndarray) -> np.ndarray:
        """Hook run once per engine call before the group loop (no-op)."""
        return points

    def bind_points(self, points) -> None:
        """Hook run when the engine binds a fixed point set (no-op)."""

    def evaluate_columns(
        self,
        points: np.ndarray,
        cluster_ids: np.ndarray,
        dims: np.ndarray,
        centers: np.ndarray,
        thresholds: np.ndarray,
        out: np.ndarray,
        *,
        block_rows: int,
    ) -> None:
        """Blocked zero-allocation evaluation of one stacked group.

        Bit-identical to
        :func:`~repro.core.objective.grouped_assignment_gains`: the
        element-wise operation sequence is the same, and the workspace
        replicates the reference gather's memory layout — the fancy
        index ``points[:, dims_stack]`` materializes a subspace-major
        ``(g c, n)`` buffer viewed as a transposed ``(n, g, c)`` array,
        so the reference reduction over the dimension axis is a
        *strided* pairwise sum.  The workspace here is filled in that
        same ``(g c, rows)`` layout and summed through the same
        transposed view; pairwise-summation grouping depends only on the
        reduction length and on (non-)contiguity, never on the stride
        value or the row count, so blocking the rows changes nothing.
        """
        g, c = dims.shape
        n = points.shape[0]
        if g == 0 or c == 0 or n == 0:
            return
        # A single-row block would make the transposed view's reduction
        # axis contiguous and flip numpy onto a differently-grouped sum,
        # so blocks are at least 2 rows and the final block absorbs an
        # orphan row (n == 1 overall is fine: the reference gather is
        # contiguous there too).
        block = max(2, min(block_rows, MAX_WORKSPACE_ELEMENTS // (g * c)))
        flat_dims = dims.reshape(-1)
        if self._workspace.size < (block + 1) * g * c:
            self._workspace = np.empty((block + 1) * g * c)
        if self._reduce_buffer.size < (block + 1) * g:
            self._reduce_buffer = np.empty((block + 1) * g)
        start = 0
        while start < n:
            stop = min(start + block, n)
            if n - stop == 1:
                stop = n
            rows = stop - start
            gathered = self._workspace[: rows * g * c].reshape(g * c, rows)
            np.take(points[start:stop].T, flat_dims, axis=0, out=gathered)
            cube = gathered.reshape(g, c, rows).transpose(2, 0, 1)
            np.subtract(cube, centers[None, :, :], out=cube)
            np.square(cube, out=cube)
            np.divide(cube, thresholds[None, :, :], out=cube)
            np.subtract(1.0, cube, out=cube)
            # The reference sum allocates its output in F order (the
            # layout nditer derives from the transposed operand) and
            # accumulates the dimension axis plane by plane; an
            # F-ordered out= view keeps that exact association, where a
            # C-ordered one would flip numpy onto a different grouping.
            reduced = self._reduce_buffer[: rows * g].reshape(g, rows).T
            cube.sum(axis=2, out=reduced)
            out[start:stop, cluster_ids] = reduced
            start = stop
