"""Pluggable kernel backends for the assignment engine.

The engine's blocked column evaluator (see
:class:`repro.core.assignment_engine.AssignmentEngine`) is an
exchangeable strategy object.  Four backends ship:

``reference``
    The blocked pure-numpy float64 evaluator, kept verbatim as the
    bit-identity oracle (:mod:`repro.core.backends.reference`).
``threaded``
    Row-chunk thread-pool parallelism over the same loop; bit-identical
    (:mod:`repro.core.backends.threaded`).
``compiled``
    Optional Numba gather+reduce kernel; bit-identical where available,
    loud fallback to ``threaded`` otherwise
    (:mod:`repro.core.backends.compiled`).
``float32``
    Opt-in low-precision mode for serving/streaming, gated by declared
    tolerances instead of bitwise equality
    (:mod:`repro.core.backends.lowp`).

Selection is by name through :func:`get_backend` (CLI ``--backend``
flags and the ``SSPC`` / index / streaming constructors all end up
here), with the ``REPRO_ASSIGNMENT_BACKEND`` environment variable as a
deployment-wide default override.  Every non-reference backend is
diffed against the reference oracle by the engine's sampled value-diff
backstop — exact for the float64 backends, tolerance-banded for
float32.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro import obs
from repro.core.backends.compiled import CompiledBackend, compiled_available
from repro.core.backends.lowp import Float32Backend
from repro.core.backends.reference import ReferenceBackend
from repro.core.backends.threaded import ThreadedBackend, default_workers

__all__ = [
    "BACKEND_NAMES",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "CompiledBackend",
    "Float32Backend",
    "ReferenceBackend",
    "ThreadedBackend",
    "available_backends",
    "default_workers",
    "get_backend",
    "resolve_backend",
]

#: Environment override consulted when no backend is named explicitly.
ENV_VAR = "REPRO_ASSIGNMENT_BACKEND"

DEFAULT_BACKEND = "reference"

BACKEND_NAMES = ("reference", "threaded", "compiled", "float32")


def available_backends() -> Dict[str, Tuple[bool, str]]:
    """``{name: (available, detail)}`` for every registered backend."""
    compiled_ok, compiled_reason = compiled_available()
    return {
        "reference": (True, "blocked pure-numpy float64 (bit-identity oracle)"),
        "threaded": (True, "%d worker threads" % default_workers()),
        "compiled": (compiled_ok, compiled_reason),
        "float32": (True, "opt-in low precision (rtol=%g, atol=%g)"
                    % (Float32Backend.rtol, Float32Backend.atol)),
    }


def get_backend(name: Optional[str] = None):
    """A fresh backend instance for ``name``.

    ``None`` resolves through the ``REPRO_ASSIGNMENT_BACKEND``
    environment variable, then to the reference backend.  Requesting
    ``compiled`` where Numba is missing (or the numpy grouping probe
    fails) degrades to ``threaded`` — loudly: an obs ``backend_fallback``
    event plus an ``engine.backend.fallback`` counter, never silently.
    """
    if name is None:
        name = os.environ.get(ENV_VAR) or DEFAULT_BACKEND
    name = str(name).strip().lower()
    if name == "reference":
        return ReferenceBackend()
    if name == "threaded":
        return ThreadedBackend()
    if name == "float32":
        return Float32Backend()
    if name == "compiled":
        available, reason = compiled_available()
        if available:
            return CompiledBackend()
        obs.event("backend_fallback", requested="compiled",
                  fallback="threaded", reason=reason)
        recorder = obs.get_recorder()
        if recorder is not None:
            recorder.incr("engine.backend.fallback")
        return ThreadedBackend()
    raise ValueError(
        "unknown assignment backend %r (choose from %s)"
        % (name, ", ".join(BACKEND_NAMES))
    )


def resolve_backend(spec):
    """Engine-side resolution: ``None`` / name / ready-made instance."""
    if spec is None or isinstance(spec, str):
        return get_backend(spec)
    if not hasattr(spec, "evaluate_columns"):
        raise TypeError(
            "backend must be a name or expose evaluate_columns(); got %r" % (spec,)
        )
    return spec
