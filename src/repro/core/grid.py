"""Multi-dimensional grid (histogram) engine used by SSPC's initialisation.

Section 4.2 of the paper locates cluster centres by building grids —
multi-dimensional histograms over a small number ``c`` (typically 3) of
candidate dimensions.  When all ``c`` building dimensions are relevant to
a cluster, one cell contains an unexpectedly large number of objects (the
cluster centre in that subspace); if any building dimension is
irrelevant, the peak density is much lower.  Several grids are built from
different dimension subsets and the densest peak wins.

Two peak-finding modes are needed:

* the *absolute peak* — the cell with the most objects anywhere in the
  grid (used when only labeled dimensions are available), and
* a *localized hill-climbing search* starting from the cell containing a
  given anchor point (the median of the labeled objects, or the max-min
  object) — used when an approximate cluster centre is known, and also to
  cope with grids whose building dimensions are relevant to several
  clusters (multiple peaks).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_array_2d, check_index_sequence, check_positive_int


@dataclass
class GridSearchResult:
    """Outcome of a peak search on one grid.

    Attributes
    ----------
    cell:
        Index tuple of the winning cell (one bin index per building
        dimension).
    members:
        Object indices falling in the winning cell.
    density:
        Number of objects in the winning cell.
    dimensions:
        The building dimensions of the grid.
    """

    cell: Tuple[int, ...]
    members: np.ndarray
    density: int
    dimensions: np.ndarray


class Grid:
    """Equal-width multi-dimensional histogram over selected dimensions.

    Parameters
    ----------
    data:
        The full ``(n, d)`` dataset.
    dimensions:
        The building dimensions (the grid only spans these).
    bins_per_dimension:
        Number of equal-width bins per building dimension.  The paper
        keeps the number of building dimensions small (3) so each cell
        still holds enough objects; with ``b`` bins per dimension a grid
        has ``b ** c`` cells.
    restrict_to:
        Optional subset of object indices to place in the grid (used when
        previously seeded clusters' likely members are excluded).
    """

    def __init__(
        self,
        data,
        dimensions: Sequence[int],
        *,
        bins_per_dimension: int = 5,
        restrict_to: Optional[Sequence[int]] = None,
    ) -> None:
        self.data = check_array_2d(data, name="data")
        self.dimensions = check_index_sequence(
            dimensions, self.data.shape[1], name="dimensions", allow_empty=False
        )
        self.bins_per_dimension = check_positive_int(
            bins_per_dimension, name="bins_per_dimension", minimum=2
        )
        if restrict_to is None:
            self.object_indices = np.arange(self.data.shape[0])
        else:
            self.object_indices = check_index_sequence(
                restrict_to, self.data.shape[0], name="restrict_to", allow_empty=False
            )
        self._build()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build(self) -> None:
        values = self.data[np.ix_(self.object_indices, self.dimensions)]
        lows = values.min(axis=0)
        highs = values.max(axis=0)
        spans = np.where(highs > lows, highs - lows, 1.0)
        # Scale each coordinate into [0, bins) and clip the right edge so the
        # maximum falls in the last bin rather than a phantom extra bin.
        scaled = (values - lows) / spans * self.bins_per_dimension
        bin_indices = np.minimum(scaled.astype(int), self.bins_per_dimension - 1)

        self._lows = lows
        self._spans = spans
        # Group objects by cell in one vectorised pass: stable lexsort of
        # the bin tuples brings equal cells together (lexsort handles any
        # number of building dimensions — no dense cell-id encoding that
        # could overflow for large bins ** c), then split at the row
        # boundaries.  Cells are inserted in first-occurrence (row) order
        # and members keep their row order, so the mapping — including
        # the iteration-order tie-breaking of :meth:`absolute_peak` — is
        # identical to the per-row dictionary build it replaces.
        self._cells: Dict[Tuple[int, ...], np.ndarray] = {}
        n_rows = bin_indices.shape[0]
        if n_rows == 0:
            return
        order = np.lexsort(bin_indices.T)
        sorted_bins = bin_indices[order]
        sorted_objects = np.asarray(self.object_indices, dtype=int)[order]
        changed = np.any(sorted_bins[1:] != sorted_bins[:-1], axis=1)
        starts = np.concatenate(([0], np.flatnonzero(changed) + 1))
        first_rows = order[starts]
        ends = np.concatenate((starts[1:], [n_rows]))
        for position in np.argsort(first_rows, kind="stable"):
            start, end = int(starts[position]), int(ends[position])
            cell = tuple(int(b) for b in bin_indices[first_rows[position]])
            self._cells[cell] = sorted_objects[start:end]

    # ------------------------------------------------------------------ #
    # cell queries
    # ------------------------------------------------------------------ #
    @property
    def n_cells(self) -> int:
        """Number of non-empty cells."""
        return len(self._cells)

    def cell_members(self, cell: Tuple[int, ...]) -> np.ndarray:
        """Object indices in one cell (empty array for empty cells)."""
        members = self._cells.get(tuple(cell))
        if members is None:
            return np.empty(0, dtype=int)
        return members

    def cell_density(self, cell: Tuple[int, ...]) -> int:
        """Number of objects in one cell."""
        members = self._cells.get(tuple(cell))
        return 0 if members is None else int(members.size)

    def cell_of(self, point: Sequence[float]) -> Tuple[int, ...]:
        """The cell containing an arbitrary point (full ``d``-vector)."""
        point = np.asarray(point, dtype=float).ravel()
        if point.shape[0] != self.data.shape[1]:
            raise ValueError("point must be a full d-dimensional vector")
        coords = point[self.dimensions]
        scaled = (coords - self._lows) / self._spans * self.bins_per_dimension
        clipped = np.clip(scaled.astype(int), 0, self.bins_per_dimension - 1)
        return tuple(int(b) for b in clipped)

    # ------------------------------------------------------------------ #
    # peak searches
    # ------------------------------------------------------------------ #
    def absolute_peak(self) -> GridSearchResult:
        """The densest cell of the whole grid."""
        if not self._cells:
            return GridSearchResult(
                cell=(), members=np.empty(0, dtype=int), density=0, dimensions=self.dimensions
            )
        best_cell = max(self._cells, key=lambda cell: len(self._cells[cell]))
        members = self.cell_members(best_cell)
        return GridSearchResult(
            cell=best_cell,
            members=members,
            density=int(members.size),
            dimensions=self.dimensions,
        )

    def hill_climb(self, start_point: Sequence[float]) -> GridSearchResult:
        """Localized hill-climbing search from the cell containing ``start_point``.

        Repeatedly moves to the densest neighbouring cell (including
        diagonal neighbours) until no neighbour is denser — this locates
        the local density peak nearest the anchor, which the paper uses
        both to deal with multi-peak grids and to correct anchors biased
        towards one side of the cluster.
        """
        current = self.cell_of(start_point)
        current_density = self.cell_density(current)
        improved = True
        while improved:
            improved = False
            for neighbour in self._neighbours(current):
                density = self.cell_density(neighbour)
                if density > current_density:
                    current, current_density = neighbour, density
                    improved = True
        members = self.cell_members(current)
        return GridSearchResult(
            cell=current,
            members=members,
            density=int(members.size),
            dimensions=self.dimensions,
        )

    def _neighbours(self, cell: Tuple[int, ...]):
        """All neighbouring cells of ``cell`` (Moore neighbourhood)."""
        offsets = itertools.product((-1, 0, 1), repeat=len(cell))
        for offset in offsets:
            if all(delta == 0 for delta in offset):
                continue
            neighbour = tuple(coordinate + delta for coordinate, delta in zip(cell, offset))
            if all(0 <= coordinate < self.bins_per_dimension for coordinate in neighbour):
                yield neighbour


def one_dimensional_density(
    data,
    dimension: int,
    anchor_value: float,
    *,
    bins: int = 10,
    restrict_to: Optional[Sequence[int]] = None,
) -> float:
    """Object density around ``anchor_value`` along one dimension.

    Used by the no-knowledge initialisation case (Section 4.2.4): a
    one-dimensional histogram is built for every dimension and the
    density of the bin containing the max-min object measures how likely
    the dimension is to be relevant to the cluster centred around that
    object.  The value returned is the fraction of (restricted) objects
    falling in the anchor's bin, so it is comparable across dimensions.
    """
    data = check_array_2d(data, name="data")
    if not 0 <= dimension < data.shape[1]:
        raise ValueError("dimension %d outside [0, %d)" % (dimension, data.shape[1]))
    bins = check_positive_int(bins, name="bins", minimum=2)
    if restrict_to is None:
        column = data[:, dimension]
    else:
        indices = check_index_sequence(restrict_to, data.shape[0], name="restrict_to", allow_empty=False)
        column = data[indices, dimension]
    low, high = float(column.min()), float(column.max())
    span = high - low if high > low else 1.0
    scaled = (column - low) / span * bins
    bin_indices = np.minimum(scaled.astype(int), bins - 1)
    anchor_scaled = (float(anchor_value) - low) / span * bins
    anchor_bin = int(np.clip(anchor_scaled, 0, bins - 1))
    count = int(np.count_nonzero(bin_indices == anchor_bin))
    return count / float(column.shape[0])


def one_dimensional_density_profile(
    data,
    anchor: Sequence[float],
    *,
    bins: int = 10,
    restrict_to: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """:func:`one_dimensional_density` for every dimension in one pass.

    The no-knowledge initialisation case needs the anchor-bin density of
    *all* ``d`` dimensions; calling the scalar helper per dimension costs
    ``d`` validations and ``d`` Python-level passes.  This vectorised
    version bins every column at once and returns the length-``d``
    density vector, with values identical to the scalar helper.
    """
    data = check_array_2d(data, name="data")
    bins = check_positive_int(bins, name="bins", minimum=2)
    anchor = np.asarray(anchor, dtype=float).ravel()
    if anchor.shape[0] != data.shape[1]:
        raise ValueError("anchor must provide one value per dimension")
    if restrict_to is None:
        block = data
    else:
        indices = check_index_sequence(
            restrict_to, data.shape[0], name="restrict_to", allow_empty=False
        )
        block = data[indices]
    lows = block.min(axis=0)
    highs = block.max(axis=0)
    spans = np.where(highs > lows, highs - lows, 1.0)
    scaled = (block - lows) / spans * bins
    bin_indices = np.minimum(scaled.astype(int), bins - 1)
    anchor_scaled = (anchor - lows) / spans * bins
    anchor_bins = np.clip(anchor_scaled.astype(int), 0, bins - 1)
    counts = np.count_nonzero(bin_indices == anchor_bins, axis=0)
    return counts / float(block.shape[0])
