"""Data structures describing projected clusters and clustering results.

The projected clustering problem (Section 3 of the paper) outputs, for a
dataset of ``n`` objects and ``d`` dimensions:

* ``k`` clusters, each a set of member objects *and* a set of selected
  (relevant) dimensions, and
* a possibly empty set of outliers.

Everything downstream — the objective function, the evaluation metrics,
the experiment harness and the baselines — exchanges results through the
:class:`ProjectedCluster` and :class:`ClusteringResult` containers defined
here, so the different algorithms stay interchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.utils.validation import check_index_sequence, check_membership_labels

OUTLIER_LABEL = -1
"""Label value used for objects placed on the outlier list."""


@dataclass
class ProjectedCluster:
    """One projected cluster: its members and its selected dimensions.

    Attributes
    ----------
    members:
        Sorted array of object indices belonging to the cluster.
    dimensions:
        Sorted array of selected (relevant) dimension indices.
    score:
        The per-cluster objective component ``phi_i`` (Eq. 2 of the
        paper) if the producing algorithm computes it, else ``nan``.
    representative:
        Optional representative point (medoid projection or median
        vector) used during the last assignment pass.  Stored mainly for
        diagnostics and the examples; not required by the evaluation.
    """

    members: np.ndarray
    dimensions: np.ndarray
    score: float = float("nan")
    representative: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.members = np.asarray(
            sorted({int(i) for i in np.asarray(self.members).ravel()}), dtype=int
        )
        self.dimensions = np.asarray(
            sorted({int(j) for j in np.asarray(self.dimensions).ravel()}), dtype=int
        )
        if self.representative is not None:
            self.representative = np.asarray(self.representative, dtype=float)

    @property
    def size(self) -> int:
        """Number of member objects."""
        return int(self.members.size)

    @property
    def dimensionality(self) -> int:
        """Number of selected dimensions."""
        return int(self.dimensions.size)

    def member_set(self) -> frozenset:
        """Members as a frozenset (handy for set algebra in tests)."""
        return frozenset(int(i) for i in self.members)

    def dimension_set(self) -> frozenset:
        """Selected dimensions as a frozenset."""
        return frozenset(int(j) for j in self.dimensions)

    def contains(self, object_index: int) -> bool:
        """Whether ``object_index`` is a member of the cluster."""
        return bool(np.isin(object_index, self.members))

    def projection(self, data: np.ndarray) -> np.ndarray:
        """Return the member rows restricted to the selected dimensions."""
        data = np.asarray(data, dtype=float)
        return data[np.ix_(self.members, self.dimensions)]


@dataclass
class ClusteringResult:
    """Full output of a (projected) clustering algorithm.

    Attributes
    ----------
    clusters:
        List of :class:`ProjectedCluster`, in cluster-index order.
    n_objects:
        Number of objects in the clustered dataset.
    n_dimensions:
        Number of dimensions in the clustered dataset.
    objective:
        Overall objective value reported by the algorithm (algorithm
        specific; SSPC reports ``phi`` of Eq. 1).
    n_iterations:
        Number of optimisation iterations performed.
    algorithm:
        Human readable algorithm name (``"SSPC"``, ``"PROCLUS"``, ...).
    parameters:
        The parameter values used to produce the result, for
        reporting / reproducibility.
    """

    clusters: List[ProjectedCluster]
    n_objects: int
    n_dimensions: int
    objective: float = float("nan")
    n_iterations: int = 0
    algorithm: str = ""
    parameters: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_objects <= 0:
            raise ValueError("n_objects must be positive")
        if self.n_dimensions <= 0:
            raise ValueError("n_dimensions must be positive")
        seen: set = set()
        for index, cluster in enumerate(self.clusters):
            if not isinstance(cluster, ProjectedCluster):
                raise TypeError("clusters[%d] is not a ProjectedCluster" % index)
            if cluster.members.size and cluster.members.max() >= self.n_objects:
                raise ValueError("clusters[%d] references objects outside the dataset" % index)
            if cluster.dimensions.size and cluster.dimensions.max() >= self.n_dimensions:
                raise ValueError("clusters[%d] references dimensions outside the dataset" % index)
            overlap = seen.intersection(cluster.member_set())
            if overlap:
                raise ValueError(
                    "object(s) %s assigned to more than one cluster" % sorted(overlap)[:5]
                )
            seen.update(cluster.member_set())

    @property
    def n_clusters(self) -> int:
        """Number of clusters (including empty ones, which are legal)."""
        return len(self.clusters)

    @property
    def outliers(self) -> np.ndarray:
        """Indices of objects not assigned to any cluster."""
        assigned = np.zeros(self.n_objects, dtype=bool)
        for cluster in self.clusters:
            assigned[cluster.members] = True
        return np.flatnonzero(~assigned)

    @property
    def n_outliers(self) -> int:
        """Number of objects on the outlier list."""
        return int(self.outliers.size)

    def labels(self) -> np.ndarray:
        """Membership labels, ``-1`` for outliers, cluster index otherwise."""
        labels = np.full(self.n_objects, OUTLIER_LABEL, dtype=int)
        for index, cluster in enumerate(self.clusters):
            labels[cluster.members] = index
        return labels

    def selected_dimensions(self) -> List[np.ndarray]:
        """Per-cluster selected dimension arrays, in cluster order."""
        return [cluster.dimensions.copy() for cluster in self.clusters]

    def cluster_sizes(self) -> np.ndarray:
        """Array of per-cluster sizes."""
        return np.asarray([cluster.size for cluster in self.clusters], dtype=int)

    def average_dimensionality(self) -> float:
        """Mean number of selected dimensions over non-empty clusters."""
        dims = [cluster.dimensionality for cluster in self.clusters if cluster.size > 0]
        if not dims:
            return 0.0
        return float(np.mean(dims))

    def without_objects(self, object_indices: Iterable[int]) -> "ClusteringResult":
        """Return a copy of the result with some objects removed from clusters.

        The paper removes labeled objects from the produced clusters
        before computing ARI, "in order to eliminate the direct
        performance gain due to the input objects" (Section 5).  The
        removed objects become outliers in the returned copy.
        """
        to_drop = set(int(i) for i in object_indices)
        new_clusters = []
        for cluster in self.clusters:
            kept = np.asarray(
                [int(i) for i in cluster.members if int(i) not in to_drop], dtype=int
            )
            new_clusters.append(
                ProjectedCluster(
                    members=kept,
                    dimensions=cluster.dimensions.copy(),
                    score=cluster.score,
                    representative=None if cluster.representative is None else cluster.representative.copy(),
                )
            )
        return ClusteringResult(
            clusters=new_clusters,
            n_objects=self.n_objects,
            n_dimensions=self.n_dimensions,
            objective=self.objective,
            n_iterations=self.n_iterations,
            algorithm=self.algorithm,
            parameters=dict(self.parameters),
        )

    def summary(self) -> str:
        """Small human-readable summary used by the examples."""
        lines = [
            "%s result: %d clusters, %d outliers, objective=%.6g"
            % (self.algorithm or "clustering", self.n_clusters, self.n_outliers, self.objective)
        ]
        for index, cluster in enumerate(self.clusters):
            lines.append(
                "  cluster %d: %d objects, %d selected dimensions"
                % (index, cluster.size, cluster.dimensionality)
            )
        return "\n".join(lines)

    @classmethod
    def from_labels(
        cls,
        labels: Sequence[int],
        n_dimensions: int,
        *,
        dimensions: Optional[Sequence[Sequence[int]]] = None,
        scores: Optional[Sequence[float]] = None,
        representatives: Optional[Sequence[Optional[np.ndarray]]] = None,
        objective: float = float("nan"),
        n_iterations: int = 0,
        algorithm: str = "",
        parameters: Optional[Dict[str, object]] = None,
        n_clusters: Optional[int] = None,
    ) -> "ClusteringResult":
        """Build a result from a membership label vector.

        Together with :meth:`labels` this forms an exact round trip:
        ``from_labels(result.labels(), ...)`` reconstructs the clusters
        (including outliers, which are simply the ``-1`` entries) — the
        property the serving artifact format relies on.

        Parameters
        ----------
        labels:
            Length-``n`` integer vector; ``-1`` marks outliers.
        n_dimensions:
            Dimensionality of the dataset.
        dimensions:
            Optional per-cluster selected dimensions.  When omitted every
            cluster is assumed to use all dimensions (the convention for
            non-projected baselines such as CLARANS).
        scores:
            Optional per-cluster ``phi_i`` scores, aligned with the
            cluster indices.
        representatives:
            Optional per-cluster representative vectors (``None`` entries
            are allowed), aligned with the cluster indices.
        n_iterations:
            Number of optimisation iterations behind the labels.
        n_clusters:
            Number of clusters; inferred from the labels when omitted.
        """
        labels = check_membership_labels(labels, len(labels))
        n_objects = labels.shape[0]
        if n_clusters is None:
            n_clusters = int(labels.max()) + 1 if np.any(labels >= 0) else 0
        clusters = []
        for index in range(n_clusters):
            members = np.flatnonzero(labels == index)
            if dimensions is not None and index < len(dimensions):
                dims = check_index_sequence(dimensions[index], n_dimensions, name="dimensions")
            else:
                dims = np.arange(n_dimensions)
            score = float("nan")
            if scores is not None and index < len(scores):
                score = float(scores[index])
            representative = None
            if representatives is not None and index < len(representatives):
                representative = representatives[index]
            clusters.append(
                ProjectedCluster(
                    members=members,
                    dimensions=dims,
                    score=score,
                    representative=representative,
                )
            )
        return cls(
            clusters=clusters,
            n_objects=n_objects,
            n_dimensions=int(n_dimensions),
            objective=objective,
            n_iterations=int(n_iterations),
            algorithm=algorithm,
            parameters=dict(parameters or {}),
        )
