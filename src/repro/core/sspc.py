"""The SSPC estimator (Listing 2 of the paper).

SSPC (Semi-Supervised Projected Clustering) is a partitional,
k-medoid-style algorithm:

1. *Initialisation* — seed groups (potential medoids plus estimated
   relevant dimensions) are built for every cluster, using labeled
   objects / labeled dimensions where available
   (:mod:`repro.core.seed_groups`).
2. Each cluster draws a medoid from its seed group; the group's estimated
   dimensions become the cluster's selected dimensions.
3. Every object is assigned to the cluster whose objective score it
   improves the most (with the representative's projection standing in
   for the median), or to the outlier list
   (:mod:`repro.core.assignment`).
4. ``SelectDim`` re-determines the selected dimensions of each cluster
   and the overall objective ``phi`` is computed with the actual medians.
5. The best clustering seen so far is recorded (or restored).
6. A bad cluster is identified and given a brand-new medoid from its seed
   group; every other cluster's representative is replaced by its median
   (:mod:`repro.core.representatives`); members are cleared.
7. Steps 3-6 repeat until the best score has not improved for
   ``patience`` consecutive iterations (or ``max_iterations`` is hit).

The public API follows the familiar estimator pattern: construct with the
parameters, call :meth:`SSPC.fit` with the data (and optional
:class:`~repro.semisupervision.knowledge.Knowledge`), then read
``result_``, ``labels_`` and friends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.assignment import ClusterState, assign_objects, members_from_labels
from repro.core.dimension_selection import select_dimensions
from repro.core.model import ClusteringResult, ProjectedCluster
from repro.core.objective import ObjectiveFunction
from repro.core.representatives import (
    compute_phi_scores,
    find_bad_cluster,
    replace_representatives,
)
from repro.core.seed_groups import SeedGroup, SeedGroupBuilder
from repro.core.stats_cache import ClusterStatsCache
from repro.core.thresholds import make_threshold
from repro.semisupervision.constraints import PairwiseConstraints
from repro.semisupervision.knowledge import Knowledge
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_array_2d, check_cluster_count, check_positive_int


@dataclass
class _IterationSnapshot:
    """Best-so-far clustering kept across iterations."""

    states: List[ClusterState]
    labels: np.ndarray
    phi_scores: List[float]
    objective: float

    def copy(self) -> "_IterationSnapshot":
        return _IterationSnapshot(
            states=[state.copy() for state in self.states],
            labels=self.labels.copy(),
            phi_scores=list(self.phi_scores),
            objective=float(self.objective),
        )


class SSPC:
    """Semi-Supervised Projected Clustering.

    Parameters
    ----------
    n_clusters:
        The target number of clusters ``k``.
    m:
        Variance-ratio threshold parameter in ``(0, 1]``.  Mutually
        exclusive with ``p``.  Defaults to ``m=0.5`` when neither is
        given.
    p:
        Chi-square threshold parameter in ``(0, 1)`` — the maximum
        probability that an irrelevant dimension is selected by chance.
        Mutually exclusive with ``m``.
    max_iterations:
        Hard cap on the number of assignment iterations.
    patience:
        Stop after this many consecutive iterations without improvement
        of the best objective score.
    grid_dimensions:
        Number of building dimensions per initialisation grid (paper:
        ``c = 3``).
    grids_per_group:
        Number of grids tried per seed group (paper: ``g = 20``).
    bins_per_dimension:
        Histogram resolution per grid dimension; ``None`` (default)
        chooses it from the dataset size.
    seed_selection_p:
        Significance level of the size-adaptive chi-square criterion used
        while estimating seed-group dimensions during initialisation.
    public_group_factor:
        Public seed groups created per knowledge-free cluster.
    allow_outliers:
        When ``False`` every object is forced into its best cluster even
        if the score gain is negative (useful on outlier-free data and
        for the ablation benches).
    stats_cache_max_entries:
        Bound on the per-fit :class:`ClusterStatsCache` (``None`` keeps
        the cache's own default).  The SSPC loop itself only needs the
        current iteration's ``k`` member sets plus the best-so-far
        snapshot, but callers that run many clusters or inspect
        ``stats_cache_`` afterwards (streaming re-selection, the
        baselines sharing the workspace) can raise it; ``0`` disables
        caching entirely.
    backend:
        Assignment-kernel backend name for the fit loop and the serving
        indexes built by :meth:`predict` (``"reference"`` /
        ``"threaded"`` / ``"compiled"`` / ``"float32"``; see
        :mod:`repro.core.backends`).  ``None`` defers to the
        ``REPRO_ASSIGNMENT_BACKEND`` environment variable and then the
        bit-identical reference kernel.
    random_state:
        Seed or generator controlling medoid draws and grid sampling.

    Attributes
    ----------
    result_:
        :class:`~repro.core.model.ClusteringResult` after :meth:`fit`.
    labels_:
        Membership labels (``-1`` for outliers).
    selected_dimensions_:
        Per-cluster selected dimension arrays.
    objective_:
        Best objective value ``phi`` reached.
    n_iterations_:
        Number of assignment iterations executed.
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        m: Optional[float] = None,
        p: Optional[float] = None,
        max_iterations: int = 30,
        patience: int = 5,
        grid_dimensions: int = 3,
        grids_per_group: int = 20,
        bins_per_dimension: Optional[int] = None,
        seed_selection_p: float = 0.01,
        public_group_factor: int = 3,
        allow_outliers: bool = True,
        stats_cache_max_entries: Optional[int] = None,
        backend: Optional[str] = None,
        random_state: RandomState = None,
    ) -> None:
        self.n_clusters = check_positive_int(n_clusters, name="n_clusters", minimum=1)
        if m is None and p is None:
            m = 0.5
        self._threshold_args = {"m": m, "p": p}
        # Validate eagerly so bad parameters fail at construction time.
        make_threshold(m=m, p=p)
        self.max_iterations = check_positive_int(max_iterations, name="max_iterations", minimum=1)
        self.patience = check_positive_int(patience, name="patience", minimum=1)
        self.grid_dimensions = check_positive_int(grid_dimensions, name="grid_dimensions", minimum=1)
        self.grids_per_group = check_positive_int(grids_per_group, name="grids_per_group", minimum=1)
        if bins_per_dimension is not None:
            bins_per_dimension = check_positive_int(
                bins_per_dimension, name="bins_per_dimension", minimum=2
            )
        self.bins_per_dimension = bins_per_dimension
        self.seed_selection_p = float(seed_selection_p)
        self.public_group_factor = check_positive_int(
            public_group_factor, name="public_group_factor", minimum=1
        )
        self.allow_outliers = bool(allow_outliers)
        if stats_cache_max_entries is not None and stats_cache_max_entries < 0:
            raise ValueError("stats_cache_max_entries must be non-negative or None")
        self.stats_cache_max_entries = stats_cache_max_entries
        if backend is not None:
            from repro.core.backends import BACKEND_NAMES

            if backend not in BACKEND_NAMES:
                raise ValueError(
                    "unknown assignment backend %r (choose from %s)"
                    % (backend, ", ".join(BACKEND_NAMES))
                )
        self.backend = backend
        self.random_state = random_state

        self.result_: Optional[ClusteringResult] = None
        self.labels_: Optional[np.ndarray] = None
        self.selected_dimensions_: Optional[List[np.ndarray]] = None
        self.objective_: float = float("nan")
        self.n_iterations_: int = 0
        self.stats_cache_: Optional[ClusterStatsCache] = None
        self.stats_cache_counters_: Optional[Dict[str, float]] = None
        self.threshold_ = None
        self._serving_artifact = None
        self._serving_indexes: Dict[str, object] = {}

    # Hook for the equivalence tests and benchmarks: override to supply a
    # differently configured workspace (e.g. a disabled cache).
    _stats_cache_factory = staticmethod(ClusterStatsCache)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def fit(
        self,
        data,
        knowledge: Optional[Knowledge] = None,
        *,
        constraints: Optional[PairwiseConstraints] = None,
    ) -> "SSPC":
        """Cluster ``data`` and store the result on the estimator.

        Parameters
        ----------
        data:
            The ``(n, d)`` dataset.
        knowledge:
            Optional labeled objects / labeled dimensions.
        constraints:
            Optional must-link / cannot-link constraints (extension).
        """
        data = check_array_2d(data, name="data", min_rows=2)
        check_cluster_count(self.n_clusters, data.shape[0])
        knowledge = knowledge if knowledge is not None else Knowledge.empty()
        knowledge.validate_against(data.shape[0], data.shape[1], self.n_clusters)
        if constraints is not None:
            constraints.check_consistency()
        rng = ensure_rng(self.random_state)

        threshold = make_threshold(**self._threshold_args)
        # The per-iteration workspace: one statistics pass per distinct
        # member set, shared by SelectDim, the phi evaluation, the
        # representative replacement and the seed-group builder.
        if self.stats_cache_max_entries is None:
            workspace = self._stats_cache_factory(data)
        else:
            workspace = self._stats_cache_factory(
                data, max_entries=self.stats_cache_max_entries
            )
        # Hit/miss/eviction counters are reported per fit: a factory may
        # hand back a shared cache whose entries (and counters) survive
        # across estimators, so zero the counters — keeping the cached
        # entries — before this run starts.
        workspace.reset_counters()
        objective = ObjectiveFunction(
            data, threshold, stats_cache=workspace,
            assignment_backend=self.backend,
        )
        self.stats_cache_ = workspace
        self.threshold_ = threshold
        # A refit invalidates any serving state built from the old model.
        self._serving_artifact = None
        self._serving_indexes = {}

        with obs.span(
            "fit",
            category="fit",
            n_objects=int(data.shape[0]),
            n_dimensions=int(data.shape[1]),
            n_clusters=self.n_clusters,
        ) as fit_span:
            with obs.span("fit.seed_groups", category="fit"):
                private_groups, public_groups = SeedGroupBuilder(
                    objective,
                    self.n_clusters,
                    knowledge,
                    grid_dimensions=self.grid_dimensions,
                    grids_per_group=self.grids_per_group,
                    bins_per_dimension=self.bins_per_dimension,
                    public_group_factor=self.public_group_factor,
                    seed_selection_p=self.seed_selection_p,
                ).build(rng)

            states, group_of_cluster, public_pool = self._initial_states(
                objective, private_groups, public_groups, rng
            )

            best: Optional[_IterationSnapshot] = None
            stale_iterations = 0
            iteration = 0
            while iteration < self.max_iterations and stale_iterations < self.patience:
                iteration += 1
                with obs.span("fit.iteration", category="fit", iteration=iteration) as it_span:
                    with obs.span("fit.assign", category="fit"):
                        labels, gains = assign_objects(
                            objective,
                            states,
                            knowledge=knowledge,
                            constraints=constraints,
                            return_gains=True,
                        )
                        if not self.allow_outliers:
                            labels = self._force_assign(labels, gains)
                    members = members_from_labels(labels, self.n_clusters)
                    # Per-iteration membership deltas feed the incremental
                    # assignment engine's dirty tracking: a cluster whose member
                    # set changed gets a new median representative below, so its
                    # gain column must be recomputed next iteration.  (Clusters
                    # not reported are still value-diffed by the engine, so the
                    # hints are an accelerant, never a correctness obligation.)
                    changed_clusters = {
                        cluster_index
                        for cluster_index, (state, cluster_members) in enumerate(zip(states, members))
                        if not np.array_equal(state.members, cluster_members)
                    }
                    it_span.set(changed_clusters=len(changed_clusters))
                    obs.observe("fit.changed_clusters", len(changed_clusters))
                    for state, cluster_members in zip(states, members):
                        state.members = cluster_members
                    # Re-determine selected dimensions with the actual members and
                    # compute the objective with the actual medians (step 4).
                    with obs.span("fit.select_dim", category="fit"):
                        for cluster_index, state in enumerate(states):
                            forced = knowledge.dimensions.for_class(cluster_index)
                            forced = forced if forced.size else None
                            state.dimensions = select_dimensions(
                                objective, state.members, forced_dimensions=forced
                            )
                    with obs.span("fit.phi", category="fit"):
                        phi_scores, overall = compute_phi_scores(objective, states)

                    if best is None or overall > best.objective + 1e-12:
                        # A single deep copy of the state arrays suffices — the
                        # snapshot constructor already receives fresh copies.
                        best = _IterationSnapshot(
                            states=[state.copy() for state in states],
                            labels=labels.copy(),
                            phi_scores=list(phi_scores),
                            objective=float(overall),
                        )
                        stale_iterations = 0
                    else:
                        stale_iterations += 1
                        # Restore the best clustering before modifying it (step 5).
                        states = [state.copy() for state in best.states]
                        phi_scores = list(best.phi_scores)
                    it_span.set(objective=float(overall), stale=stale_iterations)

                    if stale_iterations >= self.patience or iteration >= self.max_iterations:
                        break

                    with obs.span("fit.medoid_swap", category="fit"):
                        bad_cluster = find_bad_cluster(objective, states, phi_scores)
                        new_medoid, new_dims = self._draw_replacement_medoid(
                            bad_cluster, group_of_cluster, public_pool, states, rng
                        )
                        states = replace_representatives(
                            objective, states, bad_cluster, new_medoid, new_dims
                        )
                    # The bad cluster drew a brand-new medoid and every changed
                    # cluster's representative was replaced by its new median —
                    # report both to the assignment engine so the next gains
                    # call recomputes exactly those columns.
                    changed_clusters.add(bad_cluster)
                    objective.mark_assignment_dirty(changed_clusters)

            assert best is not None  # the loop always runs at least one iteration
            self._store_result(data, objective, best, iteration)
            fit_span.set(iterations=iteration, objective=float(best.objective))
        self._snapshot_workspace_counters(workspace)
        return self

    def _snapshot_workspace_counters(self, workspace: ClusterStatsCache) -> None:
        """Record the fit's cache counters (per-fit, see ``reset_counters``)."""
        counters = dict(workspace.counters())
        self.stats_cache_counters_ = counters
        recorder = obs.get_recorder()
        if recorder is not None:
            for name in ("hits", "misses", "evictions"):
                recorder.incr("stats_cache.%s" % name, float(counters.get(name, 0)))
            recorder.gauge("stats_cache.entries", float(counters.get("entries", 0)))
            recorder.gauge("stats_cache.hit_rate", float(counters.get("hit_rate", 0.0)))

    def fit_predict(
        self,
        data,
        knowledge: Optional[Knowledge] = None,
        *,
        constraints: Optional[PairwiseConstraints] = None,
    ) -> np.ndarray:
        """Convenience: :meth:`fit` then return the membership labels."""
        return self.fit(data, knowledge, constraints=constraints).labels_

    def to_artifact(self, *, include_projections: bool = True, metadata=None):
        """Capture the fitted model as a :class:`~repro.serving.artifact.ModelArtifact`.

        Reuses the fit's own statistics cache (so the capture performs no
        new statistics passes) and its fitted selection threshold.
        """
        if self.result_ is None:
            raise RuntimeError("estimator is not fitted; call fit(data) first")
        from repro.serving.artifact import ModelArtifact

        return ModelArtifact.from_result(
            self.result_,
            self.stats_cache_.data,
            threshold=self.threshold_,
            stats_cache=self.stats_cache_,
            include_projections=include_projections,
            metadata=metadata,
        )

    def save(self, path, *, include_projections: bool = True, metadata=None):
        """Persist the fitted model to an artifact directory at ``path``.

        The artifact can later be restored with
        :func:`repro.serving.load_artifact` and served with
        :class:`~repro.serving.index.ProjectedClusterIndex` — no training
        data required.  Returns the artifact directory path.
        """
        return self.to_artifact(
            include_projections=include_projections, metadata=metadata
        ).save(path)

    def predict(self, data, *, top_m: Optional[int] = None, center: str = "median"):
        """Assign *new* (out-of-sample) points to the fitted clusters.

        Points are scored with the paper's assignment rule against the
        fitted clusters (``-1`` marks points that fail the outlier gate;
        with ``allow_outliers=False`` estimators, points are
        force-assigned just as during fitting).  The artifact capture
        happens once per fit and the serving index once per center mode,
        so repeated calls only pay the batched scoring pass.

        Parameters
        ----------
        data:
            ``(n_new, d)`` points; ``d`` must match the training data.
        top_m:
            When given, return ``(labels, clusters, gains)`` with each
            point's ``top_m`` soft assignments instead of labels alone.
        center:
            Per-cluster scoring center (``"median"``, ``"representative"``
            or ``"mean"``); see
            :class:`~repro.serving.index.ProjectedClusterIndex`.

        Notes
        -----
        This scores points against the *final* clusters, so predicting
        the training data is not guaranteed to reproduce ``labels_``
        (which also reflects knowledge pinning and the winning
        iteration's representatives).
        """
        if self.result_ is None:
            raise RuntimeError("estimator is not fitted; call fit(data) first")
        from repro.serving.index import ProjectedClusterIndex

        if self._serving_artifact is None:
            self._serving_artifact = self.to_artifact()
        index = self._serving_indexes.get(center)
        if index is None:
            index = ProjectedClusterIndex(
                self._serving_artifact, center=center, backend=self.backend
            )
            self._serving_indexes[center] = index
        if top_m is not None:
            return index.top_assignments(data, top_m)
        return index.predict(data)

    def get_params(self) -> Dict[str, object]:
        """Constructor parameters (for reporting and cloning)."""
        params: Dict[str, object] = {
            "n_clusters": self.n_clusters,
            "max_iterations": self.max_iterations,
            "patience": self.patience,
            "grid_dimensions": self.grid_dimensions,
            "grids_per_group": self.grids_per_group,
            "bins_per_dimension": self.bins_per_dimension,
            "seed_selection_p": self.seed_selection_p,
            "public_group_factor": self.public_group_factor,
            "allow_outliers": self.allow_outliers,
        }
        if self.stats_cache_max_entries is not None:
            params["stats_cache_max_entries"] = self.stats_cache_max_entries
        if self.backend is not None:
            params["backend"] = self.backend
        params.update({k: v for k, v in self._threshold_args.items() if v is not None})
        return params

    # ------------------------------------------------------------------ #
    # initialisation helpers
    # ------------------------------------------------------------------ #
    def _initial_states(
        self,
        objective: ObjectiveFunction,
        private_groups: Dict[int, SeedGroup],
        public_groups: List[SeedGroup],
        rng: np.random.Generator,
    ) -> Tuple[List[ClusterState], Dict[int, SeedGroup], List[SeedGroup]]:
        """Draw the initial medoid of every cluster (Listing 2, step 2)."""
        group_of_cluster: Dict[int, SeedGroup] = {}
        public_pool = list(public_groups)
        states: List[ClusterState] = []
        prior_size = max(objective.n_objects // self.n_clusters, 2)
        for cluster_index in range(self.n_clusters):
            if cluster_index in private_groups:
                group = private_groups[cluster_index]
            elif public_pool:
                position = int(rng.integers(len(public_pool)))
                group = public_pool.pop(position)
            else:
                group = self._fallback_group(objective, rng)
            group_of_cluster[cluster_index] = group

            if group.n_seeds > 0:
                medoid = group.draw_medoid(rng)
                representative = objective.data[medoid].copy()
            else:
                representative = objective.data[int(rng.integers(objective.n_objects))].copy()
            dimensions = group.dimensions.copy()
            if dimensions.size == 0:
                dimensions = np.arange(objective.n_dimensions)
            states.append(
                ClusterState(
                    representative=representative,
                    dimensions=dimensions,
                    members=np.empty(0, dtype=int),
                    size_hint=prior_size,
                )
            )
        return states, group_of_cluster, public_pool

    def _fallback_group(self, objective: ObjectiveFunction, rng: np.random.Generator) -> SeedGroup:
        """Last-resort seed group: one random object, all dimensions."""
        seed = int(rng.integers(objective.n_objects))
        return SeedGroup(
            seeds=np.asarray([seed]),
            dimensions=np.arange(objective.n_dimensions),
            cluster=None,
            knowledge_kind="none",
        )

    def _draw_replacement_medoid(
        self,
        bad_cluster: int,
        group_of_cluster: Dict[int, SeedGroup],
        public_pool: List[SeedGroup],
        states: Sequence[ClusterState],
        rng: np.random.Generator,
    ) -> Tuple[Optional[int], Optional[np.ndarray]]:
        """New medoid (and dims) for the bad cluster (Section 4.3).

        The medoid comes from the cluster's own (private) seed group when
        it has one; otherwise a fresh public seed group is drawn from the
        pool so the cluster gets a genuinely different starting point, and
        only when the pool is exhausted does the cluster re-draw from its
        current group.
        """
        group = group_of_cluster.get(bad_cluster)
        if group is not None and not group.is_private and public_pool:
            position = int(rng.integers(len(public_pool)))
            new_group = public_pool.pop(position)
            # The abandoned group returns to the pool so other clusters may
            # still use it later.
            public_pool.append(group)
            group_of_cluster[bad_cluster] = new_group
            group = new_group
        if group is None or group.n_seeds == 0:
            return None, None
        medoid = group.draw_medoid(rng)
        dims = group.dimensions.copy() if group.dimensions.size else None
        return medoid, dims

    # ------------------------------------------------------------------ #
    # assignment helpers
    # ------------------------------------------------------------------ #
    def _force_assign(self, labels: np.ndarray, gains: np.ndarray) -> np.ndarray:
        """Assign outliers to their nearest cluster when outliers are disabled.

        Reuses the gain matrix already computed by the assignment pass
        instead of re-evaluating every cluster's gains from scratch.
        """
        labels = labels.copy()
        outliers = np.flatnonzero(labels == -1)
        if outliers.size == 0:
            return labels
        labels[outliers] = np.argmax(gains[outliers], axis=1)
        return labels

    # ------------------------------------------------------------------ #
    # result packaging
    # ------------------------------------------------------------------ #
    def _store_result(
        self,
        data: np.ndarray,
        objective: ObjectiveFunction,
        best: _IterationSnapshot,
        n_iterations: int,
    ) -> None:
        clusters: List[ProjectedCluster] = []
        for cluster_index, state in enumerate(best.states):
            clusters.append(
                ProjectedCluster(
                    members=state.members,
                    dimensions=state.dimensions,
                    score=best.phi_scores[cluster_index],
                    representative=state.representative,
                )
            )
        self.result_ = ClusteringResult(
            clusters=clusters,
            n_objects=data.shape[0],
            n_dimensions=data.shape[1],
            objective=best.objective,
            n_iterations=n_iterations,
            algorithm="SSPC",
            parameters=self.get_params(),
        )
        self.labels_ = best.labels.copy()
        self.selected_dimensions_ = [cluster.dimensions.copy() for cluster in clusters]
        self.objective_ = float(best.objective)
        self.n_iterations_ = int(n_iterations)
