"""Selection-threshold schemes for ``s_hat^2_ij`` (Section 4.1).

The SSPC objective compares, for a cluster ``C_i`` and dimension ``v_j``,
the quantity ``s^2_ij + (mu_ij - median_ij)^2`` against a *selection
threshold* ``s_hat^2_ij``.  The threshold must exceed the sample variance
of every dimension that deserves to be selected, and the global column
variance ``sigma^2_j`` (estimated by the sample variance ``s^2_j`` of the
whole column) acts as its natural upper bound: if a cluster is no tighter
than a random subset of the data along ``v_j``, the dimension carries no
information about the cluster.

The paper proposes two schemes:

* **Variance-ratio scheme** (:class:`VarianceRatioThreshold`): the user
  supplies ``m`` in ``(0, 1]`` and the threshold is ``m * s^2_j``.
  Smaller ``m`` tightens the selection criterion.  This scheme makes no
  distributional assumption.
* **Chi-square scheme** (:class:`ChiSquareThreshold`): the user supplies
  ``p``, an upper bound on the probability that a dimension *irrelevant*
  to the cluster is selected by chance.  Under a Gaussian global
  population, ``(n_i - 1) s^2_ij / sigma^2_j`` follows a chi-square
  distribution with ``n_i - 1`` degrees of freedom, so the threshold that
  achieves ``Pr(s^2_ij < s_hat^2_ij) = p`` is
  ``s_hat^2_ij = s^2_j * chi2_inv(p, n_i - 1) / (n_i - 1)``.

Both schemes expose the same interface so the rest of the algorithm is
agnostic to the choice; only one user parameter is involved either way,
and (as the Figure 4 experiment shows) its value is not critical.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional

import numpy as np
from scipy import stats

from repro.utils.validation import check_array_2d, check_fraction, check_probability


class SelectionThreshold(abc.ABC):
    """Interface of a selection-threshold scheme.

    A threshold object is *fitted* once per dataset (it needs the global
    column variances ``s^2_j``) and then queried with a cluster size to
    obtain the vector of thresholds ``s_hat^2_ij`` for all dimensions.
    """

    def __init__(self) -> None:
        self._global_variance: Optional[np.ndarray] = None
        self._values_cache: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # fitting
    # ------------------------------------------------------------------ #
    def fit(self, data) -> "SelectionThreshold":
        """Estimate the global column variances from the dataset."""
        data = check_array_2d(data, name="data", min_rows=2)
        variance = data.var(axis=0, ddof=1)
        # Guard against constant columns: a zero global variance would make
        # every threshold zero and no dimension selectable; treat such
        # columns as carrying the smallest representable spread instead.
        tiny = np.finfo(float).tiny
        self._global_variance = np.maximum(variance, tiny)
        self._values_cache.clear()
        return self

    def fit_from_variance(self, global_variance) -> "SelectionThreshold":
        """Fit directly from a precomputed global-variance vector."""
        variance = np.asarray(global_variance, dtype=float).ravel()
        if variance.size == 0:
            raise ValueError("global_variance must be non-empty")
        if np.any(variance < 0):
            raise ValueError("global_variance must be non-negative")
        self._global_variance = np.maximum(variance, np.finfo(float).tiny)
        self._values_cache.clear()
        return self

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._global_variance is not None

    @property
    def global_variance(self) -> np.ndarray:
        """The fitted global column variances ``s^2_j``."""
        if self._global_variance is None:
            raise RuntimeError("threshold has not been fitted; call fit(data) first")
        return self._global_variance

    # ------------------------------------------------------------------ #
    # querying
    # ------------------------------------------------------------------ #
    def values(self, cluster_size: int) -> np.ndarray:
        """Vector of ``s_hat^2_ij`` over all dimensions for a cluster of this size.

        The same few cluster sizes recur every SSPC iteration, so the
        threshold vectors are memoized per effective size key (refitting
        clears the memo).  The returned array is marked read-only —
        callers slice or combine it arithmetically, never mutate it.
        """
        if cluster_size < 0:
            raise ValueError("cluster_size must be non-negative")
        key = self._cache_key(int(cluster_size))
        cached = self._values_cache.get(key)
        if cached is None:
            cached = np.asarray(self._compute_values(int(cluster_size)), dtype=float)
            cached.flags.writeable = False
            self._values_cache[key] = cached
        return cached

    def _cache_key(self, cluster_size: int) -> int:
        """Memoization key; override when thresholds depend on the size."""
        return 0

    @abc.abstractmethod
    def _compute_values(self, cluster_size: int) -> np.ndarray:
        """Uncached threshold vector for one cluster size."""

    @abc.abstractmethod
    def describe(self) -> Dict[str, float]:
        """The user parameter(s) of the scheme, for reporting."""

    def value(self, cluster_size: int, dimension: int) -> float:
        """Scalar threshold for one dimension (convenience for tests)."""
        return float(self.values(cluster_size)[dimension])


class VarianceRatioThreshold(SelectionThreshold):
    """The ``m`` scheme: ``s_hat^2_ij = m * s^2_j``.

    Parameters
    ----------
    m:
        Ratio in ``(0, 1]``.  The paper suggests 0.3-0.7 as reasonable
        defaults when the user has no better information.
    """

    def __init__(self, m: float = 0.5) -> None:
        super().__init__()
        self.m = check_fraction(m, name="m", inclusive_low=False)

    def _compute_values(self, cluster_size: int) -> np.ndarray:
        """Thresholds are independent of the cluster size under this scheme."""
        return self.m * self.global_variance

    def describe(self) -> Dict[str, float]:
        return {"scheme": "m", "m": self.m}

    def __repr__(self) -> str:
        return "VarianceRatioThreshold(m=%g)" % self.m


class ChiSquareThreshold(SelectionThreshold):
    """The ``p`` scheme based on the chi-square sampling distribution.

    Parameters
    ----------
    p:
        Upper bound on the probability that an irrelevant dimension is
        selected by chance, in ``(0, 1)``.  The paper suggests 0.01-0.2.
    min_degrees_of_freedom:
        Cluster sizes of 0 or 1 give no degrees of freedom; the scheme
        then falls back to this many degrees of freedom so the threshold
        stays defined (it is only queried for clusters that are about to
        receive members).
    """

    def __init__(self, p: float = 0.01, *, min_degrees_of_freedom: int = 1) -> None:
        super().__init__()
        self.p = check_probability(p, name="p")
        if min_degrees_of_freedom < 1:
            raise ValueError("min_degrees_of_freedom must be at least 1")
        self.min_degrees_of_freedom = int(min_degrees_of_freedom)
        self._factor_cache: Dict[int, float] = {}

    def _factor(self, cluster_size: int) -> float:
        """``chi2_inv(p, n_i - 1) / (n_i - 1)``, cached per cluster size."""
        dof = max(int(cluster_size) - 1, self.min_degrees_of_freedom)
        if dof not in self._factor_cache:
            self._factor_cache[dof] = float(stats.chi2.ppf(self.p, dof) / dof)
        return self._factor_cache[dof]

    def _cache_key(self, cluster_size: int) -> int:
        """Thresholds only depend on the effective degrees of freedom."""
        return max(cluster_size - 1, self.min_degrees_of_freedom)

    def _compute_values(self, cluster_size: int) -> np.ndarray:
        return self._factor(cluster_size) * self.global_variance

    def describe(self) -> Dict[str, float]:
        return {"scheme": "p", "p": self.p}

    def __repr__(self) -> str:
        return "ChiSquareThreshold(p=%g)" % self.p


def make_threshold(
    *,
    m: Optional[float] = None,
    p: Optional[float] = None,
) -> SelectionThreshold:
    """Build a threshold scheme from the mutually exclusive ``m`` / ``p`` options.

    Exactly one of ``m`` and ``p`` must be supplied.  This mirrors how the
    SSPC estimator exposes the choice to users.
    """
    if (m is None) == (p is None):
        raise ValueError("exactly one of m and p must be supplied")
    if m is not None:
        return VarianceRatioThreshold(m=m)
    return ChiSquareThreshold(p=p)
