"""``repro.stream`` — online projected clustering over unbounded streams.

The serving subsystem (PR 2) proved the incremental primitive: exact
statistics merges fold accepted traffic into a live
:class:`~repro.serving.index.ProjectedClusterIndex` without refitting.
This package promotes that primitive into a full streaming engine:

* :class:`~repro.stream.engine.StreamingSSPC` consumes an unbounded
  point stream in micro-batches, assigns/gates each batch through the
  serving index and folds accepted points in via exact merges;
* rejected points land in a bounded outlier buffer from which **new
  clusters are spawned** when a dense region accumulates (reusing the
  paper's grid / seed-group initialisation machinery), while starved
  clusters are retired;
* per-cluster **drift detection** (statistic-shift tests against a
  reference window) triggers re-running ``SelectDim`` and refreshing the
  selection thresholds only where needed, keeping the steady-state hot
  path at the serving subsystem's batched-inference speed;
* :mod:`~repro.stream.checkpoint` persists the whole engine through the
  existing :class:`~repro.serving.artifact.ModelArtifact` format, so a
  stream consumer resumes mid-stream the way :mod:`repro.bench`'s store
  resumes interrupted runs.

Drift-capable stream *generators* live in :mod:`repro.data.streams`;
the ``repro-stream`` CLI (:mod:`repro.stream.cli`) wires both together.
"""

from repro.stream.checkpoint import load_checkpoint, save_checkpoint
from repro.stream.engine import BatchResult, StreamConfig, StreamEvent, StreamingSSPC
from repro.stream.lifecycle import OutlierBuffer

__all__ = [
    "BatchResult",
    "OutlierBuffer",
    "StreamConfig",
    "StreamEvent",
    "StreamingSSPC",
    "load_checkpoint",
    "save_checkpoint",
]
