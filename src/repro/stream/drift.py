"""Per-cluster drift detection via statistic-shift tests.

A streaming cluster is summarised twice: by its *reference* statistics
(the full-``d`` mean / variance captured when the cluster was last
fitted, spawned or re-anchored) and by a bounded *recent window* of the
rows it accepted.  :class:`DriftDetector` compares the two on the
cluster's selected dimensions — the only dimensions that influence
assignment — with a **mean-shift z test**: ``|m_w - mu_ref| /
sqrt(s2_ref / w)``.  A location move of the underlying local Gaussian
grows this linearly in the shift and with ``sqrt(w)``, and subspace
drift fires it too — rows that keep passing the gate after a cluster
leaves a dimension are background-distributed along it, which drags the
window mean toward the background mean.

A variance-ratio test is deliberately *not* part of the score: the
window holds gated traffic, and the acceptance region (a summed
quadratic gate over the selected dimensions) truncates each dimension's
marginal into a heavy-tailed mixture — a handful of fringe rows that
are tight on the other dimensions legally carry huge deviations on one,
so the sample variance of accepted traffic is unstable by construction
and a log-variance statistic flags a perfectly stationary stream.  The
mean of the same traffic is well-behaved (measured stationary maxima
stay under ~2.5 sigma).

The drift score is the maximum over the selected dimensions; a cluster
is flagged only when the score exceeds ``zscore`` *and* the window
holds at least ``min_points`` rows, so a freshly (re-)anchored cluster
is never retested on noise.  With the default ``zscore`` of 8 a
stationary stream essentially never triggers, which is what keeps the
drift-free hot path bit-identical to plain ``partial_update`` serving.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DriftDetector", "DriftVerdict"]


@dataclass(frozen=True)
class DriftVerdict:
    """Outcome of one drift assessment.

    ``score`` is reported even when ``drifted`` is false (diagnostics);
    ``worst_dimension`` is the global index of the dimension with the
    largest shift statistic, or ``-1`` when nothing was testable.
    """

    drifted: bool
    score: float
    window_size: int
    worst_dimension: int = -1


class DriftDetector:
    """Statistic-shift test comparing a recent window against a reference.

    Parameters
    ----------
    zscore:
        Drift threshold on the maximum shift statistic.
    min_points:
        Minimum window rows before a cluster may be flagged.
    """

    def __init__(self, *, zscore: float = 8.0, min_points: int = 48) -> None:
        if zscore <= 0:
            raise ValueError("zscore must be positive")
        if min_points < 2:
            raise ValueError("min_points must be at least 2")
        self.zscore = float(zscore)
        self.min_points = int(min_points)

    def assess(
        self,
        reference_mean: np.ndarray,
        reference_variance: np.ndarray,
        dimensions: np.ndarray,
        window: np.ndarray,
    ) -> DriftVerdict:
        """Assess one cluster: reference full-``d`` stats vs window rows."""
        dimensions = np.asarray(dimensions, dtype=int)
        w = int(window.shape[0]) if window.ndim == 2 else 0
        if w < 2 or dimensions.size == 0:
            return DriftVerdict(drifted=False, score=0.0, window_size=w)
        tiny = np.finfo(float).tiny
        ref_mean = np.asarray(reference_mean, dtype=float)[dimensions]
        ref_var = np.maximum(np.asarray(reference_variance, dtype=float)[dimensions], tiny)
        selected = window[:, dimensions]
        window_mean = selected.mean(axis=0)
        scores = np.abs(window_mean - ref_mean) / np.sqrt(ref_var / w)
        worst = int(np.argmax(scores))
        score = float(scores[worst])
        drifted = w >= self.min_points and score > self.zscore
        return DriftVerdict(
            drifted=drifted,
            score=score,
            window_size=w,
            worst_dimension=int(dimensions[worst]),
        )
